//! # portopt
//!
//! A complete Rust reproduction of **"Portable Compiler Optimisation Across
//! Embedded Programs and Microarchitectures using Machine Learning"**
//! (Dubach, Jones, Bonilla, Fursin, O'Boyle — MICRO 2009): an optimising
//! compiler whose best-passes selection is *learned*, so it adapts to any
//! new program on any new microarchitecture from one `-O3` profiling run.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`portopt_trace`] | leveled events + timed spans, stderr/JSON-lines sinks |
//! | [`portopt_exec`] | deterministic work-stealing executor behind every sweep |
//! | [`portopt_ir`] | IR, builder DSL, analyses, reference interpreter |
//! | [`portopt_passes`] | the Figure 3 pass space, register allocation, layout |
//! | [`portopt_uarch`] | Table 2 design space, Cacti/cache/BTB models, counters |
//! | [`portopt_sim`] | profiling simulator, fast timing model, detailed simulator |
//! | [`portopt_mibench`] | the 35-program MiBench-like suite |
//! | [`portopt_ml`] | IID distributions, KNN predictor, mutual information |
//! | [`portopt_search`] | iterative-compilation baselines |
//! | [`portopt_core`] | dataset generation + the [`portopt_core::PortableCompiler`] |
//! | [`portopt_serve`] | model snapshots + the batched JSON-lines prediction service |
//! | [`portopt_experiments`] | leave-one-out harness + figure generators |
//!
//! See `examples/quickstart.rs` for the 60-second tour and
//! `examples/portable_compiler.rs` for the paper's Figure 2 flow.

#![warn(missing_docs)]

pub use portopt_core;
pub use portopt_exec;
pub use portopt_experiments;
pub use portopt_ir;
pub use portopt_mibench;
pub use portopt_ml;
pub use portopt_passes;
pub use portopt_search;
pub use portopt_serve;
pub use portopt_sim;
pub use portopt_trace;
pub use portopt_uarch;

/// The common imports for examples and downstream users.
pub mod prelude {
    pub use portopt_ir::{FuncBuilder, Inst, Module, ModuleBuilder, Pred};
    pub use portopt_passes::{compile, CodeImage, OptConfig, OptSpace};
    pub use portopt_sim::{evaluate, profile, simulate};
    pub use portopt_uarch::{MicroArch, MicroArchSpace, PerfCounters};
}
