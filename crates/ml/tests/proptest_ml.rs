//! Property-based tests for the model mathematics: distribution fitting,
//! mixing, KNN prediction and mutual information.

use portopt_ml::{
    bin_equal_frequency, entropy, mutual_information, normalized_mutual_information,
    ridge_weights_oracle, ClusteredKnnModel, IidDistribution, KnnModel, LinearModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_goodset(seed: u64, dims: &[usize], n: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| dims.iter().map(|&c| rng.gen_range(0..c) as u8).collect())
        .collect()
}

proptest! {
    /// Fitted distributions are proper (rows sum to 1, probs in (0,1]),
    /// and the mode maximises per-dimension probability.
    #[test]
    fn fit_produces_proper_distribution(seed in 0u64..100_000, n in 1usize..60) {
        let dims = vec![2usize, 3, 4, 2, 5];
        let good = random_goodset(seed, &dims, n);
        let g = IidDistribution::fit(&dims, &good);
        for (d, &card) in dims.iter().enumerate() {
            let mut total = 0.0;
            let mut maxp = 0.0f64;
            for j in 0..card {
                let p = g.prob(d, j as u8);
                prop_assert!(p > 0.0 && p <= 1.0);
                total += p;
                maxp = maxp.max(p);
            }
            prop_assert!((total - 1.0).abs() < 1e-9);
            let mode = g.mode();
            prop_assert!((g.prob(d, mode[d]) - maxp).abs() < 1e-12);
        }
    }

    /// Mixtures are proper distributions, and weights interpolate: the
    /// mixture probability lies between the component extremes.
    #[test]
    fn mixtures_are_bounded_by_components(sa in 0u64..100_000, sb in 0u64..100_000, w in 0.01f64..10.0) {
        let dims = vec![2usize, 4];
        let a = IidDistribution::fit(&dims, &random_goodset(sa, &dims, 10));
        let b = IidDistribution::fit(&dims, &random_goodset(sb, &dims, 10));
        let m = IidDistribution::mix(&[(w, &a), (1.0, &b)]);
        for d in 0..dims.len() {
            let mut total = 0.0;
            for j in 0..dims[d] {
                let (pa, pb, pm) = (a.prob(d, j as u8), b.prob(d, j as u8), m.prob(d, j as u8));
                prop_assert!(pm >= pa.min(pb) - 1e-12 && pm <= pa.max(pb) + 1e-12);
                total += pm;
            }
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// Cross-entropy is minimised (among our candidates) by the matching
    /// distribution: H(p, fit(p-samples)) <= H(p, fit(other-samples)).
    #[test]
    fn cross_entropy_prefers_own_samples(sa in 0u64..100_000, sb in 0u64..100_000) {
        prop_assume!(sa != sb);
        let dims = vec![2usize, 3, 4];
        let sample_a = random_goodset(sa, &dims, 30);
        let sample_b = random_goodset(sb, &dims, 30);
        let ga = IidDistribution::fit(&dims, &sample_a);
        let gb = IidDistribution::fit(&dims, &sample_b);
        // Allow tiny slack: smoothing can blur close distributions.
        prop_assert!(ga.cross_entropy(&sample_a) <= gb.cross_entropy(&sample_a) + 0.05);
    }

    /// KNN prediction always returns in-range choices, and for k=1 it
    /// returns the nearest training point's mode exactly.
    #[test]
    fn knn_prediction_in_range(seed in 0u64..100_000, npts in 2usize..30) {
        let dims = vec![2usize, 3, 4];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push(vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]);
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 8)));
        }
        let m1 = KnnModel::train(feats.clone(), dists.clone(), 1, 1.0);
        let q = vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)];
        let pred = m1.predict_mode(&q);
        for (d, &card) in dims.iter().enumerate() {
            prop_assert!((pred[d] as usize) < card);
        }
        let mk = KnnModel::train(feats, dists, 7, 1.0);
        let predk = mk.predict_mode(&q);
        for (d, &card) in dims.iter().enumerate() {
            prop_assert!((predk[d] as usize) < card);
        }
    }

    /// MI is non-negative, symmetric, and bounded by both entropies.
    #[test]
    fn mi_properties(seed in 0u64..100_000, n in 20usize..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(usize, usize)> = (0..n)
            .map(|_| (rng.gen_range(0..4usize), rng.gen_range(0..3usize)))
            .collect();
        let swapped: Vec<(usize, usize)> = pairs.iter().map(|&(a, b)| (b, a)).collect();
        let mi = mutual_information(&pairs, 4, 3);
        prop_assert!(mi >= 0.0);
        prop_assert!((mi - mutual_information(&swapped, 3, 4)).abs() < 1e-9);
        let xs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        prop_assert!(mi <= entropy(&xs, 4) + 1e-9);
        prop_assert!(mi <= entropy(&ys, 3) + 1e-9);
        let nmi = normalized_mutual_information(&pairs, 4, 3);
        prop_assert!((0.0..=1.0).contains(&nmi));
    }

    /// A trained model survives JSON serialization completely: the
    /// deserialized model equals the original, re-serializing it is
    /// byte-identical, and predictions on fresh feature vectors agree —
    /// the contract `portopt-serve` snapshots rely on.
    #[test]
    fn model_roundtrips_through_json(seed in 0u64..100_000, npts in 2usize..20) {
        let dims = vec![2usize, 3, 4, 2];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push(vec![
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-1e3..1e3),
                rng.gen_range(0.0..1.0),
            ]);
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 6)));
        }
        let model = KnnModel::train(feats, dists, 7, 1.0);
        let json = serde_json::to_string(&model).unwrap();
        let back: KnnModel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &model, "deserialized model differs");
        let json2 = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(&json2, &json, "re-serialization not byte-identical");
        for _ in 0..4 {
            let q = vec![
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-1e3..1e3),
                rng.gen_range(0.0..1.0),
            ];
            prop_assert_eq!(model.predict_mode(&q), back.predict_mode(&q));
        }
        prop_assert_eq!(back.feature_dim(), 3);
    }

    /// Tentpole contract of the kNN hot-path rebuild: the blocked SoA
    /// [`FeatureMatrix`] kernel + partial top-k selection produce
    /// **bit-identical** `predict` and `predict_mode` results to the
    /// retained naive oracle (per-point row scan + full stable sort),
    /// across random models and queries, k ≥ n included.
    #[test]
    fn soa_kernel_matches_oracle(seed in 0u64..100_000, npts in 1usize..40, k in 1usize..50) {
        let dims = vec![2usize, 3, 4];
        let dim = 1 + (seed % 7) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats: Vec<Vec<f64>> = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push((0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect());
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 5)));
        }
        let model = KnnModel::train(feats.clone(), dists, k, 1.0);
        for t in 0..4u64 {
            let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect();
            prop_assert_eq!(model.predict(&q), model.predict_oracle(&q), "predict t={}", t);
            prop_assert_eq!(
                model.predict_mode(&q),
                model.predict_mode_oracle(&q),
                "predict_mode t={}", t
            );
        }
        // A query sitting exactly on a training point: distance 0 at the
        // top of the ranking, shared by every duplicate of that row.
        let on_point = feats[npts / 2].clone();
        prop_assert_eq!(model.predict(&on_point), model.predict_oracle(&on_point));
        prop_assert_eq!(model.predict_mode(&on_point), model.predict_mode_oracle(&on_point));
    }

    /// Duplicate-distance tie-break: with only a handful of distinct
    /// feature locations, most distances collide exactly, so the k-th
    /// place is decided purely by the (distance, index) tie-break — the
    /// partial selection must keep the oracle's stable-sort index order,
    /// or the mixture sees different neighbours (or the same neighbours
    /// summed in a different order) and the bits diverge.
    #[test]
    fn duplicate_distance_tie_break_matches_oracle(
        seed in 0u64..100_000, npts in 2usize..40, k in 1usize..50
    ) {
        let dims = vec![2usize, 4];
        let locs = [[0.0, 0.0], [1.0, 1.0], [2.0, -1.0]];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats: Vec<Vec<f64>> = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push(locs[rng.gen_range(0..locs.len())].to_vec());
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 4)));
        }
        let model = KnnModel::train(feats, dists, k, 1.0);
        // Probe from the tie locations themselves, a midpoint (equidistant
        // from two clusters), and an outside point.
        for q in [
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
            vec![-7.0, 3.0],
        ] {
            prop_assert_eq!(model.predict(&q), model.predict_oracle(&q), "q={:?}", &q);
            prop_assert_eq!(
                model.predict_mode(&q),
                model.predict_mode_oracle(&q),
                "q={:?}", &q
            );
        }
    }

    /// The blocked distance kernel alone is bit-identical to the naive
    /// per-row fold, across row counts straddling the block width.
    #[test]
    fn blocked_distances_bit_identical(seed in 0u64..100_000, n in 1usize..100, dim in 1usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1e3..1e3)).collect())
            .collect();
        let m = portopt_ml::FeatureMatrix::from_rows(rows.iter().map(|r| r.as_slice()));
        let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1e3..1e3)).collect();
        let mut got = Vec::new();
        m.distances_into(&query, &mut got);
        let want: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .zip(&query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Differential check on the ridge solver: the Gaussian-elimination
    /// coefficients `LinearModel::try_train` keeps must match the naive
    /// normal-equations oracle (explicit Gauss–Jordan inverse of
    /// `XᵀX + λI`) on well-conditioned random datasets — many more points
    /// than dimensions, bounded features, a real λ on the diagonal.
    #[test]
    fn linear_weights_match_normal_equations_oracle(
        seed in 0u64..100_000, dim in 1usize..6, extra in 20usize..60
    ) {
        let dims = vec![2usize, 3, 4];
        let npts = dim + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats: Vec<Vec<f64>> = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push((0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect());
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 5)));
        }
        let lambda = 1e-3;
        let model = LinearModel::try_train(feats.clone(), dists.clone(), lambda).unwrap();
        let oracle = ridge_weights_oracle(&feats, &dists, lambda);
        prop_assert_eq!(model.weights().len(), oracle.len());
        for (wl, ol) in model.weights().iter().zip(&oracle) {
            prop_assert_eq!(wl.len(), ol.len());
            for (wc, oc) in wl.iter().zip(ol) {
                for (w, o) in wc.iter().zip(oc) {
                    prop_assert!(
                        (w - o).abs() <= 1e-6 * (1.0 + o.abs()),
                        "solver {} vs oracle {}", w, o
                    );
                }
            }
        }
    }

    /// With a single cluster, k-means degenerates to "everything in one
    /// bucket" and the clustered model must be the plain kNN model —
    /// bit-identical payload for the inner cluster and bit-identical
    /// predictions, across random datasets, ks and queries.
    #[test]
    fn single_cluster_is_plain_knn(
        seed in 0u64..100_000, npts in 1usize..30, k in 1usize..10
    ) {
        let dims = vec![2usize, 3, 4];
        let dim = 1 + (seed % 5) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats: Vec<Vec<f64>> = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push((0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect());
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 5)));
        }
        let plain = KnnModel::train(feats.clone(), dists.clone(), k, 1.0);
        let clustered = ClusteredKnnModel::train(feats, dists, k, 1.0, 1);
        prop_assert_eq!(clustered.n_clusters(), 1);
        prop_assert_eq!(&clustered.clusters()[0], &plain, "inner cluster differs from plain kNN");
        for _ in 0..4 {
            let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-12.0..12.0)).collect();
            prop_assert_eq!(clustered.predict(&q), plain.predict(&q), "predict");
            prop_assert_eq!(clustered.predict_mode(&q), plain.predict_mode(&q), "predict_mode");
        }
    }

    /// Equal-frequency binning is order-preserving and balanced within 1.
    #[test]
    fn binning_properties(seed in 0u64..100_000, n in 8usize..400, nbins in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let bins = bin_equal_frequency(&values, nbins);
        prop_assert_eq!(bins.len(), n);
        for (i, &b) in bins.iter().enumerate() {
            prop_assert!(b < nbins);
            for (j, &b2) in bins.iter().enumerate() {
                if values[i] < values[j] {
                    prop_assert!(b <= b2, "binning not order-preserving");
                }
            }
        }
    }
}
