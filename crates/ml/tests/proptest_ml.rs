//! Property-based tests for the model mathematics: distribution fitting,
//! mixing, KNN prediction and mutual information.

use portopt_ml::{
    bin_equal_frequency, entropy, mutual_information, normalized_mutual_information,
    IidDistribution, KnnModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_goodset(seed: u64, dims: &[usize], n: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| dims.iter().map(|&c| rng.gen_range(0..c) as u8).collect())
        .collect()
}

proptest! {
    /// Fitted distributions are proper (rows sum to 1, probs in (0,1]),
    /// and the mode maximises per-dimension probability.
    #[test]
    fn fit_produces_proper_distribution(seed in 0u64..100_000, n in 1usize..60) {
        let dims = vec![2usize, 3, 4, 2, 5];
        let good = random_goodset(seed, &dims, n);
        let g = IidDistribution::fit(&dims, &good);
        for (d, &card) in dims.iter().enumerate() {
            let mut total = 0.0;
            let mut maxp = 0.0f64;
            for j in 0..card {
                let p = g.prob(d, j as u8);
                prop_assert!(p > 0.0 && p <= 1.0);
                total += p;
                maxp = maxp.max(p);
            }
            prop_assert!((total - 1.0).abs() < 1e-9);
            let mode = g.mode();
            prop_assert!((g.prob(d, mode[d]) - maxp).abs() < 1e-12);
        }
    }

    /// Mixtures are proper distributions, and weights interpolate: the
    /// mixture probability lies between the component extremes.
    #[test]
    fn mixtures_are_bounded_by_components(sa in 0u64..100_000, sb in 0u64..100_000, w in 0.01f64..10.0) {
        let dims = vec![2usize, 4];
        let a = IidDistribution::fit(&dims, &random_goodset(sa, &dims, 10));
        let b = IidDistribution::fit(&dims, &random_goodset(sb, &dims, 10));
        let m = IidDistribution::mix(&[(w, &a), (1.0, &b)]);
        for d in 0..dims.len() {
            let mut total = 0.0;
            for j in 0..dims[d] {
                let (pa, pb, pm) = (a.prob(d, j as u8), b.prob(d, j as u8), m.prob(d, j as u8));
                prop_assert!(pm >= pa.min(pb) - 1e-12 && pm <= pa.max(pb) + 1e-12);
                total += pm;
            }
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// Cross-entropy is minimised (among our candidates) by the matching
    /// distribution: H(p, fit(p-samples)) <= H(p, fit(other-samples)).
    #[test]
    fn cross_entropy_prefers_own_samples(sa in 0u64..100_000, sb in 0u64..100_000) {
        prop_assume!(sa != sb);
        let dims = vec![2usize, 3, 4];
        let sample_a = random_goodset(sa, &dims, 30);
        let sample_b = random_goodset(sb, &dims, 30);
        let ga = IidDistribution::fit(&dims, &sample_a);
        let gb = IidDistribution::fit(&dims, &sample_b);
        // Allow tiny slack: smoothing can blur close distributions.
        prop_assert!(ga.cross_entropy(&sample_a) <= gb.cross_entropy(&sample_a) + 0.05);
    }

    /// KNN prediction always returns in-range choices, and for k=1 it
    /// returns the nearest training point's mode exactly.
    #[test]
    fn knn_prediction_in_range(seed in 0u64..100_000, npts in 2usize..30) {
        let dims = vec![2usize, 3, 4];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push(vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]);
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 8)));
        }
        let m1 = KnnModel::train(feats.clone(), dists.clone(), 1, 1.0);
        let q = vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)];
        let pred = m1.predict_mode(&q);
        for (d, &card) in dims.iter().enumerate() {
            prop_assert!((pred[d] as usize) < card);
        }
        let mk = KnnModel::train(feats, dists, 7, 1.0);
        let predk = mk.predict_mode(&q);
        for (d, &card) in dims.iter().enumerate() {
            prop_assert!((predk[d] as usize) < card);
        }
    }

    /// MI is non-negative, symmetric, and bounded by both entropies.
    #[test]
    fn mi_properties(seed in 0u64..100_000, n in 20usize..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(usize, usize)> = (0..n)
            .map(|_| (rng.gen_range(0..4usize), rng.gen_range(0..3usize)))
            .collect();
        let swapped: Vec<(usize, usize)> = pairs.iter().map(|&(a, b)| (b, a)).collect();
        let mi = mutual_information(&pairs, 4, 3);
        prop_assert!(mi >= 0.0);
        prop_assert!((mi - mutual_information(&swapped, 3, 4)).abs() < 1e-9);
        let xs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        prop_assert!(mi <= entropy(&xs, 4) + 1e-9);
        prop_assert!(mi <= entropy(&ys, 3) + 1e-9);
        let nmi = normalized_mutual_information(&pairs, 4, 3);
        prop_assert!((0.0..=1.0).contains(&nmi));
    }

    /// A trained model survives JSON serialization completely: the
    /// deserialized model equals the original, re-serializing it is
    /// byte-identical, and predictions on fresh feature vectors agree —
    /// the contract `portopt-serve` snapshots rely on.
    #[test]
    fn model_roundtrips_through_json(seed in 0u64..100_000, npts in 2usize..20) {
        let dims = vec![2usize, 3, 4, 2];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats = Vec::new();
        let mut dists = Vec::new();
        for i in 0..npts {
            feats.push(vec![
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-1e3..1e3),
                rng.gen_range(0.0..1.0),
            ]);
            dists.push(IidDistribution::fit(&dims, &random_goodset(seed ^ i as u64, &dims, 6)));
        }
        let model = KnnModel::train(feats, dists, 7, 1.0);
        let json = serde_json::to_string(&model).unwrap();
        let back: KnnModel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &model, "deserialized model differs");
        let json2 = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(&json2, &json, "re-serialization not byte-identical");
        for _ in 0..4 {
            let q = vec![
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-1e3..1e3),
                rng.gen_range(0.0..1.0),
            ];
            prop_assert_eq!(model.predict_mode(&q), back.predict_mode(&q));
        }
        prop_assert_eq!(back.feature_dim(), 3);
    }

    /// Equal-frequency binning is order-preserving and balanced within 1.
    #[test]
    fn binning_properties(seed in 0u64..100_000, n in 8usize..400, nbins in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let bins = bin_equal_frequency(&values, nbins);
        prop_assert_eq!(bins.len(), n);
        for (i, &b) in bins.iter().enumerate() {
            prop_assert!(b < nbins);
            for (j, &b2) in bins.iter().enumerate() {
                if values[i] < values[j] {
                    prop_assert!(b <= b2, "binning not order-preserving");
                }
            }
        }
    }
}
