//! Cross-model conformance suite: every registered [`ModelKind`] must
//! honour the [`Model`] trait contract the snapshot format and the
//! prediction service program against. The harness iterates
//! [`ModelKind::ALL`], so adding a model kind to the registry is one line
//! here (none, in fact — the loop picks it up) plus the dispatch arms in
//! `portopt_ml::model`.
//!
//! Contract pinned per kind:
//! * **save/load bit-identity** — `payload()` → JSON → `decode_model`
//!   re-serialises byte-identically and predicts identically;
//! * **honest `feature_dim`** — exactly the trained query length, and
//!   queries of that length are answered over exactly `dims()`;
//! * **deterministic retrain** — training twice on the same data yields
//!   byte-identical payloads;
//! * **mode-consistency** — `predict_mode(x) == predict(x).mode()`
//!   bit-identically.

use portopt_ml::{decode_model, try_train_kind, IidDistribution, Model, ModelKind, ModelOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pass-space shape shared by every conformance fixture.
const DIMS: [usize; 4] = [2, 3, 4, 2];

/// Deterministic synthetic training set: `n` feature vectors of length
/// `dim` with matching fitted distributions, all from one seed.
fn training_set(seed: u64, dim: usize, n: usize) -> (Vec<Vec<f64>>, Vec<IidDistribution>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut feats = Vec::with_capacity(n);
    let mut dists = Vec::with_capacity(n);
    for _ in 0..n {
        feats.push((0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect());
        let good: Vec<Vec<u8>> = (0..6)
            .map(|_| DIMS.iter().map(|&c| rng.gen_range(0..c) as u8).collect())
            .collect();
        dists.push(IidDistribution::fit(&DIMS, &good));
    }
    (feats, dists)
}

/// Deterministic probe queries of the given length.
fn probes(seed: u64, dim: usize, n: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-12.0..12.0)).collect())
        .collect()
}

/// Options small enough that every kind exercises its interesting path
/// (k < n for kNN, several clusters for k-means).
fn options() -> ModelOptions {
    ModelOptions {
        k: 5,
        k_clusters: 3,
        ..ModelOptions::default()
    }
}

fn train(kind: ModelKind, seed: u64, dim: usize, n: usize) -> Box<dyn Model> {
    let (feats, dists) = training_set(seed, dim, n);
    try_train_kind(kind, feats, dists, &options())
        .unwrap_or_else(|e| panic!("{kind}: training failed: {e}"))
}

#[test]
fn save_load_predict_bit_identity() {
    for kind in ModelKind::ALL {
        let model = train(kind, 0xC0DE, 5, 24);
        let payload = model.payload();
        let json = serde_json::to_string(&payload).unwrap();
        let parsed = serde_json::parse(&json).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let back = decode_model(kind, &parsed).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(back.kind(), kind);
        assert_eq!(
            serde_json::to_string(&back.payload()).unwrap(),
            json,
            "{kind}: re-serialisation not byte-identical"
        );
        for q in probes(0xBEEF ^ kind.index() as u64, 5, 8) {
            assert_eq!(
                back.predict(&q),
                model.predict(&q),
                "{kind}: predict diverged"
            );
            assert_eq!(
                back.predict_mode(&q),
                model.predict_mode(&q),
                "{kind}: predict_mode diverged"
            );
        }
    }
}

#[test]
fn feature_dim_is_honest() {
    for kind in ModelKind::ALL {
        for dim in [1usize, 3, 7] {
            let model = train(kind, 7 + dim as u64, dim, 16);
            assert_eq!(model.feature_dim(), dim, "{kind}");
            assert_eq!(model.dims(), DIMS.to_vec(), "{kind}");
            assert_eq!(model.len(), 16, "{kind}");
            assert!(!model.is_empty(), "{kind}");
            // A query of exactly feature_dim answers over exactly dims().
            let q = vec![0.25; model.feature_dim()];
            let mode = model.predict_mode(&q);
            assert_eq!(mode.len(), DIMS.len(), "{kind}");
            for (d, &card) in DIMS.iter().enumerate() {
                assert!((mode[d] as usize) < card, "{kind}: out-of-range choice");
            }
        }
    }
}

#[test]
fn retrain_is_deterministic() {
    for kind in ModelKind::ALL {
        let a = train(kind, 42, 4, 20);
        let b = train(kind, 42, 4, 20);
        assert_eq!(
            serde_json::to_string(&a.payload()).unwrap(),
            serde_json::to_string(&b.payload()).unwrap(),
            "{kind}: retraining on identical data is not byte-identical"
        );
    }
}

#[test]
fn predict_mode_matches_distribution_mode() {
    for kind in ModelKind::ALL {
        let model = train(kind, 0xF00D, 6, 30);
        for q in probes(0xD15C ^ kind.index() as u64, 6, 16) {
            assert_eq!(
                model.predict_mode(&q),
                model.predict(&q).mode(),
                "{kind}: predict_mode disagrees with predict().mode()"
            );
        }
    }
}

#[test]
fn boxed_clone_is_transparent() {
    for kind in ModelKind::ALL {
        let model = train(kind, 0xABBA, 3, 12);
        let clone = model.clone();
        assert_eq!(clone.kind(), kind);
        assert_eq!(
            serde_json::to_string(&clone.payload()).unwrap(),
            serde_json::to_string(&model.payload()).unwrap(),
            "{kind}"
        );
    }
}
