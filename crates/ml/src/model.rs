//! The model zoo: one trait over every trained predictor.
//!
//! [`Model`] is the contract the snapshot format and the prediction
//! service program against — predict a factorised distribution or its
//! mode from a feature vector, report the feature dimensionality and
//! pass-space shape, and hand back a serde payload. Three families
//! implement it:
//!
//! | kind        | type                  | idea                                 |
//! |-------------|-----------------------|--------------------------------------|
//! | `knn`       | [`KnnModel`]          | the paper's kNN-over-softmax (§3.3)  |
//! | `linear`    | [`LinearModel`]       | per-pass ridge regression to scores  |
//! | `clustered` | [`ClusteredKnnModel`] | k-means + one kNN per cluster        |
//!
//! [`ModelKind`] is the closed registry: it names the snapshot payload
//! tag ([`ModelKind::as_str`]), dispatches training
//! ([`try_train_kind`]) and decoding ([`decode_model`]), and indexes
//! per-kind metrics counters ([`ModelKind::index`]). Adding a model kind
//! means extending the enum and the two dispatch functions here; the
//! cross-model conformance suite then picks it up from
//! [`ModelKind::ALL`].

use crate::cluster::ClusteredKnnModel;
use crate::dist::IidDistribution;
use crate::knn::{KnnModel, TrainError, DEFAULT_BETA, DEFAULT_K};
use crate::linear::LinearModel;
use serde::{Deserialize, Serialize, Value};
use std::any::Any;
use std::fmt;

/// Which predictor family a trained model belongs to — the snapshot
/// payload tag, CLI `--model` value and metrics label, all spelled the
/// same way ([`as_str`](Self::as_str)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's kNN-over-softmax predictor ([`KnnModel`]).
    Knn,
    /// Per-pass ridge regression to class scores ([`LinearModel`]).
    Linear,
    /// k-means over normalised features with one kNN per cluster
    /// ([`ClusteredKnnModel`]).
    Clustered,
}

impl ModelKind {
    /// Every registered kind, in tag order — what generic harnesses (the
    /// conformance suite, the metrics renderings) iterate over.
    pub const ALL: [ModelKind; 3] = [ModelKind::Knn, ModelKind::Linear, ModelKind::Clustered];

    /// The canonical tag: what snapshots store, `--model` accepts and
    /// metrics label with.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::Knn => "knn",
            ModelKind::Linear => "linear",
            ModelKind::Clustered => "clustered",
        }
    }

    /// Parses a tag; `None` for anything [`as_str`](Self::as_str) never
    /// produces.
    pub fn parse(s: &str) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Dense index into [`ALL`](Self::ALL) (for fixed-size per-kind
    /// counter arrays).
    pub fn index(self) -> usize {
        match self {
            ModelKind::Knn => 0,
            ModelKind::Linear => 1,
            ModelKind::Clustered => 2,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for ModelKind {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for ModelKind {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = String::from_value(v)?;
        ModelKind::parse(&s).ok_or_else(|| {
            serde::Error::new(format!(
                "unknown model kind `{s}` (known: knn, linear, clustered)"
            ))
        })
    }
}

/// Hyper-parameters covering every kind in the zoo; each trainer reads
/// the fields it understands.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelOptions {
    /// Neighbour count for the kNN-family kinds (paper: 7).
    pub k: usize,
    /// Softmax inverse temperature for the kNN-family kinds (paper: 1).
    pub beta: f64,
    /// Ridge penalty λ for the linear kind.
    pub ridge_lambda: f64,
    /// Cluster count for the clustered kind.
    pub k_clusters: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            k: DEFAULT_K,
            beta: DEFAULT_BETA,
            ridge_lambda: crate::linear::DEFAULT_RIDGE_LAMBDA,
            k_clusters: crate::cluster::DEFAULT_K_CLUSTERS,
        }
    }
}

/// A trained predictor behind the snapshot and serving contract.
///
/// Implementations promise:
/// * **determinism** — `predict`/`predict_mode` are pure functions of the
///   trained state and the query, bit-identical across calls and across a
///   save/load round trip of [`payload`](Self::payload);
/// * **mode-consistency** — `predict_mode(x) == predict(x).mode()`
///   bit-identically (the conformance suite pins it for every kind);
/// * **honest metadata** — `feature_dim` is the exact query length
///   `predict` expects and `dims` the exact pass-space shape it answers
///   over.
pub trait Model: fmt::Debug + Send + Sync {
    /// Which registry entry this model is (drives snapshot tagging,
    /// payload decoding and per-kind metrics).
    fn kind(&self) -> ModelKind;
    /// Dimensionality of the feature vectors the model was trained on.
    fn feature_dim(&self) -> usize;
    /// Number of training points behind the model.
    fn len(&self) -> usize;
    /// Whether the model holds no training points (never true for a
    /// trained model).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Per-dimension cardinalities of the optimisation space the model
    /// predicts over.
    fn dims(&self) -> Vec<usize>;
    /// The predictive distribution `q(y|x)`.
    fn predict(&self, x: &[f64]) -> IidDistribution;
    /// The predicted-best setting `argmax_y q(y|x)`.
    fn predict_mode(&self, x: &[f64]) -> Vec<u8>;
    /// The serde payload a snapshot stores under its kind tag;
    /// [`decode_model`] with [`kind`](Self::kind) inverts it exactly.
    fn payload(&self) -> Value;
    /// Clones the model behind the trait object ([`Clone`] for
    /// `Box<dyn Model>` delegates here).
    fn boxed_clone(&self) -> Box<dyn Model>;
    /// Downcast access for kind-specific paths (benches and differential
    /// tests that need the concrete model's oracle methods).
    fn as_any(&self) -> &dyn Any;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

impl Model for KnnModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Knn
    }
    fn feature_dim(&self) -> usize {
        KnnModel::feature_dim(self)
    }
    fn len(&self) -> usize {
        KnnModel::len(self)
    }
    fn is_empty(&self) -> bool {
        KnnModel::is_empty(self)
    }
    fn dims(&self) -> Vec<usize> {
        KnnModel::dims(self)
    }
    fn predict(&self, x: &[f64]) -> IidDistribution {
        KnnModel::predict(self, x)
    }
    fn predict_mode(&self, x: &[f64]) -> Vec<u8> {
        KnnModel::predict_mode(self, x)
    }
    fn payload(&self) -> Value {
        self.to_value()
    }
    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Model for LinearModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Linear
    }
    fn feature_dim(&self) -> usize {
        LinearModel::feature_dim(self)
    }
    fn len(&self) -> usize {
        LinearModel::len(self)
    }
    fn is_empty(&self) -> bool {
        LinearModel::is_empty(self)
    }
    fn dims(&self) -> Vec<usize> {
        LinearModel::dims(self)
    }
    fn predict(&self, x: &[f64]) -> IidDistribution {
        LinearModel::predict(self, x)
    }
    fn predict_mode(&self, x: &[f64]) -> Vec<u8> {
        LinearModel::predict_mode(self, x)
    }
    fn payload(&self) -> Value {
        self.to_value()
    }
    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Model for ClusteredKnnModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Clustered
    }
    fn feature_dim(&self) -> usize {
        ClusteredKnnModel::feature_dim(self)
    }
    fn len(&self) -> usize {
        ClusteredKnnModel::len(self)
    }
    fn is_empty(&self) -> bool {
        ClusteredKnnModel::is_empty(self)
    }
    fn dims(&self) -> Vec<usize> {
        ClusteredKnnModel::dims(self)
    }
    fn predict(&self, x: &[f64]) -> IidDistribution {
        ClusteredKnnModel::predict(self, x)
    }
    fn predict_mode(&self, x: &[f64]) -> Vec<u8> {
        ClusteredKnnModel::predict_mode(self, x)
    }
    fn payload(&self) -> Value {
        self.to_value()
    }
    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Trains a model of the given kind from per-pair features and fitted
/// distributions — the one dispatch point every trainer goes through.
pub fn try_train_kind(
    kind: ModelKind,
    features: Vec<Vec<f64>>,
    dists: Vec<IidDistribution>,
    opts: &ModelOptions,
) -> Result<Box<dyn Model>, TrainError> {
    Ok(match kind {
        ModelKind::Knn => Box::new(KnnModel::try_train(features, dists, opts.k, opts.beta)?),
        ModelKind::Linear => Box::new(LinearModel::try_train(features, dists, opts.ridge_lambda)?),
        ModelKind::Clustered => Box::new(ClusteredKnnModel::try_train(
            features,
            dists,
            opts.k,
            opts.beta,
            opts.k_clusters,
        )?),
    })
}

/// Decodes a model payload of the given kind — the inverse of
/// [`Model::payload`], and the one dispatch point every snapshot loader
/// goes through.
pub fn decode_model(kind: ModelKind, v: &Value) -> Result<Box<dyn Model>, serde::Error> {
    Ok(match kind {
        ModelKind::Knn => Box::new(KnnModel::from_value(v)?),
        ModelKind::Linear => Box::new(LinearModel::from_value(v)?),
        ModelKind::Clustered => Box::new(ClusteredKnnModel::from_value(v)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_round_trip() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.to_string(), kind.as_str());
            assert_eq!(ModelKind::ALL[kind.index()], kind);
            let back = ModelKind::from_value(&kind.to_value()).unwrap();
            assert_eq!(back, kind);
        }
        assert_eq!(ModelKind::parse("gradient-boosted"), None);
        assert!(ModelKind::from_value(&Value::Str("nope".into()))
            .unwrap_err()
            .to_string()
            .contains("unknown model kind `nope`"));
    }

    #[test]
    fn dispatch_trains_every_kind_and_payloads_invert() {
        let dims = vec![2usize, 3usize];
        let mut features = Vec::new();
        let mut dists = Vec::new();
        for i in 0..10 {
            let e = i as f64;
            features.push(vec![e, -e, e * 0.5]);
            let pick = if i < 5 { vec![0, 0] } else { vec![1, 2] };
            dists.push(IidDistribution::fit(&dims, &vec![pick; 4]));
        }
        let opts = ModelOptions {
            k: 3,
            k_clusters: 2,
            ..ModelOptions::default()
        };
        for kind in ModelKind::ALL {
            let m = try_train_kind(kind, features.clone(), dists.clone(), &opts).unwrap();
            assert_eq!(m.kind(), kind);
            assert_eq!(m.feature_dim(), 3);
            assert_eq!(m.dims(), dims);
            assert_eq!(m.len(), 10);
            assert!(!m.is_empty());
            let back = decode_model(kind, &m.payload()).unwrap();
            assert_eq!(back.kind(), kind);
            assert_eq!(back.payload(), m.payload(), "{kind}: payload round trip");
            let probe = vec![2.5, -2.5, 1.25];
            assert_eq!(back.predict(&probe), m.predict(&probe), "{kind}");
            assert_eq!(m.predict_mode(&probe), m.predict(&probe).mode(), "{kind}");
        }
    }

    #[test]
    fn boxed_clone_preserves_behaviour() {
        let dims = vec![2usize];
        let features = vec![vec![0.0], vec![1.0]];
        let dists = vec![
            IidDistribution::fit(&dims, &[vec![0]]),
            IidDistribution::fit(&dims, &[vec![1]]),
        ];
        let m: Box<dyn Model> =
            try_train_kind(ModelKind::Knn, features, dists, &ModelOptions::default()).unwrap();
        let c = m.clone();
        assert_eq!(c.kind(), ModelKind::Knn);
        assert_eq!(c.predict_mode(&[0.1]), m.predict_mode(&[0.1]));
        assert!(c.as_any().downcast_ref::<KnnModel>().is_some());
    }
}
