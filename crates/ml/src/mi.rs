//! Mutual-information analysis for the Hinton diagrams of Figures 8 and 9.
//!
//! Figure 8 plots, per program, the normalised mutual information between
//! each optimisation dimension's setting and the achieved speedup (binned);
//! Figure 9 plots the MI between each feature (binned) and the best setting
//! of each optimisation dimension.

/// Mutual information `I(X;Y)` in nats between two discrete variables given
/// paired samples, with supports `0..nx` and `0..ny`.
///
/// # Panics
/// Panics if any sample is outside its support.
pub fn mutual_information(pairs: &[(usize, usize)], nx: usize, ny: usize) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mut joint = vec![0.0f64; nx * ny];
    let mut px = vec![0.0f64; nx];
    let mut py = vec![0.0f64; ny];
    for &(x, y) in pairs {
        assert!(x < nx && y < ny, "sample ({x},{y}) outside support");
        joint[x * ny + y] += 1.0;
        px[x] += 1.0;
        py[y] += 1.0;
    }
    let mut mi = 0.0;
    for x in 0..nx {
        for y in 0..ny {
            let pxy = joint[x * ny + y] / n;
            if pxy > 0.0 {
                mi += pxy * (pxy * n * n / (px[x] * py[y])).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Entropy `H(X)` in nats of a discrete sample.
pub fn entropy(xs: &[usize], nx: usize) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mut c = vec![0.0f64; nx];
    for &x in xs {
        c[x] += 1.0;
    }
    -c.iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| (v / n) * (v / n).ln())
        .sum::<f64>()
}

/// Normalised mutual information `I(X;Y) / sqrt(H(X) H(Y))` in `[0, 1]`
/// (0 when either variable is constant).
pub fn normalized_mutual_information(pairs: &[(usize, usize)], nx: usize, ny: usize) -> f64 {
    let xs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let hx = entropy(&xs, nx);
    let hy = entropy(&ys, ny);
    if hx <= 0.0 || hy <= 0.0 {
        return 0.0;
    }
    (mutual_information(pairs, nx, ny) / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

/// Equal-frequency binning of a continuous variable into `nbins` bins;
/// returns the bin index per sample.
pub fn bin_equal_frequency(values: &[f64], nbins: usize) -> Vec<usize> {
    assert!(nbins >= 1);
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut bins = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        bins[i] = (rank * nbins / n).min(nbins - 1);
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_variables_have_zero_mi() {
        // x cycles 0..4, y constant-ish pattern independent of x.
        let pairs: Vec<(usize, usize)> = (0..4000).map(|i| (i % 4, (i / 4) % 3)).collect();
        let mi = mutual_information(&pairs, 4, 3);
        assert!(mi < 0.01, "mi = {mi}");
    }

    #[test]
    fn identical_variables_have_mi_equal_entropy() {
        let pairs: Vec<(usize, usize)> = (0..1000).map(|i| (i % 4, i % 4)).collect();
        let xs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let mi = mutual_information(&pairs, 4, 4);
        let h = entropy(&xs, 4);
        assert!((mi - h).abs() < 1e-9);
        assert!((normalized_mutual_information(&pairs, 4, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_dependence_is_between() {
        // y = x for half the samples, random-ish otherwise.
        let pairs: Vec<(usize, usize)> = (0..2000)
            .map(|i| {
                let x = i % 4;
                let y = if i % 2 == 0 { x } else { (i / 2) % 4 };
                (x, y)
            })
            .collect();
        let nmi = normalized_mutual_information(&pairs, 4, 4);
        assert!(nmi > 0.05 && nmi < 0.95, "nmi = {nmi}");
    }

    #[test]
    fn constant_variable_yields_zero_nmi() {
        let pairs: Vec<(usize, usize)> = (0..100).map(|i| (0usize, i % 4)).collect();
        assert_eq!(normalized_mutual_information(&pairs, 1, 4), 0.0);
    }

    #[test]
    fn equal_frequency_binning_balances() {
        let values: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect();
        let bins = bin_equal_frequency(&values, 4);
        let mut counts = [0usize; 4];
        for &b in &bins {
            counts[b] += 1;
        }
        for c in counts {
            assert_eq!(c, 25);
        }
        // Order-preserving.
        assert_eq!(bins[0], 0);
        assert_eq!(bins[99], 3);
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let xs: Vec<usize> = (0..800).map(|i| i % 8).collect();
        assert!((entropy(&xs, 8) - (8.0f64).ln()).abs() < 1e-9);
    }
}
