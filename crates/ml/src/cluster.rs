//! Cluster-specialised kNN: deterministic k-means over normalised
//! features, one independent [`KnnModel`] per cluster.
//!
//! The GRACE-style alternative predictor: training partitions the
//! normalised feature space with Lloyd's k-means and fits a plain kNN
//! model to each cluster's members; prediction routes a query to the
//! nearest cluster centre and delegates to that cluster's model. With
//! `k_clusters = 1` the partition is trivial and the single cluster model
//! is trained on exactly the full training set in its original order —
//! bit-identical to a plain [`KnnModel`], which the differential proptest
//! pins.
//!
//! Everything is deterministic: initial centres are the points at indices
//! `⌊i·n/k⌋` (no RNG), assignment ties go to the lowest centre index,
//! empty clusters keep their previous centre, and the loop stops the
//! first time an assignment pass changes nothing (or after a fixed
//! iteration cap). Retraining from the same dataset is bit-identical.

use crate::dist::IidDistribution;
use crate::knn::{KnnModel, Normalizer, TrainError};
use crate::linear::validate_training_input;
use serde::{Deserialize, Serialize};

/// Default cluster count: small enough that smoke-scale datasets keep a
/// few points per cluster, large enough to separate the mem-heavy/ALU
/// program families the suite actually contains.
pub const DEFAULT_K_CLUSTERS: usize = 4;

/// Upper bound on Lloyd iterations; assignment convergence almost always
/// stops the loop long before this.
const MAX_KMEANS_ITERS: usize = 100;

/// A k-means partition of the training set with one [`KnnModel`] per
/// cluster. `PartialEq` compares the full trained state (centres and
/// every cluster model, derived matrices included), which is what the
/// round-trip tests assert on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteredKnnModel {
    /// The *global* normaliser, used only to place queries relative to
    /// the cluster centres; each cluster model fits its own.
    normalizer: Normalizer,
    /// Cluster centres in the global normalised space, parallel with
    /// `clusters`. Empty clusters are dropped at the end of training, so
    /// every centre has a model.
    centers: Vec<Vec<f64>>,
    clusters: Vec<KnnModel>,
    /// Neighbour count handed to every per-cluster model.
    pub k: usize,
    /// Softmax inverse temperature handed to every per-cluster model.
    pub beta: f64,
    /// The requested cluster count (the effective count after dropping
    /// empty clusters is `self.n_clusters()`).
    pub k_clusters: usize,
}

impl ClusteredKnnModel {
    /// Trains the model from per-pair features and fitted distributions.
    ///
    /// # Panics
    /// Panics on the inputs [`try_train`](Self::try_train) rejects.
    pub fn train(
        features: Vec<Vec<f64>>,
        dists: Vec<IidDistribution>,
        k: usize,
        beta: f64,
        k_clusters: usize,
    ) -> Self {
        match Self::try_train(features, dists, k, beta, k_clusters) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Trains the model, rejecting malformed input with the same typed
    /// errors (and in the same order) as `KnnModel::try_train`.
    pub fn try_train(
        features: Vec<Vec<f64>>,
        dists: Vec<IidDistribution>,
        k: usize,
        beta: f64,
        k_clusters: usize,
    ) -> Result<Self, TrainError> {
        validate_training_input(&features, &dists)?;
        let n = features.len();
        let normalizer = Normalizer::fit(&features);
        let xn: Vec<Vec<f64>> = features.iter().map(|f| normalizer.apply(f)).collect();
        let k_eff = k_clusters.max(1).min(n);
        // Deterministic seeding: the (already dataset-ordered) points at
        // evenly spaced indices.
        let mut centers: Vec<Vec<f64>> = (0..k_eff).map(|i| xn[i * n / k_eff].clone()).collect();
        let mut assign = vec![0usize; n];
        for _ in 0..MAX_KMEANS_ITERS {
            let mut changed = false;
            for (i, x) in xn.iter().enumerate() {
                let best = nearest_center(&centers, x);
                if assign[i] != best {
                    assign[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            for (c, center) in centers.iter_mut().enumerate() {
                let members: Vec<&Vec<f64>> = assign
                    .iter()
                    .zip(&xn)
                    .filter(|(a, _)| **a == c)
                    .map(|(_, x)| x)
                    .collect();
                // An empty cluster keeps its previous centre (it may
                // capture points again next pass).
                if members.is_empty() {
                    continue;
                }
                let mut mean = vec![0.0f64; center.len()];
                for m in &members {
                    for (acc, v) in mean.iter_mut().zip(m.iter()) {
                        *acc += v;
                    }
                }
                for acc in &mut mean {
                    *acc /= members.len() as f64;
                }
                *center = mean;
            }
        }
        // One kNN model per non-empty cluster, trained on its members'
        // RAW features in original dataset order — so `k_clusters = 1`
        // reconstructs a plain KnnModel exactly.
        let mut kept_centers = Vec::new();
        let mut clusters = Vec::new();
        for c in 0..k_eff {
            let idx: Vec<usize> = (0..n).filter(|&i| assign[i] == c).collect();
            if idx.is_empty() {
                continue;
            }
            let f: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
            let g: Vec<IidDistribution> = idx.iter().map(|&i| dists[i].clone()).collect();
            clusters.push(KnnModel::try_train(f, g, k, beta)?);
            kept_centers.push(centers[c].clone());
        }
        Ok(ClusteredKnnModel {
            normalizer,
            centers: kept_centers,
            clusters,
            k,
            beta,
            k_clusters,
        })
    }

    /// Total training points across every cluster.
    pub fn len(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).sum()
    }

    /// Returns `true` when no cluster holds any training point (never
    /// true for a model built by [`ClusteredKnnModel::train`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the feature vectors this model was trained on.
    pub fn feature_dim(&self) -> usize {
        self.normalizer.dim()
    }

    /// Per-dimension cardinalities of the optimisation space.
    pub fn dims(&self) -> Vec<usize> {
        self.clusters[0].dims()
    }

    /// Number of non-empty clusters the training set actually produced.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The per-cluster models, parallel with [`centers`](Self::centers)
    /// (for the `k_clusters = 1` identity test and analysis).
    pub fn clusters(&self) -> &[KnnModel] {
        &self.clusters
    }

    /// The cluster centres in the global normalised feature space.
    pub fn centers(&self) -> &[Vec<f64>] {
        &self.centers
    }

    /// Index of the cluster a query routes to.
    fn route(&self, x: &[f64]) -> usize {
        nearest_center(&self.centers, &self.normalizer.apply(x))
    }

    /// The predictive distribution of the nearest cluster's kNN model.
    pub fn predict(&self, x: &[f64]) -> IidDistribution {
        self.clusters[self.route(x)].predict(x)
    }

    /// The predicted-best setting, through the nearest cluster's fused
    /// kNN decode (mode-consistent because `KnnModel::predict_mode` is).
    pub fn predict_mode(&self, x: &[f64]) -> Vec<u8> {
        self.clusters[self.route(x)].predict_mode(x)
    }
}

/// Index of the centre nearest to `x` by squared Euclidean distance;
/// ties go to the lowest index (strict `<` while scanning in order).
fn nearest_center(centers: &[Vec<f64>], x: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d: f64 = center.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_training() -> (Vec<Vec<f64>>, Vec<IidDistribution>) {
        let dims = vec![2usize, 4usize];
        let mut features = Vec::new();
        let mut dists = Vec::new();
        for i in 0..8 {
            let e = i as f64 * 0.1;
            features.push(vec![e, -e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![0, 0]; 4]));
            features.push(vec![10.0 + e, 10.0 - e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![1, 3]; 4]));
        }
        (features, dists)
    }

    #[test]
    fn separates_obvious_clusters_and_predicts_their_preferences() {
        let (features, dists) = two_cluster_training();
        let m = ClusteredKnnModel::train(features, dists, 3, 1.0, 2);
        assert_eq!(m.n_clusters(), 2);
        assert_eq!(m.len(), 16);
        assert_eq!(m.feature_dim(), 2);
        assert_eq!(m.dims(), vec![2, 4]);
        assert_eq!(m.predict_mode(&[0.2, 0.0]), vec![0, 0]);
        assert_eq!(m.predict_mode(&[9.8, 10.1]), vec![1, 3]);
    }

    #[test]
    fn one_cluster_is_bit_identical_to_plain_knn() {
        let (features, dists) = two_cluster_training();
        let plain = KnnModel::train(features.clone(), dists.clone(), 7, 1.0);
        let clustered = ClusteredKnnModel::train(features, dists, 7, 1.0, 1);
        assert_eq!(clustered.n_clusters(), 1);
        assert_eq!(&clustered.clusters()[0], &plain);
        for probe in [vec![0.0, 0.0], vec![5.0, 5.0], vec![10.0, 10.0]] {
            assert_eq!(clustered.predict(&probe), plain.predict(&probe));
            assert_eq!(clustered.predict_mode(&probe), plain.predict_mode(&probe));
        }
    }

    #[test]
    fn retraining_is_deterministic() {
        let (features, dists) = two_cluster_training();
        let a = ClusteredKnnModel::train(features.clone(), dists.clone(), 3, 1.0, 4);
        let b = ClusteredKnnModel::train(features, dists, 3, 1.0, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn more_clusters_than_points_is_clamped() {
        let dims = vec![2usize];
        let features = vec![vec![0.0], vec![1.0]];
        let dists = vec![
            IidDistribution::fit(&dims, &[vec![0]]),
            IidDistribution::fit(&dims, &[vec![1]]),
        ];
        let m = ClusteredKnnModel::train(features, dists, 1, 1.0, 16);
        assert!(m.n_clusters() <= 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.predict_mode(&[0.0]), vec![0]);
        assert_eq!(m.predict_mode(&[1.0]), vec![1]);
    }

    #[test]
    fn try_train_reports_typed_errors_in_knn_order() {
        let d = IidDistribution::fit(&[2], &[vec![0]]);
        let err =
            ClusteredKnnModel::try_train(vec![vec![0.0]], vec![d.clone(), d.clone()], 1, 1.0, 2)
                .unwrap_err();
        assert_eq!(
            err,
            TrainError::LengthMismatch {
                features: 1,
                dists: 2
            }
        );
        let err = ClusteredKnnModel::try_train(Vec::new(), Vec::new(), 1, 1.0, 2).unwrap_err();
        assert_eq!(err, TrainError::Empty);
    }

    #[test]
    fn roundtrips_through_json() {
        let (features, dists) = two_cluster_training();
        let m = ClusteredKnnModel::train(features, dists, 3, 1.0, 2);
        let json = serde_json::to_string(&m).unwrap();
        let back: ClusteredKnnModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        let probe = vec![4.2, -1.3];
        assert_eq!(m.predict(&probe), back.predict(&probe));
    }
}
