//! # portopt-ml
//!
//! The machine-learning model of Dubach et al. (MICRO 2009, §3.3): per
//! program/microarchitecture-pair factorised multinomial distributions over
//! good optimisation settings ([`IidDistribution`], eq. 4–5), a
//! K-nearest-neighbour predictive distribution over features
//! ([`KnnModel`], eq. 6) decoded at its mode (eq. 1), and the
//! mutual-information analysis behind the paper's Hinton diagrams
//! ([`mi`], Figures 8–9).
//!
//! The crate is deliberately generic: settings are plain choice vectors
//! (`Vec<u8>`) over per-dimension cardinalities, and features are plain
//! `Vec<f64>` — the mapping to compiler flags and hardware counters lives
//! in `portopt-core`.
//!
//! ```
//! use portopt_ml::{IidDistribution, KnnModel};
//!
//! let dims = vec![2, 2];
//! // Two training pairs with opposite preferred settings.
//! let ga = IidDistribution::fit(&dims, &vec![vec![0, 0]; 5]);
//! let gb = IidDistribution::fit(&dims, &vec![vec![1, 1]; 5]);
//! let model = KnnModel::train(
//!     vec![vec![0.0, 0.0], vec![1.0, 1.0]],
//!     vec![ga, gb],
//!     1,
//!     1.0,
//! );
//! assert_eq!(model.predict_mode(&[0.1, 0.0]), vec![0, 0]);
//! assert_eq!(model.predict_mode(&[0.9, 1.0]), vec![1, 1]);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod dist;
pub mod knn;
pub mod linear;
pub mod mi;
pub mod model;

pub use cluster::{ClusteredKnnModel, DEFAULT_K_CLUSTERS};
pub use dist::IidDistribution;
pub use knn::{FeatureMatrix, KnnModel, Normalizer, TrainError, DEFAULT_BETA, DEFAULT_K};
pub use linear::{ridge_weights_oracle, LinearModel, DEFAULT_RIDGE_LAMBDA};
pub use mi::{bin_equal_frequency, entropy, mutual_information, normalized_mutual_information};
pub use model::{decode_model, try_train_kind, Model, ModelKind, ModelOptions};
