//! The K-nearest-neighbour predictive distribution of §3.3.2.
//!
//! `q(y|x*)` is the softmax-weighted convex combination (eq. 6, β = 1,
//! K = 7) of the per-training-pair distributions whose feature vectors are
//! nearest to the new program/microarchitecture's features under Euclidean
//! distance on z-score-normalised features.

use crate::dist::IidDistribution;
use serde::{Deserialize, Serialize};

/// Per-feature z-score normalisation fitted on the training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fits mean/std per feature. Zero-variance features get std 1 (they
    /// then contribute nothing to distances).
    pub fn fit(features: &[Vec<f64>]) -> Self {
        assert!(!features.is_empty(), "no training features");
        let n = features.len() as f64;
        let d = features[0].len();
        let mut mean = vec![0.0; d];
        for f in features {
            for (m, v) in mean.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for f in features {
            for ((v, x), m) in var.iter_mut().zip(f).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Normalizer { mean, std }
    }

    /// Dimensionality of the feature vectors this normalizer was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Normalises one feature vector.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }
}

/// The trained model `M : x → q(y|x)`.
///
/// `PartialEq` compares the full trained state (normalizer, training
/// points, hyper-parameters) — it is what snapshot round-trip tests assert
/// on, so it must stay in sync with the serialized field set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnModel {
    normalizer: Normalizer,
    /// Normalised features and fitted distribution per training pair.
    points: Vec<(Vec<f64>, IidDistribution)>,
    /// Number of neighbours (paper: 7).
    pub k: usize,
    /// Softmax inverse temperature (paper: 1.0).
    pub beta: f64,
}

/// The paper's K.
pub const DEFAULT_K: usize = 7;
/// The paper's β.
pub const DEFAULT_BETA: f64 = 1.0;

impl KnnModel {
    /// Trains the model from per-pair features and fitted distributions.
    ///
    /// # Panics
    /// Panics if the inputs are empty or of mismatched length.
    pub fn train(
        features: Vec<Vec<f64>>,
        dists: Vec<IidDistribution>,
        k: usize,
        beta: f64,
    ) -> Self {
        assert_eq!(
            features.len(),
            dists.len(),
            "features/distributions mismatch"
        );
        assert!(!features.is_empty(), "empty training set");
        let normalizer = Normalizer::fit(&features);
        let points = features
            .into_iter()
            .map(|f| normalizer.apply(&f))
            .zip(dists)
            .collect();
        KnnModel {
            normalizer,
            points,
            k,
            beta,
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Dimensionality of the feature vectors this model was trained on
    /// (19 for the paper's counter + descriptor features).
    pub fn feature_dim(&self) -> usize {
        self.normalizer.dim()
    }

    /// Returns `true` when the model holds no training points (never true
    /// for a model built by [`KnnModel::train`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The k nearest training points with their softmax weights — the
    /// shared front half of [`predict`](Self::predict) and
    /// [`predict_mode`](Self::predict_mode).
    fn softmax_neighbours(&self, x: &[f64]) -> Vec<(f64, &IidDistribution)> {
        let xn = self.normalizer.apply(x);
        // K nearest by Euclidean distance.
        let mut dist_idx: Vec<(f64, usize)> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, (f, _))| {
                let d2: f64 = f.iter().zip(&xn).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2.sqrt(), i)
            })
            .collect();
        dist_idx.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let k = self.k.min(dist_idx.len());
        let nearest = &dist_idx[..k];
        // Softmax weights, computed stably relative to the closest point.
        let dmin = nearest[0].0;
        nearest
            .iter()
            .map(|&(d, i)| ((-self.beta * (d - dmin)).exp(), &self.points[i].1))
            .collect()
    }

    /// The predictive distribution `q(y|x*)` (eq. 6).
    pub fn predict(&self, x: &[f64]) -> IidDistribution {
        IidDistribution::mix(&self.softmax_neighbours(x))
    }

    /// The predicted-best setting `y* = argmax_y q(y|x*)` (eq. 1).
    ///
    /// Equivalent to `self.predict(x).mode()` but fused: the mixture is
    /// never materialized (that costs ~40 small allocations per call —
    /// most of the serving hot path). Bit-identical to the unfused form:
    /// each cell accumulates `(w/Σw)·θ` over the neighbours in the same
    /// order `IidDistribution::mix` does, and ties resolve like
    /// `Iterator::max_by` (the last maximum wins) as in
    /// `IidDistribution::mode` — `fused_mode_matches_mix_then_mode`
    /// asserts the equivalence.
    pub fn predict_mode(&self, x: &[f64]) -> Vec<u8> {
        let parts = self.softmax_neighbours(x);
        let wsum: f64 = parts.iter().map(|(w, _)| w).sum();
        let dims = parts[0].1.n_dims();
        (0..dims)
            .map(|d| {
                let cardinality = parts[0].1.row(d).len();
                let mut best = (0u8, f64::NEG_INFINITY);
                for j in 0..cardinality {
                    let mut p = 0.0;
                    for (w, g) in &parts {
                        p += (w / wsum) * g.row(d)[j];
                    }
                    if p >= best.1 {
                        best = (j as u8, p);
                    }
                }
                best.0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_model(k: usize) -> KnnModel {
        // Cluster A near (0,0) prefers setting [0,0]; cluster B near (10,10)
        // prefers [1,3].
        let dims = vec![2usize, 4usize];
        let mut features = Vec::new();
        let mut dists = Vec::new();
        for i in 0..8 {
            let e = i as f64 * 0.1;
            features.push(vec![e, -e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![0, 0]; 4]));
            features.push(vec![10.0 + e, 10.0 - e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![1, 3]; 4]));
        }
        KnnModel::train(features, dists, k, 1.0)
    }

    #[test]
    fn fused_mode_matches_mix_then_mode() {
        // The fused predict_mode must be bit-identical to materializing
        // the mixture and taking its mode — across k values (including
        // k > points, exercised clamping), tied distances and probe
        // points on and off the training manifold.
        for k in [1, 2, 7, 64] {
            let m = two_cluster_model(k);
            for probe in [
                vec![0.0, 0.0],
                vec![10.0, 10.0],
                vec![5.0, 5.0], // equidistant: tie-heavy weights
                vec![-3.0, 17.0],
                vec![0.35, -0.35], // exactly on a training point
            ] {
                assert_eq!(
                    m.predict_mode(&probe),
                    m.predict(&probe).mode(),
                    "k={k} probe={probe:?}"
                );
            }
        }
    }

    #[test]
    fn predicts_cluster_preference() {
        let m = two_cluster_model(DEFAULT_K);
        assert_eq!(m.predict_mode(&[0.2, 0.0]), vec![0, 0]);
        assert_eq!(m.predict_mode(&[9.8, 10.1]), vec![1, 3]);
    }

    #[test]
    fn normalization_makes_scales_comparable() {
        // One feature ranges 0..1, the other 0..1e6; without normalisation
        // the small feature would be ignored.
        let dims = vec![2usize];
        let features = vec![
            vec![0.0, 500_000.0],
            vec![0.1, 500_000.0],
            vec![1.0, 500_000.0],
            vec![0.9, 500_000.0],
        ];
        let dists = vec![
            IidDistribution::fit(&dims, &vec![vec![0]; 3]),
            IidDistribution::fit(&dims, &vec![vec![0]; 3]),
            IidDistribution::fit(&dims, &vec![vec![1]; 3]),
            IidDistribution::fit(&dims, &vec![vec![1]; 3]),
        ];
        let m = KnnModel::train(features, dists, 2, 1.0);
        assert_eq!(m.predict_mode(&[0.05, 500_000.0]), vec![0]);
        assert_eq!(m.predict_mode(&[0.95, 500_000.0]), vec![1]);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let m = two_cluster_model(100);
        // Should not panic; blends everything.
        let _ = m.predict(&[5.0, 5.0]);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
    }

    #[test]
    fn closer_neighbours_dominate_the_mixture() {
        let dims = vec![2usize];
        let features = vec![vec![0.0], vec![3.0]];
        let dists = vec![
            IidDistribution::fit(&dims, &vec![vec![0]; 5]),
            IidDistribution::fit(&dims, &vec![vec![1]; 5]),
        ];
        let m = KnnModel::train(features, dists, 2, 1.0);
        let q = m.predict(&[0.1]);
        assert!(q.prob(0, 0) > q.prob(0, 1));
        let q2 = m.predict(&[2.9]);
        assert!(q2.prob(0, 1) > q2.prob(0, 0));
    }

    #[test]
    fn normalizer_zscores() {
        let n = Normalizer::fit(&[vec![0.0, 10.0], vec![2.0, 10.0]]);
        let z = n.apply(&[1.0, 10.0]);
        assert!((z[0] - 0.0).abs() < 1e-12);
        assert_eq!(z[1], 0.0, "zero-variance feature maps to 0");
    }
}
