//! The K-nearest-neighbour predictive distribution of §3.3.2.
//!
//! `q(y|x*)` is the softmax-weighted convex combination (eq. 6, β = 1,
//! K = 7) of the per-training-pair distributions whose feature vectors are
//! nearest to the new program/microarchitecture's features under Euclidean
//! distance on z-score-normalised features.
//!
//! ## Two prediction paths, one contract
//!
//! The serving hot path runs on a [`FeatureMatrix`] — a cache-linear,
//! blocked structure-of-arrays copy of the normalised training features
//! built at train/deserialize time — with top-k chosen by partial
//! selection instead of a full sort. The original per-point
//! `Vec<Vec<f64>>` scan is retained as the **reference oracle**
//! ([`KnnModel::predict_oracle`] / [`KnnModel::predict_mode_oracle`]);
//! the two paths are bit-identical on finite inputs, which the
//! differential proptests in `tests/proptest_ml.rs` pin down to the last
//! ulp (same floating-point association, same duplicate-distance
//! tie-break).

use crate::dist::IidDistribution;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Per-feature z-score normalisation fitted on the training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fits mean/std per feature. Zero-variance features get std 1 (they
    /// then contribute nothing to distances).
    pub fn fit(features: &[Vec<f64>]) -> Self {
        assert!(!features.is_empty(), "no training features");
        let n = features.len() as f64;
        let d = features[0].len();
        let mut mean = vec![0.0; d];
        for f in features {
            for (m, v) in mean.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for f in features {
            for ((v, x), m) in var.iter_mut().zip(f).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Normalizer { mean, std }
    }

    /// Dimensionality of the feature vectors this normalizer was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Normalises one feature vector.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }
}

/// Lanes per block of the [`FeatureMatrix`] layout: one cache line of
/// `f64`s, and a width LLVM auto-vectorises cleanly on both SSE2 and
/// NEON targets.
const BLOCK: usize = 8;

/// A cache-linear, blocked structure-of-arrays copy of the normalised
/// training features: the distance kernel of the serving hot path.
///
/// Points are grouped into blocks of `BLOCK` (8) lanes; within a block the
/// layout is dimension-major, so lane `i` of `data` chunk
/// `[b*dim*BLOCK + d*BLOCK ..]` holds feature `d` of point `b*BLOCK + i`.
/// One query then streams the whole training set front to back — every
/// cache line loaded is fully consumed, and the per-lane accumulators
/// vectorise — instead of chasing one heap-allocated row per point.
///
/// The matrix is **derived state**: it is rebuilt from the row-major
/// `points` at train and deserialize time and never serialized, so the
/// snapshot format is unchanged and old snapshots load as-is.
/// `PartialEq` compares it like any other field, which is how the
/// round-trip tests prove the rebuild happened.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    n: usize,
    dim: usize,
    /// `n.div_ceil(BLOCK) * dim * BLOCK` values; padding lanes are 0.0.
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Builds the blocked layout from row-major feature vectors (already
    /// normalised). All rows must share one length.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let rows: Vec<&[f64]> = rows.into_iter().collect();
        let n = rows.len();
        let dim = rows.first().map_or(0, |r| r.len());
        let n_blocks = n.div_ceil(BLOCK);
        let mut data = vec![0.0; n_blocks * dim * BLOCK];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dim, "ragged feature rows");
            let base = (i / BLOCK) * dim * BLOCK + (i % BLOCK);
            for (d, &v) in row.iter().enumerate() {
                data[base + d * BLOCK] = v;
            }
        }
        FeatureMatrix { n, dim, data }
    }

    /// Number of training points.
    pub fn n_points(&self) -> usize {
        self.n
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Writes the Euclidean distance from `query` (already normalised) to
    /// every training point into `out`, in point order.
    ///
    /// Bit-identical to the naive per-row scan: each lane's squared
    /// distance accumulates the per-dimension terms in ascending dimension
    /// order from 0.0 — the same floating-point association as
    /// `row.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum()` —
    /// and is then `sqrt`ed.
    pub fn distances_into(&self, query: &[f64], out: &mut Vec<f64>) {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        out.clear();
        out.reserve(self.n);
        if self.dim == 0 {
            // Every distance is sqrt(empty sum) = 0.0, like the naive scan.
            out.resize(self.n, 0.0);
            return;
        }
        let stride = self.dim * BLOCK;
        for (b, block) in self.data.chunks_exact(stride).enumerate() {
            let mut acc = [0.0f64; BLOCK];
            for (d, &q) in query.iter().enumerate() {
                let lanes = &block[d * BLOCK..d * BLOCK + BLOCK];
                for (a, &v) in acc.iter_mut().zip(lanes) {
                    let diff = v - q;
                    *a += diff * diff;
                }
            }
            let live = BLOCK.min(self.n - b * BLOCK);
            out.extend(acc[..live].iter().map(|d2| d2.sqrt()));
        }
    }

    /// The distances with their point indices — the mutable working set
    /// the partial top-k selection runs on.
    fn distance_pairs(&self, query: &[f64]) -> Vec<(f64, usize)> {
        let mut dists = Vec::new();
        self.distances_into(query, &mut dists);
        dists.into_iter().enumerate().map(|(i, d)| (d, i)).collect()
    }
}

/// Why [`KnnModel::try_train`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training pairs at all.
    Empty,
    /// `features` and `dists` differ in length.
    LengthMismatch {
        /// Number of feature vectors supplied.
        features: usize,
        /// Number of distributions supplied.
        dists: usize,
    },
    /// A feature row has a different length than row 0.
    RaggedFeatures {
        /// Index of the offending row.
        index: usize,
        /// Its length.
        len: usize,
        /// The length of row 0, which every row must match.
        expected: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Empty => write!(f, "empty training set"),
            TrainError::LengthMismatch { features, dists } => write!(
                f,
                "features/distributions mismatch: {features} feature vectors \
                 vs {dists} distributions"
            ),
            TrainError::RaggedFeatures {
                index,
                len,
                expected,
            } => write!(
                f,
                "ragged features: row {index} has {len} values, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// The trained model `M : x → q(y|x)`.
///
/// `PartialEq` compares the full trained state — normalizer, training
/// points, hyper-parameters *and* the derived [`FeatureMatrix`] — it is
/// what snapshot round-trip tests assert on, so a deserialized model
/// only equals the original if the matrix was correctly rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnModel {
    normalizer: Normalizer,
    /// Normalised features and fitted distribution per training pair —
    /// the row-major source of truth the oracle path scans and the
    /// [`FeatureMatrix`] is derived from.
    points: Vec<(Vec<f64>, IidDistribution)>,
    /// Number of neighbours (paper: 7).
    pub k: usize,
    /// Softmax inverse temperature (paper: 1.0).
    pub beta: f64,
    /// Blocked SoA copy of the point features (derived, never serialized).
    matrix: FeatureMatrix,
}

// Hand-written (not derived) so `matrix` stays out of the wire format:
// the encoding is byte-identical to what the derive produced before the
// matrix existed — an object of {normalizer, points, k, beta} in
// declaration order — so snapshot FORMAT_VERSION is unchanged and old
// snapshots load as-is. (The derive shim has no `#[serde(skip)]`.)
impl Serialize for KnnModel {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("normalizer".to_string(), self.normalizer.to_value()),
            ("points".to_string(), self.points.to_value()),
            ("k".to_string(), self.k.to_value()),
            ("beta".to_string(), self.beta.to_value()),
        ])
    }
}

impl Deserialize for KnnModel {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let normalizer = Normalizer::from_value(v.field("normalizer")?)?;
        let points: Vec<(Vec<f64>, IidDistribution)> = Deserialize::from_value(v.field("points")?)?;
        let k = usize::from_value(v.field("k")?)?;
        let beta = f64::from_value(v.field("beta")?)?;
        let matrix = FeatureMatrix::from_rows(points.iter().map(|(f, _)| f.as_slice()));
        Ok(KnnModel {
            normalizer,
            points,
            k,
            beta,
            matrix,
        })
    }
}

/// The paper's K.
pub const DEFAULT_K: usize = 7;
/// The paper's β.
pub const DEFAULT_BETA: f64 = 1.0;

impl KnnModel {
    /// Trains the model from per-pair features and fitted distributions.
    ///
    /// # Panics
    /// Panics on the inputs [`try_train`](Self::try_train) rejects.
    pub fn train(
        features: Vec<Vec<f64>>,
        dists: Vec<IidDistribution>,
        k: usize,
        beta: f64,
    ) -> Self {
        match Self::try_train(features, dists, k, beta) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Trains the model, rejecting malformed input with a typed error
    /// instead of panicking: empty training sets, a features/distributions
    /// length mismatch, and ragged feature rows.
    pub fn try_train(
        features: Vec<Vec<f64>>,
        dists: Vec<IidDistribution>,
        k: usize,
        beta: f64,
    ) -> Result<Self, TrainError> {
        if features.len() != dists.len() {
            return Err(TrainError::LengthMismatch {
                features: features.len(),
                dists: dists.len(),
            });
        }
        if features.is_empty() {
            return Err(TrainError::Empty);
        }
        let expected = features[0].len();
        for (index, f) in features.iter().enumerate() {
            if f.len() != expected {
                return Err(TrainError::RaggedFeatures {
                    index,
                    len: f.len(),
                    expected,
                });
            }
        }
        let normalizer = Normalizer::fit(&features);
        let points: Vec<(Vec<f64>, IidDistribution)> = features
            .into_iter()
            .map(|f| normalizer.apply(&f))
            .zip(dists)
            .collect();
        let matrix = FeatureMatrix::from_rows(points.iter().map(|(f, _)| f.as_slice()));
        Ok(KnnModel {
            normalizer,
            points,
            k,
            beta,
            matrix,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Dimensionality of the feature vectors this model was trained on
    /// (19 for the paper's counter + descriptor features).
    pub fn feature_dim(&self) -> usize {
        self.normalizer.dim()
    }

    /// Returns `true` when the model holds no training points (never true
    /// for a model built by [`KnnModel::train`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The derived SoA distance kernel (for benches and differential
    /// tests).
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.matrix
    }

    /// Per-dimension cardinalities of the optimisation space the model
    /// predicts over (read off the first training distribution; a trained
    /// model is never empty).
    pub fn dims(&self) -> Vec<usize> {
        self.points[0].1.dims()
    }

    /// Softmax weights over the selected nearest neighbours — the shared
    /// back half of both prediction paths. `nearest` must be ascending by
    /// `(distance, index)`.
    fn weight_neighbours(&self, nearest: &[(f64, usize)]) -> Vec<(f64, &IidDistribution)> {
        let dmin = nearest[0].0;
        nearest
            .iter()
            .map(|&(d, i)| ((-self.beta * (d - dmin)).exp(), &self.points[i].1))
            .collect()
    }

    /// The hot path: blocked SoA distances, then top-k by partial
    /// selection — `O(n + k log k)` instead of the oracle's
    /// `O(n log n)` full sort.
    ///
    /// Bit-identical to [`softmax_neighbours_naive`]
    /// (Self::softmax_neighbours_naive) on finite inputs: distances share
    /// the oracle's floating-point association (see
    /// [`FeatureMatrix::distances_into`]), and selecting then sorting the
    /// k-prefix under the lexicographic `(distance, index)` order is
    /// exactly the first k entries of the oracle's stable
    /// distance-only sort. Comparison is `total_cmp` — equivalent to the
    /// oracle's `partial_cmp` on this domain (distances are `+0.0` or
    /// positive), but NaN-safe: a non-finite query yields a deterministic
    /// (garbage) neighbour order here where the oracle panics, so callers
    /// that let untrusted floats in (serving) reject them at admission.
    fn softmax_neighbours(&self, x: &[f64]) -> Vec<(f64, &IidDistribution)> {
        let xn = self.normalizer.apply(x);
        let mut pairs = self.matrix.distance_pairs(&xn);
        let k = self.k.min(pairs.len());
        let by_dist_then_idx =
            |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        if k > 0 && k < pairs.len() {
            pairs.select_nth_unstable_by(k - 1, by_dist_then_idx);
        }
        let nearest = &mut pairs[..k];
        nearest.sort_unstable_by(by_dist_then_idx);
        self.weight_neighbours(nearest)
    }

    /// The retained naive path: per-point row scan plus a full stable
    /// sort on distance. This is the reference oracle the differential
    /// proptests compare the [`FeatureMatrix`] kernel against.
    fn softmax_neighbours_naive(&self, x: &[f64]) -> Vec<(f64, &IidDistribution)> {
        let xn = self.normalizer.apply(x);
        // K nearest by Euclidean distance.
        let mut dist_idx: Vec<(f64, usize)> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, (f, _))| {
                let d2: f64 = f.iter().zip(&xn).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2.sqrt(), i)
            })
            .collect();
        dist_idx.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let k = self.k.min(dist_idx.len());
        self.weight_neighbours(&dist_idx[..k])
    }

    /// The predictive distribution `q(y|x*)` (eq. 6).
    pub fn predict(&self, x: &[f64]) -> IidDistribution {
        IidDistribution::mix(&self.softmax_neighbours(x))
    }

    /// [`predict`](Self::predict) through the naive reference path —
    /// bit-identical on finite inputs, kept as the differential oracle.
    pub fn predict_oracle(&self, x: &[f64]) -> IidDistribution {
        IidDistribution::mix(&self.softmax_neighbours_naive(x))
    }

    /// The predicted-best setting `y* = argmax_y q(y|x*)` (eq. 1).
    ///
    /// Equivalent to `self.predict(x).mode()` but fused: the mixture is
    /// never materialized (that costs ~40 small allocations per call —
    /// most of the serving hot path). Bit-identical to the unfused form:
    /// each cell accumulates `(w/Σw)·θ` over the neighbours in the same
    /// order `IidDistribution::mix` does, and ties resolve like
    /// `Iterator::max_by` (the last maximum wins) as in
    /// `IidDistribution::mode` — `fused_mode_matches_mix_then_mode`
    /// asserts the equivalence.
    pub fn predict_mode(&self, x: &[f64]) -> Vec<u8> {
        Self::mixture_mode(&self.softmax_neighbours(x))
    }

    /// [`predict_mode`](Self::predict_mode) through the naive reference
    /// path — bit-identical on finite inputs, kept as the differential
    /// oracle.
    pub fn predict_mode_oracle(&self, x: &[f64]) -> Vec<u8> {
        Self::mixture_mode(&self.softmax_neighbours_naive(x))
    }

    /// The fused mixture-argmax shared by both paths (so the differential
    /// tests isolate exactly the distance/selection kernel). Delegates to
    /// [`IidDistribution::mix_mode`], which accumulates over the flat
    /// probability buffers in one sequential pass per neighbour.
    fn mixture_mode(parts: &[(f64, &IidDistribution)]) -> Vec<u8> {
        IidDistribution::mix_mode(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_model(k: usize) -> KnnModel {
        // Cluster A near (0,0) prefers setting [0,0]; cluster B near (10,10)
        // prefers [1,3].
        let dims = vec![2usize, 4usize];
        let mut features = Vec::new();
        let mut dists = Vec::new();
        for i in 0..8 {
            let e = i as f64 * 0.1;
            features.push(vec![e, -e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![0, 0]; 4]));
            features.push(vec![10.0 + e, 10.0 - e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![1, 3]; 4]));
        }
        KnnModel::train(features, dists, k, 1.0)
    }

    #[test]
    fn fused_mode_matches_mix_then_mode() {
        // The fused predict_mode must be bit-identical to materializing
        // the mixture and taking its mode — across k values (including
        // k > points, exercised clamping), tied distances and probe
        // points on and off the training manifold.
        for k in [1, 2, 7, 64] {
            let m = two_cluster_model(k);
            for probe in [
                vec![0.0, 0.0],
                vec![10.0, 10.0],
                vec![5.0, 5.0], // equidistant: tie-heavy weights
                vec![-3.0, 17.0],
                vec![0.35, -0.35], // exactly on a training point
            ] {
                assert_eq!(
                    m.predict_mode(&probe),
                    m.predict(&probe).mode(),
                    "k={k} probe={probe:?}"
                );
            }
        }
    }

    #[test]
    fn soa_path_matches_oracle_on_fixed_probes() {
        // The exhaustive randomized comparison lives in the differential
        // proptests; this is the deterministic smoke version.
        for k in [1, 3, 7, 64] {
            let m = two_cluster_model(k);
            for probe in [
                vec![0.0, 0.0],
                vec![5.0, 5.0],
                vec![10.0, 10.0],
                vec![-3.0, 17.0],
            ] {
                assert_eq!(m.predict(&probe), m.predict_oracle(&probe), "k={k}");
                assert_eq!(
                    m.predict_mode(&probe),
                    m.predict_mode_oracle(&probe),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn feature_matrix_layout_roundtrips_distances() {
        // Row counts straddling the block width, including an exact
        // multiple and a single row.
        for n in [1usize, 7, 8, 9, 16, 17] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..3).map(|d| (i * 3 + d) as f64 * 0.25 - 1.0).collect())
                .collect();
            let m = FeatureMatrix::from_rows(rows.iter().map(|r| r.as_slice()));
            assert_eq!(m.n_points(), n);
            assert_eq!(m.dim(), 3);
            let query = [0.5, -2.0, 3.25];
            let mut got = Vec::new();
            m.distances_into(&query, &mut got);
            let want: Vec<f64> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .zip(&query)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn try_train_reports_typed_errors() {
        let dims = vec![2usize];
        let d = IidDistribution::fit(&dims, &[vec![0]]);
        let err =
            KnnModel::try_train(vec![vec![0.0]], vec![d.clone(), d.clone()], 1, 1.0).unwrap_err();
        assert_eq!(
            err,
            TrainError::LengthMismatch {
                features: 1,
                dists: 2
            }
        );
        assert_eq!(
            err.to_string(),
            "features/distributions mismatch: 1 feature vectors vs 2 distributions"
        );

        let err = KnnModel::try_train(Vec::new(), Vec::new(), 1, 1.0).unwrap_err();
        assert_eq!(err, TrainError::Empty);
        assert_eq!(err.to_string(), "empty training set");

        let err = KnnModel::try_train(vec![vec![0.0, 1.0], vec![2.0]], vec![d.clone(), d], 1, 1.0)
            .unwrap_err();
        assert_eq!(
            err,
            TrainError::RaggedFeatures {
                index: 1,
                len: 1,
                expected: 2
            }
        );
        assert_eq!(
            err.to_string(),
            "ragged features: row 1 has 1 values, expected 2"
        );
    }

    #[test]
    #[should_panic(expected = "features/distributions mismatch")]
    fn train_panics_on_length_mismatch() {
        let d = IidDistribution::fit(&[2], &[vec![0]]);
        let _ = KnnModel::train(vec![vec![0.0]], vec![d.clone(), d], 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn train_panics_on_empty_input() {
        let _ = KnnModel::train(Vec::new(), Vec::new(), 1, 1.0);
    }

    #[test]
    fn predicts_cluster_preference() {
        let m = two_cluster_model(DEFAULT_K);
        assert_eq!(m.predict_mode(&[0.2, 0.0]), vec![0, 0]);
        assert_eq!(m.predict_mode(&[9.8, 10.1]), vec![1, 3]);
    }

    #[test]
    fn normalization_makes_scales_comparable() {
        // One feature ranges 0..1, the other 0..1e6; without normalisation
        // the small feature would be ignored.
        let dims = vec![2usize];
        let features = vec![
            vec![0.0, 500_000.0],
            vec![0.1, 500_000.0],
            vec![1.0, 500_000.0],
            vec![0.9, 500_000.0],
        ];
        let dists = vec![
            IidDistribution::fit(&dims, &vec![vec![0]; 3]),
            IidDistribution::fit(&dims, &vec![vec![0]; 3]),
            IidDistribution::fit(&dims, &vec![vec![1]; 3]),
            IidDistribution::fit(&dims, &vec![vec![1]; 3]),
        ];
        let m = KnnModel::train(features, dists, 2, 1.0);
        assert_eq!(m.predict_mode(&[0.05, 500_000.0]), vec![0]);
        assert_eq!(m.predict_mode(&[0.95, 500_000.0]), vec![1]);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let m = two_cluster_model(100);
        // Should not panic; blends everything.
        let _ = m.predict(&[5.0, 5.0]);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
    }

    #[test]
    fn closer_neighbours_dominate_the_mixture() {
        let dims = vec![2usize];
        let features = vec![vec![0.0], vec![3.0]];
        let dists = vec![
            IidDistribution::fit(&dims, &vec![vec![0]; 5]),
            IidDistribution::fit(&dims, &vec![vec![1]; 5]),
        ];
        let m = KnnModel::train(features, dists, 2, 1.0);
        let q = m.predict(&[0.1]);
        assert!(q.prob(0, 0) > q.prob(0, 1));
        let q2 = m.predict(&[2.9]);
        assert!(q2.prob(0, 1) > q2.prob(0, 0));
    }

    #[test]
    fn normalizer_zscores() {
        let n = Normalizer::fit(&[vec![0.0, 10.0], vec![2.0, 10.0]]);
        let z = n.apply(&[1.0, 10.0]);
        assert!((z[0] - 0.0).abs() < 1e-12);
        assert_eq!(z[1], 0.0, "zero-variance feature maps to 0");
    }
}
