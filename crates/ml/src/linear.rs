//! Ridge-regression predictor: per-pass independent linear models over
//! normalised features, decoded through a per-dimension softmax.
//!
//! The MLComp-style alternative to the paper's kNN: instead of blending
//! neighbouring training distributions, fit one linear scorer per
//! *(dimension, choice)* cell by ridge regression against the fitted
//! per-pair probabilities, and turn the scores back into a factorised
//! distribution with a per-dimension softmax. Training solves the normal
//! equations `(XᵀX + λI) w = Xᵀy` once per target column with Gaussian
//! elimination; [`ridge_weights_oracle`] recomputes the same coefficients
//! through an explicit Gauss–Jordan matrix inverse and is the reference
//! the differential proptests compare against.

use crate::dist::IidDistribution;
use crate::knn::{Normalizer, TrainError};
use serde::{Deserialize, Serialize};

/// Default ridge penalty λ. Small enough not to bias well-conditioned
/// fits, large enough to keep the normal equations solvable when features
/// are collinear (constant counters are common at small sweep scales).
pub const DEFAULT_RIDGE_LAMBDA: f64 = 1e-3;

/// A trained per-pass ridge-regression predictor.
///
/// `weights[ℓ][j]` is the coefficient vector (feature dimension + 1, the
/// intercept last) scoring choice `j` of optimisation dimension `ℓ`;
/// [`predict`](LinearModel::predict) softmaxes each dimension's scores
/// into a probability row. `PartialEq` compares the full trained state,
/// which is what the snapshot round-trip tests assert on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    normalizer: Normalizer,
    dims: Vec<usize>,
    weights: Vec<Vec<Vec<f64>>>,
    lambda: f64,
    n_points: usize,
}

impl LinearModel {
    /// Trains the model from per-pair features and fitted distributions.
    ///
    /// # Panics
    /// Panics on the inputs [`try_train`](Self::try_train) rejects.
    pub fn train(features: Vec<Vec<f64>>, dists: Vec<IidDistribution>, lambda: f64) -> Self {
        match Self::try_train(features, dists, lambda) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Trains the model, rejecting malformed input with the same typed
    /// errors (and in the same order) as `KnnModel::try_train`.
    pub fn try_train(
        features: Vec<Vec<f64>>,
        dists: Vec<IidDistribution>,
        lambda: f64,
    ) -> Result<Self, TrainError> {
        validate_training_input(&features, &dists)?;
        let dims = dists[0].dims();
        let normalizer = Normalizer::fit(&features);
        let rows: Vec<Vec<f64>> = features
            .iter()
            .map(|f| design_row(&normalizer.apply(f)))
            .collect();
        let cols = rows[0].len();
        // One Gram matrix serves every target column.
        let mut gram = vec![vec![0.0f64; cols]; cols];
        for row in &rows {
            for (i, &ri) in row.iter().enumerate() {
                for (j, &rj) in row.iter().enumerate() {
                    gram[i][j] += ri * rj;
                }
            }
        }
        for (i, row) in gram.iter_mut().enumerate() {
            row[i] += lambda;
        }
        let mut weights = Vec::with_capacity(dims.len());
        for (l, &card) in dims.iter().enumerate() {
            let mut per_choice = Vec::with_capacity(card);
            for j in 0..card {
                let mut rhs = vec![0.0f64; cols];
                for (row, g) in rows.iter().zip(&dists) {
                    let y = g.prob(l, j as u8);
                    for (r, &x) in rhs.iter_mut().zip(row) {
                        *r += x * y;
                    }
                }
                per_choice.push(solve_linear_system(&gram, &rhs));
            }
            weights.push(per_choice);
        }
        Ok(LinearModel {
            normalizer,
            dims,
            weights,
            lambda,
            n_points: rows.len(),
        })
    }

    /// Number of training points the model was fitted on.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// Returns `true` when the model saw no training points (never true
    /// for a model built by [`LinearModel::train`]).
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Dimensionality of the feature vectors this model was trained on.
    pub fn feature_dim(&self) -> usize {
        self.normalizer.dim()
    }

    /// Per-dimension cardinalities of the optimisation space.
    pub fn dims(&self) -> Vec<usize> {
        self.dims.clone()
    }

    /// The ridge penalty the model was trained with.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The fitted coefficients, `weights[ℓ][j]` scoring choice `j` of
    /// dimension `ℓ` (intercept last) — what the differential proptest
    /// compares against [`ridge_weights_oracle`].
    pub fn weights(&self) -> &[Vec<Vec<f64>>] {
        &self.weights
    }

    /// The predictive distribution: per-dimension softmax over the linear
    /// scores of the normalised query.
    pub fn predict(&self, x: &[f64]) -> IidDistribution {
        let row = design_row(&self.normalizer.apply(x));
        let prob_rows: Vec<Vec<f64>> = self
            .weights
            .iter()
            .map(|per_choice| {
                let scores: Vec<f64> = per_choice
                    .iter()
                    .map(|w| w.iter().zip(&row).map(|(a, b)| a * b).sum())
                    .collect();
                softmax(&scores)
            })
            .collect();
        IidDistribution::from_prob_rows(&prob_rows)
    }

    /// The predicted-best setting. Defined as
    /// `self.predict(x).mode()` — mode-consistency holds by construction.
    pub fn predict_mode(&self, x: &[f64]) -> Vec<u8> {
        self.predict(x).mode()
    }
}

/// The shared input validation of every zoo trainer, with `KnnModel`'s
/// exact error order: length mismatch, then empty, then ragged rows.
pub(crate) fn validate_training_input(
    features: &[Vec<f64>],
    dists: &[IidDistribution],
) -> Result<(), TrainError> {
    if features.len() != dists.len() {
        return Err(TrainError::LengthMismatch {
            features: features.len(),
            dists: dists.len(),
        });
    }
    if features.is_empty() {
        return Err(TrainError::Empty);
    }
    let expected = features[0].len();
    for (index, f) in features.iter().enumerate() {
        if f.len() != expected {
            return Err(TrainError::RaggedFeatures {
                index,
                len: f.len(),
                expected,
            });
        }
    }
    Ok(())
}

/// A normalised feature vector with the intercept column appended.
fn design_row(xn: &[f64]) -> Vec<f64> {
    let mut row = Vec::with_capacity(xn.len() + 1);
    row.extend_from_slice(xn);
    row.push(1.0);
    row
}

/// Numerically-stable softmax (max-shifted); uniform over an empty slice
/// cannot occur (cardinalities are ≥ 1).
fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Solves `a·w = b` by Gaussian elimination with partial pivoting —
/// deterministic (no randomised pivoting) so retraining from the same
/// dataset is bit-identical.
fn solve_linear_system(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .expect("non-empty pivot range");
        m.swap(col, pivot);
        let p = m[col][col];
        for row in col + 1..n {
            let factor = m[row][col] / p;
            for k in col..=n {
                let v = m[col][k];
                m[row][k] -= factor * v;
            }
        }
    }
    let mut w = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in row + 1..n {
            acc -= m[row][k] * w[k];
        }
        w[row] = acc / m[row][row];
    }
    w
}

/// The naive normal-equations oracle: recomputes the ridge coefficients
/// through an explicit Gauss–Jordan inverse of `XᵀX + λI` (the textbook
/// definition), normalising features exactly as training does. The
/// differential proptest pins [`LinearModel::try_train`]'s elimination
/// solver against this on well-conditioned random datasets.
pub fn ridge_weights_oracle(
    features: &[Vec<f64>],
    dists: &[IidDistribution],
    lambda: f64,
) -> Vec<Vec<Vec<f64>>> {
    let dims = dists[0].dims();
    let normalizer = Normalizer::fit(features);
    let rows: Vec<Vec<f64>> = features
        .iter()
        .map(|f| design_row(&normalizer.apply(f)))
        .collect();
    let cols = rows[0].len();
    let mut gram = vec![vec![0.0f64; cols]; cols];
    for row in &rows {
        for (i, &ri) in row.iter().enumerate() {
            for (j, &rj) in row.iter().enumerate() {
                gram[i][j] += ri * rj;
            }
        }
    }
    for (i, row) in gram.iter_mut().enumerate() {
        row[i] += lambda;
    }
    let inv = invert_matrix(&gram);
    dims.iter()
        .enumerate()
        .map(|(l, &card)| {
            (0..card)
                .map(|j| {
                    let mut rhs = vec![0.0f64; cols];
                    for (row, g) in rows.iter().zip(dists) {
                        let y = g.prob(l, j as u8);
                        for (r, &x) in rhs.iter_mut().zip(row) {
                            *r += x * y;
                        }
                    }
                    inv.iter()
                        .map(|inv_row| inv_row.iter().zip(&rhs).map(|(a, b)| a * b).sum())
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Gauss–Jordan inverse with partial pivoting (oracle-only: `O(n³)` with
/// a fat constant, but unambiguous).
fn invert_matrix(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    // Augment [A | I].
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| if i == j { 1.0 } else { 0.0 }));
            r
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .expect("non-empty pivot range");
        m.swap(col, pivot);
        let p = m[col][col];
        for v in m[col].iter_mut() {
            *v /= p;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = m[row][col];
            for k in 0..2 * n {
                let v = m[col][k];
                m[row][k] -= factor * v;
            }
        }
    }
    m.into_iter().map(|row| row[n..].to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_training() -> (Vec<Vec<f64>>, Vec<IidDistribution>) {
        let dims = vec![2usize, 4usize];
        let mut features = Vec::new();
        let mut dists = Vec::new();
        for i in 0..8 {
            let e = i as f64 * 0.1;
            features.push(vec![e, -e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![0, 0]; 4]));
            features.push(vec![10.0 + e, 10.0 - e]);
            dists.push(IidDistribution::fit(&dims, &vec![vec![1, 3]; 4]));
        }
        (features, dists)
    }

    #[test]
    fn learns_linearly_separable_preferences() {
        let (features, dists) = two_cluster_training();
        let m = LinearModel::train(features, dists, DEFAULT_RIDGE_LAMBDA);
        assert_eq!(m.predict_mode(&[0.2, 0.0]), vec![0, 0]);
        assert_eq!(m.predict_mode(&[9.8, 10.1]), vec![1, 3]);
        assert_eq!(m.feature_dim(), 2);
        assert_eq!(m.dims(), vec![2, 4]);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
    }

    #[test]
    fn predictions_are_proper_distributions() {
        let (features, dists) = two_cluster_training();
        let m = LinearModel::train(features, dists, DEFAULT_RIDGE_LAMBDA);
        let q = m.predict(&[3.0, 2.0]);
        for (d, card) in m.dims().into_iter().enumerate() {
            let total: f64 = (0..card).map(|j| q.prob(d, j as u8)).sum();
            assert!((total - 1.0).abs() < 1e-12, "dim {d} sums to {total}");
        }
    }

    #[test]
    fn mode_consistency_is_exact() {
        let (features, dists) = two_cluster_training();
        let m = LinearModel::train(features, dists, DEFAULT_RIDGE_LAMBDA);
        for probe in [vec![0.0, 0.0], vec![5.0, 5.0], vec![10.0, 10.0]] {
            assert_eq!(m.predict_mode(&probe), m.predict(&probe).mode());
        }
    }

    #[test]
    fn solver_matches_oracle_on_fixed_input() {
        let (features, dists) = two_cluster_training();
        let m = LinearModel::train(features.clone(), dists.clone(), DEFAULT_RIDGE_LAMBDA);
        let oracle = ridge_weights_oracle(&features, &dists, DEFAULT_RIDGE_LAMBDA);
        assert_eq!(m.weights().len(), oracle.len());
        for (wl, ol) in m.weights().iter().zip(&oracle) {
            for (wj, oj) in wl.iter().zip(ol) {
                for (a, b) in wj.iter().zip(oj) {
                    assert!((a - b).abs() < 1e-8, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn try_train_reports_typed_errors_in_knn_order() {
        let d = IidDistribution::fit(&[2], &[vec![0]]);
        let err =
            LinearModel::try_train(vec![vec![0.0]], vec![d.clone(), d.clone()], 0.1).unwrap_err();
        assert_eq!(
            err,
            TrainError::LengthMismatch {
                features: 1,
                dists: 2
            }
        );
        let err = LinearModel::try_train(Vec::new(), Vec::new(), 0.1).unwrap_err();
        assert_eq!(err, TrainError::Empty);
        let err = LinearModel::try_train(vec![vec![0.0, 1.0], vec![2.0]], vec![d.clone(), d], 0.1)
            .unwrap_err();
        assert_eq!(
            err,
            TrainError::RaggedFeatures {
                index: 1,
                len: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn roundtrips_through_json() {
        let (features, dists) = two_cluster_training();
        let m = LinearModel::train(features, dists, DEFAULT_RIDGE_LAMBDA);
        let json = serde_json::to_string(&m).unwrap();
        let back: LinearModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        let probe = vec![4.2, -1.3];
        assert_eq!(m.predict(&probe), back.predict(&probe));
    }
}
