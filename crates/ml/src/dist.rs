//! Factorised (IID) multinomial distributions over optimisation settings —
//! §3.3.1 of the paper.
//!
//! For each training program/microarchitecture pair, the model fits
//! `g(y|X) = Π_ℓ g(y_ℓ)` to the empirical distribution over the *good*
//! settings (the top 5 % of sampled configurations) by minimising KL
//! divergence — equations (2)–(5). With a uniform empirical distribution
//! the maximum-likelihood estimate is just frequency counting (eq. 5).

use rand::Rng;
use serde::{Deserialize, Serialize, Value};

/// A product of independent multinomials, one per optimisation dimension.
///
/// Stored flat: every dimension's probability row lives back to back in
/// one allocation, with `offsets[d]..offsets[d+1]` delimiting dimension
/// `d`'s row. The serving hot path reads 7 neighbours × 39 rows per
/// query; the previous `Vec<Vec<f64>>` layout made each of those reads a
/// pointer chase into its own small allocation. The **wire format is
/// unchanged** — the hand-written serde below still speaks
/// `{"probs": [[...], ...]}`, so snapshots round-trip byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct IidDistribution {
    /// Concatenated rows: `θ_ℓ^j` = `probs[offsets[ℓ] + j]`, with each
    /// row summing to 1.
    probs: Vec<f64>,
    /// `n_dims + 1` row boundaries into `probs`.
    offsets: Vec<u32>,
}

/// Laplace smoothing mass added per choice when fitting (keeps the mode
/// well-defined and cross-entropies finite on small good-sets).
const SMOOTHING: f64 = 0.1;

impl IidDistribution {
    /// Builds the flat layout from per-dimension cardinalities, with
    /// every probability initialised to `init`.
    fn flat(dims: &[usize], init: impl Fn(usize) -> f64) -> Self {
        let mut offsets = Vec::with_capacity(dims.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in dims {
            total += c as u32;
            offsets.push(total);
        }
        let mut probs = Vec::with_capacity(total as usize);
        for &c in dims {
            let v = init(c);
            probs.extend((0..c).map(|_| v));
        }
        IidDistribution { probs, offsets }
    }

    /// The uniform distribution over a space with the given per-dimension
    /// cardinalities.
    pub fn uniform(dims: &[usize]) -> Self {
        Self::flat(dims, |c| 1.0 / c as f64)
    }

    /// Maximum-likelihood fit (eq. 5): `θ_ℓ^j` = fraction of good settings
    /// in which dimension ℓ takes value j, Laplace-smoothed.
    ///
    /// # Panics
    /// Panics if `good` is empty or a choice exceeds its cardinality.
    pub fn fit(dims: &[usize], good: &[Vec<u8>]) -> Self {
        assert!(!good.is_empty(), "cannot fit to an empty good-set");
        let mut g = Self::flat(dims, |_| SMOOTHING);
        for y in good {
            assert_eq!(y.len(), dims.len(), "setting has wrong dimensionality");
            for (d, &choice) in y.iter().enumerate() {
                let row = g.row_range(d);
                assert!((choice as usize) < row.len(), "choice exceeds cardinality");
                g.probs[row.start + choice as usize] += 1.0;
            }
        }
        for d in 0..dims.len() {
            let row = &mut g.probs[g.offsets[d] as usize..g.offsets[d + 1] as usize];
            let total: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= total;
            }
        }
        g
    }

    /// Byte range of dimension `dim`'s row within `probs`.
    #[inline]
    fn row_range(&self, dim: usize) -> std::ops::Range<usize> {
        self.offsets[dim] as usize..self.offsets[dim + 1] as usize
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Per-dimension cardinalities (row lengths) — the pass-space shape
    /// the distribution is defined over.
    pub fn dims(&self) -> Vec<usize> {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Builds a distribution from explicit per-dimension probability rows
    /// (each expected to sum to 1 — callers own that invariant). The
    /// constructor `LinearModel::predict` turns its softmaxed score rows
    /// into a distribution with.
    pub(crate) fn from_prob_rows(rows: &[Vec<f64>]) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        let mut probs = Vec::new();
        for row in rows {
            total += row.len() as u32;
            offsets.push(total);
            probs.extend_from_slice(row);
        }
        IidDistribution { probs, offsets }
    }

    /// `θ_ℓ^j`.
    pub fn prob(&self, dim: usize, choice: u8) -> f64 {
        self.row(dim)[choice as usize]
    }

    /// One dimension's probability row (for the fused mixture-argmax in
    /// `KnnModel::predict_mode`, which must read whole rows without
    /// per-cell bounds checks or materializing a mixed distribution).
    pub(crate) fn row(&self, dim: usize) -> &[f64] {
        &self.probs[self.row_range(dim)]
    }

    /// Iterates the per-dimension rows in order.
    fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.offsets
            .windows(2)
            .map(|w| &self.probs[w[0] as usize..w[1] as usize])
    }

    /// `log g(y)` (natural log).
    pub fn log_prob(&self, y: &[u8]) -> f64 {
        y.iter()
            .enumerate()
            .map(|(d, &c)| self.prob(d, c).ln())
            .sum()
    }

    /// The mode `argmax_y g(y)` — eq. (1). For a factorised distribution
    /// this is the per-dimension argmax.
    pub fn mode(&self) -> Vec<u8> {
        self.rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                    .map(|(j, _)| j as u8)
                    .expect("non-empty dimension")
            })
            .collect()
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<u8> {
        self.rows()
            .map(|row| {
                let mut u: f64 = rng.gen();
                for (j, p) in row.iter().enumerate() {
                    if u < *p {
                        return j as u8;
                    }
                    u -= p;
                }
                (row.len() - 1) as u8
            })
            .collect()
    }

    /// Cross-entropy `H(p̃, g) = -Σ_y p̃(y) log g(y)` against a uniform
    /// empirical distribution over `samples` — the objective of eq. (3)
    /// (up to sign).
    pub fn cross_entropy(&self, samples: &[Vec<u8>]) -> f64 {
        -samples.iter().map(|y| self.log_prob(y)).sum::<f64>() / samples.len() as f64
    }

    /// Convex combination `Σ_k w_k g_k` of factorised distributions — the
    /// KNN predictive distribution `q(y|x)` of §3.3.2. Weights need not be
    /// normalised.
    ///
    /// # Panics
    /// Panics if `parts` is empty or dimensionalities disagree.
    pub fn mix(parts: &[(f64, &IidDistribution)]) -> Self {
        assert!(!parts.is_empty(), "empty mixture");
        let wsum: f64 = parts.iter().map(|(w, _)| w).sum();
        let first = parts[0].1;
        let mut out = IidDistribution {
            probs: vec![0.0; first.probs.len()],
            offsets: first.offsets.clone(),
        };
        for (w, g) in parts {
            assert_eq!(g.n_dims(), first.n_dims());
            assert_eq!(g.offsets, out.offsets, "mixture dimensionality mismatch");
            for (acc, p) in out.probs.iter_mut().zip(&g.probs) {
                *acc += (w / wsum) * p;
            }
        }
        out
    }

    /// The mode of [`mix`](Self::mix) without materialising the mixed
    /// distribution — the serving hot path's fused decode.
    ///
    /// Accumulates the convex combination over the flat probability
    /// buffer (one sequential, vectorisable pass per neighbour), then
    /// takes each dimension's argmax. Every output element receives its
    /// weighted contributions in `parts` order, exactly as
    /// `Self::mix(parts).mode()` would add them, and the argmax keeps the
    /// last maximum on ties (`>=`) like the fused per-dimension loop it
    /// replaces — so the result is bit-identical to both.
    ///
    /// # Panics
    /// Panics if `parts` is empty or dimensionalities disagree.
    pub fn mix_mode(parts: &[(f64, &IidDistribution)]) -> Vec<u8> {
        assert!(!parts.is_empty(), "empty mixture");
        let wsum: f64 = parts.iter().map(|(w, _)| w).sum();
        let first = parts[0].1;
        let mut acc = vec![0.0f64; first.probs.len()];
        for (w, g) in parts {
            assert_eq!(g.offsets, first.offsets, "mixture dimensionality mismatch");
            let wn = w / wsum;
            for (a, p) in acc.iter_mut().zip(&g.probs) {
                *a += wn * p;
            }
        }
        first
            .offsets
            .windows(2)
            .map(|win| {
                let row = &acc[win[0] as usize..win[1] as usize];
                let mut best = (0u8, f64::NEG_INFINITY);
                for (j, &p) in row.iter().enumerate() {
                    if p >= best.1 {
                        best = (j as u8, p);
                    }
                }
                best.0
            })
            .collect()
    }

    /// Per-dimension entropy in nats (used by the Figure 8 analysis).
    pub fn dim_entropy(&self, dim: usize) -> f64 {
        -self
            .row(dim)
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }
}

impl Serialize for IidDistribution {
    /// Same wire format as the old `Vec<Vec<f64>>` field: the flat layout
    /// is an in-memory concern only.
    fn to_value(&self) -> Value {
        let rows: Vec<Value> = self
            .rows()
            .map(|row| Value::Array(row.iter().map(|p| p.to_value()).collect()))
            .collect();
        Value::Object(vec![("probs".to_string(), Value::Array(rows))])
    }
}

impl Deserialize for IidDistribution {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let rows: Vec<Vec<f64>> = Deserialize::from_value(v.field("probs")?)?;
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        let mut probs = Vec::new();
        for row in &rows {
            total += row.len() as u32;
            offsets.push(total);
            probs.extend_from_slice(row);
        }
        Ok(IidDistribution { probs, offsets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> Vec<usize> {
        vec![2, 2, 4]
    }

    #[test]
    fn fit_recovers_frequencies() {
        let good = vec![vec![1, 0, 3], vec![1, 0, 3], vec![1, 1, 2], vec![1, 0, 3]];
        let g = IidDistribution::fit(&dims(), &good);
        // Dimension 0: always 1.
        assert!(g.prob(0, 1) > 0.9);
        // Dimension 1: 3/4 zeros.
        assert!((g.prob(1, 0) - 0.75).abs() < 0.08);
        // Mode matches the dominant choices.
        assert_eq!(g.mode(), vec![1, 0, 3]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let good = vec![vec![0, 1, 2], vec![1, 1, 0]];
        let g = IidDistribution::fit(&dims(), &good);
        for d in 0..3 {
            let s: f64 = (0..dims()[d]).map(|j| g.prob(d, j as u8)).sum();
            assert!((s - 1.0).abs() < 1e-12, "dim {d} sums to {s}");
        }
    }

    #[test]
    fn uniform_has_max_entropy_and_uniform_mode_prob() {
        let u = IidDistribution::uniform(&dims());
        assert!((u.prob(2, 0) - 0.25).abs() < 1e-12);
        let fitted = IidDistribution::fit(&dims(), &[vec![0, 0, 0]]);
        assert!(fitted.dim_entropy(2) < u.dim_entropy(2));
    }

    #[test]
    fn mode_maximises_log_prob() {
        let good = vec![vec![1, 0, 3], vec![1, 1, 3], vec![1, 0, 2]];
        let g = IidDistribution::fit(&dims(), &good);
        let mode = g.mode();
        let lp = g.log_prob(&mode);
        // Exhaustive check over the small space.
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..4u8 {
                    assert!(g.log_prob(&[a, b, c]) <= lp + 1e-12);
                }
            }
        }
    }

    #[test]
    fn cross_entropy_lower_for_matching_distribution() {
        let good = vec![vec![1, 0, 3]; 10];
        let g_match = IidDistribution::fit(&dims(), &good);
        let g_other = IidDistribution::fit(&dims(), &vec![vec![0, 1, 0]; 10]);
        assert!(g_match.cross_entropy(&good) < g_other.cross_entropy(&good));
    }

    #[test]
    fn mix_interpolates() {
        let a = IidDistribution::fit(&dims(), &vec![vec![0, 0, 0]; 5]);
        let b = IidDistribution::fit(&dims(), &vec![vec![1, 1, 3]; 5]);
        let m = IidDistribution::mix(&[(1.0, &a), (1.0, &b)]);
        assert!((m.prob(0, 0) - 0.5).abs() < 0.05);
        assert!((m.prob(0, 1) - 0.5).abs() < 0.05);
        // Heavier weight pulls the mode.
        let m2 = IidDistribution::mix(&[(10.0, &a), (1.0, &b)]);
        assert_eq!(m2.mode(), a.mode());
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let good = vec![vec![1, 0, 3]; 20];
        let g = IidDistribution::fit(&dims(), &good);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = 0;
        for _ in 0..1000 {
            if g.sample(&mut rng)[0] == 1 {
                ones += 1;
            }
        }
        assert!(ones > 900, "{ones}");
    }
}
