//! # portopt-uarch
//!
//! The microarchitecture side of `portopt` (Dubach et al., MICRO 2009):
//! the Table 2 design space around the Intel XScale, a Cacti-style SRAM
//! timing model, probabilistic set-associative cache and BTB models driven
//! by reuse-distance histograms, and the Table 1 performance counters that
//! form the machine-learning feature vector.
//!
//! ```
//! use portopt_uarch::{MicroArch, MicroArchSpace, latencies};
//! use rand::SeedableRng;
//!
//! let space = MicroArchSpace::base();
//! assert_eq!(space.total_configs(), 288_000);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let cfg = space.sample(&mut rng);
//! let lat = latencies(&cfg);
//! assert!(lat.dl1_load_use >= 3);
//! ```

#![warn(missing_docs)]

pub mod btb;
pub mod cache;
pub mod cacti;
pub mod counters;
pub mod space;

pub use btb::{
    estimate as estimate_branches, estimate_from_totals as estimate_branches_from_totals,
    BranchModel, BranchStats, BranchTotals,
};
pub use cache::{miss_probability, ReuseHistogram, StackDistance};
pub use cacti::{access_cycles, access_ns, latencies, Latencies, MEM_NS};
pub use counters::{FeatureVec, PerfCounters, N_FEATURES};
pub use space::{
    MicroArch, MicroArchSpace, ASSOCS, BLOCKS, BTB_ASSOCS, BTB_ENTRIES, FREQS, SIZES, WIDTHS,
};
