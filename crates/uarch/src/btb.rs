//! Branch-target-buffer and direction-prediction models.
//!
//! The XScale-style front end predicts with a BTB holding 2-bit counters:
//! a branch found in the BTB is predicted by its counter; a branch that
//! misses the BTB is implicitly predicted not-taken (fall-through fetch).
//! BTB presence is estimated from the reuse-distance histogram of branch
//! PCs (same set-associative model as the caches); direction accuracy from
//! per-branch taken/transition statistics.

use crate::cache::ReuseHistogram;
use serde::{Deserialize, Serialize};

/// Execution statistics for one static branch site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Dynamic executions.
    pub execs: u64,
    /// Times the branch was taken.
    pub taken: u64,
    /// Direction changes between consecutive executions.
    pub transitions: u64,
}

impl BranchStats {
    /// Records one execution.
    #[inline]
    pub fn record(&mut self, taken: bool, prev: Option<bool>) {
        self.execs += 1;
        if taken {
            self.taken += 1;
        }
        if let Some(p) = prev {
            if p != taken {
                self.transitions += 1;
            }
        }
    }

    /// Expected mispredictions when the branch is resident in the BTB with
    /// a 2-bit counter: roughly one per direction change (a strongly biased
    /// branch mispredicts only at transitions; an alternating branch at
    /// every execution, which `transitions` also captures).
    pub fn counter_mispredicts(&self) -> f64 {
        self.transitions as f64
    }

    /// Expected mispredictions when absent from the BTB: the fall-through
    /// (not-taken) static prediction fails on taken executions.
    pub fn static_mispredicts(&self) -> f64 {
        self.taken as f64
    }
}

/// Aggregate branch-prediction estimate for one program run on one BTB
/// geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BranchModel {
    /// Predictor (BTB) accesses — one per executed branch.
    pub accesses: f64,
    /// Expected BTB misses.
    pub btb_misses: f64,
    /// Expected direction/target mispredictions (pipeline flushes).
    pub mispredicts: f64,
}

/// Geometry-independent mispredict totals over all branch sites, the part
/// of [`estimate`] that does not depend on the BTB. Computing these once
/// per profile turns each per-microarchitecture estimate from `O(sites)`
/// into `O(1)` — the hot loop of a sweep evaluates one profile on hundreds
/// of configurations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BranchTotals {
    /// Σ expected mispredictions while BTB-resident (transition counts).
    pub counter: f64,
    /// Σ expected mispredictions while BTB-absent (taken counts).
    pub fallthrough: f64,
}

impl BranchTotals {
    /// Aggregates the per-site statistics.
    pub fn over(branches: &[BranchStats]) -> Self {
        let mut t = BranchTotals::default();
        for b in branches {
            t.counter += b.counter_mispredicts();
            t.fallthrough += b.static_mispredicts();
        }
        t
    }
}

/// Estimates branch behaviour.
///
/// `pc_reuse` is the reuse-distance histogram over *branch PCs* (each
/// executed branch recorded against the stream of branch addresses);
/// `branches` the per-site statistics; `sets`/`assoc` the BTB geometry.
pub fn estimate(
    pc_reuse: &ReuseHistogram,
    branches: &[BranchStats],
    sets: u32,
    assoc: u32,
) -> BranchModel {
    estimate_from_totals(pc_reuse, &BranchTotals::over(branches), sets, assoc)
}

/// [`estimate`] with the site totals already aggregated (see
/// [`BranchTotals`]).
pub fn estimate_from_totals(
    pc_reuse: &ReuseHistogram,
    totals: &BranchTotals,
    sets: u32,
    assoc: u32,
) -> BranchModel {
    let accesses = pc_reuse.accesses() as f64;
    let btb_misses = pc_reuse.expected_misses(sets, assoc);
    let hit_rate = if accesses > 0.0 {
        (1.0 - btb_misses / accesses).clamp(0.0, 1.0)
    } else {
        1.0
    };
    // Each branch mispredicts at transitions while resident, and on taken
    // executions while absent. Weight the two regimes by the global BTB
    // hit rate (per-branch residency is not tracked separately).
    let mispredicts = hit_rate * totals.counter + (1.0 - hit_rate) * totals.fallthrough;
    BranchModel {
        accesses,
        btb_misses,
        mispredicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased_branch(n: u64, taken_every: u64) -> BranchStats {
        let mut s = BranchStats::default();
        let mut prev = None;
        for i in 0..n {
            let t = i % taken_every == 0;
            s.record(t, prev);
            prev = Some(t);
        }
        s
    }

    /// A loop-style branch: taken except every `not_every`-th execution.
    fn loopish_branch(n: u64, not_every: u64) -> BranchStats {
        let mut s = BranchStats::default();
        let mut prev = None;
        for i in 0..n {
            let t = i % not_every != 0;
            s.record(t, prev);
            prev = Some(t);
        }
        s
    }

    #[test]
    fn loop_branch_has_few_transitions() {
        // A loop back-edge taken 99 times then falling out once.
        let mut s = BranchStats::default();
        let mut prev = None;
        for i in 0..100 {
            let t = i != 99;
            s.record(t, prev);
            prev = Some(t);
        }
        assert_eq!(s.execs, 100);
        assert_eq!(s.taken, 99);
        assert_eq!(s.transitions, 1);
        assert_eq!(s.counter_mispredicts(), 1.0);
        assert_eq!(s.static_mispredicts(), 99.0);
    }

    #[test]
    fn alternating_branch_mispredicts_everywhere() {
        let s = biased_branch(100, 2);
        assert!(s.transitions >= 98);
    }

    #[test]
    fn big_btb_beats_small_btb() {
        // Many distinct branch PCs cycling: a small BTB thrashes.
        let mut h = ReuseHistogram::new();
        for _ in 0..64 {
            h.record(None);
        }
        for _ in 0..10_000 {
            h.record(Some(63)); // 63 distinct branches between re-visits
        }
        // Loop-like branches (mostly taken): losing BTB residency hurts,
        // because the static not-taken fallback mispredicts the common case.
        let branches: Vec<BranchStats> = (0..64).map(|_| loopish_branch(157, 8)).collect();
        let small = estimate(&h, &branches, 16, 1); // 16-entry BTB
        let big = estimate(&h, &branches, 512, 1);
        assert!(small.btb_misses > big.btb_misses);
        assert!(small.mispredicts > big.mispredicts);
        assert_eq!(small.accesses, big.accesses);
    }

    #[test]
    fn assoc_reduces_conflicts() {
        let mut h = ReuseHistogram::new();
        for _ in 0..32 {
            h.record(None);
        }
        for _ in 0..10_000 {
            h.record(Some(20));
        }
        let b = vec![BranchStats {
            execs: 10_032,
            taken: 5_000,
            transitions: 100,
        }];
        let direct = estimate(&h, &b, 32, 1);
        let assoc4 = estimate(&h, &b, 8, 4); // same 32 entries, 4-way
        assert!(assoc4.btb_misses <= direct.btb_misses);
    }

    #[test]
    fn perfect_residency_leaves_only_transitions() {
        let mut h = ReuseHistogram::new();
        h.record(None);
        for _ in 0..999 {
            h.record(Some(0)); // single branch, always distance 0
        }
        let b = vec![biased_branch(1000, 1000)];
        let m = estimate(&h, &b, 512, 1);
        assert!(m.btb_misses <= 1.0 + 1e-9);
        assert!(m.mispredicts <= b[0].transitions as f64 + 1.0);
    }
}
