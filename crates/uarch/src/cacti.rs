//! A Cacti-style analytic SRAM access-time model.
//!
//! The real Cacti 4.0 decomposes access time into decoder, wordline,
//! bitline, sense-amp and output-driver terms. We keep the shape — latency
//! grows with the log of the array size (decoder depth, wire length) and
//! with associativity (way comparison and muxing) — with coefficients
//! calibrated so the XScale's 32 KB caches hit in one 2.5 ns cycle at
//! 400 MHz with a 3-cycle load-use latency, matching the real part.

use crate::space::MicroArch;

/// Access time in nanoseconds for a cache of the given geometry.
///
/// Monotone in size and associativity, mildly in block size.
pub fn access_ns(size_bytes: u32, assoc: u32, block_bytes: u32) -> f64 {
    let size_kb = (size_bytes as f64 / 1024.0).max(1.0);
    0.6 + 0.30 * (size_kb / 4.0).log2().max(0.0)
        + 0.25 * (assoc as f64 / 4.0).log2().max(0.0)
        + 0.10 * (block_bytes as f64 / 8.0).log2().max(0.0)
}

/// Cache access latency in whole cycles at the given clock.
pub fn access_cycles(size_bytes: u32, assoc: u32, block_bytes: u32, cycle_ns: f64) -> u32 {
    (access_ns(size_bytes, assoc, block_bytes) / cycle_ns)
        .ceil()
        .max(1.0) as u32
}

/// Derived latencies (in cycles) for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Data-cache load-use latency (pipeline base + array access).
    pub dl1_load_use: u32,
    /// Instruction-cache access cycles (fetch-redirect cost on taken
    /// branches).
    pub il1_access: u32,
    /// Main-memory access penalty in cycles (fixed 70 ns DRAM path).
    pub mem_penalty: u32,
    /// Branch misprediction flush penalty in cycles.
    pub mispredict: u32,
}

/// Main-memory latency in nanoseconds (XScale-era SDRAM path).
pub const MEM_NS: f64 = 70.0;
/// Pipeline stages between issue and load writeback beyond the array access.
const LOAD_PIPE_BASE: u32 = 2;
/// Pipeline flush depth on a mispredicted branch.
const FLUSH_DEPTH: u32 = 4;

/// Computes all latencies for a configuration.
pub fn latencies(cfg: &MicroArch) -> Latencies {
    let cyc = cfg.cycle_ns();
    let d = access_cycles(cfg.dl1_size, cfg.dl1_assoc, cfg.dl1_block, cyc);
    let i = access_cycles(cfg.il1_size, cfg.il1_assoc, cfg.il1_block, cyc);
    Latencies {
        dl1_load_use: LOAD_PIPE_BASE + d,
        il1_access: i,
        mem_penalty: (MEM_NS / cyc).ceil() as u32,
        mispredict: FLUSH_DEPTH + i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ASSOCS, BLOCKS, SIZES};

    #[test]
    fn monotone_in_size_and_assoc() {
        for w in SIZES.windows(2) {
            assert!(access_ns(w[1], 4, 32) > access_ns(w[0], 4, 32));
        }
        for w in ASSOCS.windows(2) {
            assert!(access_ns(32768, w[1], 32) > access_ns(32768, w[0], 32));
        }
        for w in BLOCKS.windows(2) {
            assert!(access_ns(32768, 4, w[1]) >= access_ns(32768, 4, w[0]));
        }
    }

    #[test]
    fn xscale_has_three_cycle_load_use() {
        let l = latencies(&MicroArch::xscale());
        assert_eq!(l.dl1_load_use, 3, "XScale load-use latency");
        assert_eq!(l.il1_access, 1);
        assert_eq!(l.mem_penalty, 28); // 70ns at 2.5ns/cycle
    }

    #[test]
    fn biggest_cache_is_slower_in_cycles_at_high_clock() {
        let mut big = MicroArch::xscale();
        big.dl1_size = 131072;
        big.dl1_assoc = 64;
        big.freq_mhz = 600;
        let l = latencies(&big);
        let small = latencies(&MicroArch::xscale());
        assert!(l.dl1_load_use > small.dl1_load_use);
    }

    #[test]
    fn frequency_scales_memory_penalty() {
        let mut slow = MicroArch::xscale();
        slow.freq_mhz = 200;
        let mut fast = MicroArch::xscale();
        fast.freq_mhz = 600;
        assert!(latencies(&fast).mem_penalty > latencies(&slow).mem_penalty);
    }

    #[test]
    fn every_config_has_sane_latencies() {
        for &s in &SIZES {
            for &a in &ASSOCS {
                for &b in &BLOCKS {
                    let ns = access_ns(s, a, b);
                    assert!(ns > 0.0 && ns < 10.0, "{s}/{a}/{b} -> {ns}");
                    let c = access_cycles(s, a, b, 2.5);
                    assert!((1..=4).contains(&c));
                }
            }
        }
    }
}
