//! The microarchitectural design space of Table 2, plus the §7 extension.
//!
//! Eight parameters vary as powers of two around the Intel XScale
//! configuration: 6 × 5 × 4 choices for each L1 cache and 5 × 4 for the
//! BTB give exactly the paper's 288 000 configurations. The extended space
//! (§7) adds clock frequency (200–600 MHz) and issue width (1–2).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Instruction/data L1 size menu (bytes): 4 KB … 128 KB.
pub const SIZES: [u32; 6] = [4096, 8192, 16384, 32768, 65536, 131072];
/// L1 associativity menu: 4 … 64.
pub const ASSOCS: [u32; 5] = [4, 8, 16, 32, 64];
/// L1 block-size menu (bytes): 8 … 64.
pub const BLOCKS: [u32; 4] = [8, 16, 32, 64];
/// BTB entry-count menu: 128 … 2048.
pub const BTB_ENTRIES: [u32; 5] = [128, 256, 512, 1024, 2048];
/// BTB associativity menu: 1 … 8.
pub const BTB_ASSOCS: [u32; 4] = [1, 2, 4, 8];
/// Clock-frequency menu for the extended space (MHz): 200 … 600.
pub const FREQS: [u32; 5] = [200, 300, 400, 500, 600];
/// Issue-width menu for the extended space.
pub const WIDTHS: [u32; 2] = [1, 2];

/// One microarchitectural configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroArch {
    /// Instruction-cache size in bytes.
    pub il1_size: u32,
    /// Instruction-cache associativity.
    pub il1_assoc: u32,
    /// Instruction-cache block size in bytes.
    pub il1_block: u32,
    /// Data-cache size in bytes.
    pub dl1_size: u32,
    /// Data-cache associativity.
    pub dl1_assoc: u32,
    /// Data-cache block size in bytes.
    pub dl1_block: u32,
    /// Branch-target-buffer entries.
    pub btb_entries: u32,
    /// Branch-target-buffer associativity.
    pub btb_assoc: u32,
    /// Core clock in MHz (400 in the base space).
    pub freq_mhz: u32,
    /// Issue width (1 in the base space).
    pub width: u32,
}

impl MicroArch {
    /// The XScale baseline configuration (Table 2's reference column).
    pub fn xscale() -> Self {
        MicroArch {
            il1_size: 32768,
            il1_assoc: 32,
            il1_block: 32,
            dl1_size: 32768,
            dl1_assoc: 32,
            dl1_block: 32,
            btb_entries: 512,
            btb_assoc: 1,
            freq_mhz: 400,
            width: 1,
        }
    }

    /// Number of instruction-cache sets.
    pub fn il1_sets(&self) -> u32 {
        (self.il1_size / (self.il1_block * self.il1_assoc)).max(1)
    }

    /// Number of data-cache sets.
    pub fn dl1_sets(&self) -> u32 {
        (self.dl1_size / (self.dl1_block * self.dl1_assoc)).max(1)
    }

    /// Number of BTB sets.
    pub fn btb_sets(&self) -> u32 {
        (self.btb_entries / self.btb_assoc).max(1)
    }

    /// Clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.freq_mhz as f64
    }

    /// The 8-element microarchitecture descriptor `d` of the paper
    /// (log2-scaled parameter values, in Table 2 order).
    pub fn descriptors(&self) -> [f64; 8] {
        [
            (self.il1_size as f64).log2(),
            (self.il1_assoc as f64).log2(),
            (self.il1_block as f64).log2(),
            (self.dl1_size as f64).log2(),
            (self.dl1_assoc as f64).log2(),
            (self.dl1_block as f64).log2(),
            (self.btb_entries as f64).log2(),
            (self.btb_assoc as f64).log2(),
        ]
    }

    /// Descriptor names, for the Figure 9 Hinton diagram.
    pub fn descriptor_names() -> [&'static str; 8] {
        [
            "i_size",
            "i_assoc",
            "i_block",
            "d_size",
            "d_assoc",
            "d_block",
            "btb_size",
            "btb_assoc",
        ]
    }
}

impl Default for MicroArch {
    fn default() -> Self {
        Self::xscale()
    }
}

/// The sampled design space (base Table 2 space or extended §7 space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroArchSpace {
    /// Whether frequency and issue width also vary (§7).
    pub extended: bool,
}

impl MicroArchSpace {
    /// The base Table 2 space.
    pub fn base() -> Self {
        MicroArchSpace { extended: false }
    }

    /// The §7 extended space.
    pub fn extended() -> Self {
        MicroArchSpace { extended: true }
    }

    /// Total number of configurations in the space.
    pub fn total_configs(&self) -> u64 {
        let cache = (SIZES.len() * ASSOCS.len() * BLOCKS.len()) as u64;
        let base = cache * cache * (BTB_ENTRIES.len() * BTB_ASSOCS.len()) as u64;
        if self.extended {
            base * (FREQS.len() * WIDTHS.len()) as u64
        } else {
            base
        }
    }

    /// Draws one configuration uniformly at random.
    pub fn sample(&self, rng: &mut impl Rng) -> MicroArch {
        let pick = |rng: &mut dyn rand::RngCore, v: &[u32]| v[rng.gen_range(0..v.len())];
        MicroArch {
            il1_size: pick(rng, &SIZES),
            il1_assoc: pick(rng, &ASSOCS),
            il1_block: pick(rng, &BLOCKS),
            dl1_size: pick(rng, &SIZES),
            dl1_assoc: pick(rng, &ASSOCS),
            dl1_block: pick(rng, &BLOCKS),
            btb_entries: pick(rng, &BTB_ENTRIES),
            btb_assoc: pick(rng, &BTB_ASSOCS),
            freq_mhz: if self.extended {
                pick(rng, &FREQS)
            } else {
                400
            },
            width: if self.extended { pick(rng, &WIDTHS) } else { 1 },
        }
    }

    /// Draws `n` distinct configurations (uniform random without
    /// replacement, as the paper's 200-configuration sample).
    pub fn sample_n(&self, n: usize, rng: &mut impl Rng) -> Vec<MicroArch> {
        let mut out: Vec<MicroArch> = Vec::with_capacity(n);
        let mut guard = 0;
        while out.len() < n {
            let c = self.sample(rng);
            if !out.contains(&c) {
                out.push(c);
            }
            guard += 1;
            assert!(guard < n * 1000, "space exhausted");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn base_space_matches_paper_count() {
        assert_eq!(MicroArchSpace::base().total_configs(), 288_000);
    }

    #[test]
    fn extended_space_is_ten_x() {
        assert_eq!(MicroArchSpace::extended().total_configs(), 2_880_000);
    }

    #[test]
    fn xscale_values_match_table_2() {
        let x = MicroArch::xscale();
        assert_eq!(x.il1_size, 32 * 1024);
        assert_eq!(x.il1_assoc, 32);
        assert_eq!(x.il1_block, 32);
        assert_eq!(x.btb_entries, 512);
        assert_eq!(x.btb_assoc, 1);
        assert_eq!(x.freq_mhz, 400);
        assert_eq!(x.width, 1);
        assert_eq!(x.il1_sets(), 32);
        assert_eq!(x.btb_sets(), 512);
    }

    #[test]
    fn sampling_stays_in_menus_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let sp = MicroArchSpace::base();
        let a = sp.sample_n(50, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(42);
        let b = sp.sample_n(50, &mut rng2);
        assert_eq!(a, b);
        for c in &a {
            assert!(SIZES.contains(&c.il1_size));
            assert!(ASSOCS.contains(&c.dl1_assoc));
            assert!(BLOCKS.contains(&c.il1_block));
            assert!(BTB_ENTRIES.contains(&c.btb_entries));
            assert!(BTB_ASSOCS.contains(&c.btb_assoc));
            assert_eq!(c.freq_mhz, 400);
            assert_eq!(c.width, 1);
        }
        // Distinctness.
        for (i, x) in a.iter().enumerate() {
            assert!(!a[i + 1..].contains(x));
        }
    }

    #[test]
    fn extended_sampling_varies_freq_and_width() {
        let mut rng = StdRng::seed_from_u64(7);
        let cs = MicroArchSpace::extended().sample_n(100, &mut rng);
        assert!(cs.iter().any(|c| c.freq_mhz != 400));
        assert!(cs.iter().any(|c| c.width == 2));
    }

    #[test]
    fn descriptors_are_log2() {
        let d = MicroArch::xscale().descriptors();
        assert_eq!(d[0], 15.0); // log2(32768)
        assert_eq!(d[1], 5.0);
        assert_eq!(d[6], 9.0); // log2(512)
        assert_eq!(d[7], 0.0);
    }
}
