//! Set-associative cache miss estimation from reuse-distance histograms.
//!
//! The profiling interpreter records, for each access, the *stack distance*
//! — the number of distinct blocks touched since the previous access to the
//! same block. For a fully-associative LRU cache an access misses exactly
//! when its distance is at least the capacity. For a set-associative cache
//! we use the standard probabilistic model (Agarwal/Hill lineage): the `D`
//! intervening blocks scatter uniformly over `S` sets, so the access misses
//! with probability `P[Binomial(D, 1/S) >= A]`, evaluated via a Poisson
//! approximation for large `D`.

use serde::{Deserialize, Serialize};

/// Number of quarter-log2 buckets (covers distances up to ~2^30).
const BUCKETS: usize = 124;

/// A reuse-distance histogram in quarter-log2 buckets, plus cold misses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    counts: Vec<u64>,
    /// First-touch accesses (infinite distance — always miss).
    pub cold: u64,
    /// Total recorded accesses.
    pub total: u64,
}

fn bucket_of(d: u64) -> usize {
    // Exact buckets for small distances, quarter-log2 beyond 16.
    if d < 16 {
        d as usize
    } else {
        let l = (d as f64).log2();
        (16 + ((l - 4.0) * 4.0) as usize).min(BUCKETS - 1)
    }
}

fn representative(bucket: usize) -> f64 {
    if bucket < 16 {
        bucket as f64
    } else {
        let l = 4.0 + (bucket - 16) as f64 / 4.0 + 0.125;
        l.exp2()
    }
}

impl ReuseHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        ReuseHistogram {
            counts: vec![0; BUCKETS],
            cold: 0,
            total: 0,
        }
    }

    /// Records one access; `dist` is `None` for a first touch.
    #[inline]
    pub fn record(&mut self, dist: Option<u64>) {
        self.total += 1;
        match dist {
            None => self.cold += 1,
            Some(d) => self.counts[bucket_of(d)] += 1,
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.cold += other.cold;
        self.total += other.total;
    }

    /// Expected misses in a cache with `sets` sets and `assoc` ways.
    pub fn expected_misses(&self, sets: u32, assoc: u32) -> f64 {
        let mut misses = self.cold as f64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            misses += c as f64 * miss_probability(representative(b), sets, assoc);
        }
        misses
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.total
    }
}

/// `P[miss | D distinct intervening blocks]` for an `S`-set, `A`-way LRU
/// cache under the uniform-scatter model.
pub fn miss_probability(d: f64, sets: u32, assoc: u32) -> f64 {
    let a = assoc as f64;
    if d < a {
        // Fewer distinct blocks than ways: they fit even in one set.
        return 0.0;
    }
    if sets == 1 {
        // Fully associative: deterministic LRU.
        return if d >= a { 1.0 } else { 0.0 };
    }
    // Poisson approximation of Binomial(D, 1/S): P[X >= A].
    let lambda = d / sets as f64;
    let mut term = (-lambda).exp(); // k = 0
    let mut cdf = term;
    for k in 1..assoc {
        term *= lambda / k as f64;
        cdf += term;
        if term < 1e-18 && k as f64 > lambda {
            break;
        }
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// An exact LRU stack-distance tracker (Bennett–Kruskal with a Fenwick
/// tree): `O(log n)` per access.
#[derive(Debug, Clone, Default)]
pub struct StackDistance {
    /// block -> last access time (1-based).
    last: std::collections::HashMap<u64, usize>,
    /// Fenwick tree over time slots; 1 while a slot is some block's most
    /// recent access.
    tree: Vec<u64>,
    time: usize,
}

impl StackDistance {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        StackDistance {
            last: std::collections::HashMap::new(),
            tree: vec![0; 1024],
            time: 0,
        }
    }

    fn add(&mut self, mut i: usize, v: i64) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + v) as u64;
            i += i & i.wrapping_neg();
        }
    }

    fn sum(&self, mut i: usize) -> u64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Records an access to `block`, returning the stack distance
    /// (`None` on first touch).
    pub fn access(&mut self, block: u64) -> Option<u64> {
        self.time += 1;
        if self.time + 1 >= self.tree.len() {
            self.tree.resize(self.tree.len() * 2, 0);
            // Rebuild: Fenwick trees cannot be resized in place.
            let mut fresh = vec![0u64; self.tree.len()];
            std::mem::swap(&mut self.tree, &mut fresh);
            let entries: Vec<usize> = self.last.values().copied().collect();
            for t in entries {
                self.add(t, 1);
            }
        }
        let dist = match self.last.insert(block, self.time) {
            Some(prev) => {
                // Distinct blocks accessed after `prev`.
                let d = self.sum(self.time - 1) - self.sum(prev);
                self.add(prev, -1);
                Some(d)
            }
            None => None,
        };
        self.add(self.time, 1);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_distance_classic_sequence() {
        let mut sd = StackDistance::new();
        assert_eq!(sd.access(1), None);
        assert_eq!(sd.access(2), None);
        assert_eq!(sd.access(3), None);
        assert_eq!(sd.access(1), Some(2)); // 2 distinct (2,3) in between
        assert_eq!(sd.access(1), Some(0)); // immediate re-access
        assert_eq!(sd.access(2), Some(2)); // 3,1 in between
    }

    #[test]
    fn stack_distance_survives_resize() {
        let mut sd = StackDistance::new();
        for i in 0..5000u64 {
            assert_eq!(sd.access(i), None);
        }
        // All 5000 distinct; re-access block 0: distance 4999.
        assert_eq!(sd.access(0), Some(4999));
    }

    #[test]
    fn miss_probability_edges() {
        // Distance below associativity: guaranteed hit.
        assert_eq!(miss_probability(3.0, 64, 4), 0.0);
        // Fully associative (sets=1): hard threshold.
        assert_eq!(miss_probability(63.0, 1, 64), 0.0);
        assert_eq!(miss_probability(64.0, 1, 64), 1.0);
        // Monotone in distance.
        let p1 = miss_probability(100.0, 64, 4);
        let p2 = miss_probability(1000.0, 64, 4);
        assert!(p2 > p1);
        // Monotone in sets and assoc (bigger cache, fewer misses).
        assert!(miss_probability(500.0, 128, 4) < miss_probability(500.0, 64, 4));
        assert!(miss_probability(500.0, 64, 8) < miss_probability(500.0, 64, 4));
    }

    #[test]
    fn histogram_cold_and_capacity_behaviour() {
        let mut h = ReuseHistogram::new();
        // 100 first touches, then 1000 short-distance + 1000 long-distance.
        for _ in 0..100 {
            h.record(None);
        }
        for _ in 0..1000 {
            h.record(Some(2));
        }
        for _ in 0..1000 {
            h.record(Some(100_000));
        }
        assert_eq!(h.accesses(), 2100);
        // A very big cache keeps everything but cold misses (the
        // probabilistic model leaves a small residual near capacity).
        let big = h.expected_misses(16384, 32);
        assert!((big - 100.0).abs() < 30.0, "big cache ~cold only: {big}");
        // Near capacity the model tapers rather than cliffs.
        let nearcap = h.expected_misses(4096, 32);
        assert!(nearcap > big && nearcap < 400.0, "taper: {nearcap}");
        // A tiny cache also misses the long-distance accesses.
        let small = h.expected_misses(16, 4);
        assert!(small > 1000.0, "small cache thrashes: {small}");
        // Monotonicity across the menu.
        let mut prev = f64::MAX;
        for sets in [16u32, 64, 256, 1024] {
            let m = h.expected_misses(sets, 4);
            assert!(m <= prev);
            prev = m;
        }
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = ReuseHistogram::new();
        let mut b = ReuseHistogram::new();
        a.record(Some(5));
        a.record(None);
        b.record(Some(5));
        b.record(Some(500));
        a.merge(&b);
        assert_eq!(a.accesses(), 4);
        assert_eq!(a.cold, 1);
    }

    #[test]
    fn bucket_representatives_are_close() {
        for d in [0u64, 1, 5, 15, 16, 100, 1000, 1_000_000] {
            let r = representative(bucket_of(d));
            if d < 16 {
                assert_eq!(r, d as f64);
            } else {
                // Quarter-log buckets: representative within ~20%.
                let ratio = r / d as f64;
                assert!(ratio > 0.75 && ratio < 1.35, "d={d} rep={r}");
            }
        }
    }
}
