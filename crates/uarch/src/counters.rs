//! The 11 performance counters of Table 1 and the joint feature vector.

use crate::space::MicroArch;
use serde::{Deserialize, Serialize};

/// The 11 hardware performance counters of Table 1, as rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Decoder accesses per cycle.
    pub decoder_access_rate: f64,
    /// Register-file accesses (reads+writes) per cycle.
    pub regfile_access_rate: f64,
    /// Branch-predictor accesses per cycle.
    pub bpred_access_rate: f64,
    /// Instruction-cache accesses per cycle.
    pub icache_access_rate: f64,
    /// Instruction-cache misses per access.
    pub icache_miss_rate: f64,
    /// Data-cache accesses per cycle.
    pub dcache_access_rate: f64,
    /// Data-cache misses per access.
    pub dcache_miss_rate: f64,
    /// ALU operations per cycle.
    pub alu_usage: f64,
    /// Multiply-accumulate operations per cycle.
    pub mac_usage: f64,
    /// Shifter operations per cycle.
    pub shifter_usage: f64,
}

impl PerfCounters {
    /// Counter names in canonical order (Figure 9's feature labels).
    pub fn names() -> [&'static str; 11] {
        [
            "IPC",
            "dec_acc_rate",
            "reg_acc_rate",
            "bpred_acc_rate",
            "icache_acc_rate",
            "icache_miss_rate",
            "dcache_acc_rate",
            "dcache_miss_rate",
            "ALU_usg",
            "MAC_usg",
            "Shft_usg",
        ]
    }

    /// The counter vector `c` in canonical order.
    pub fn to_vec(&self) -> [f64; 11] {
        [
            self.ipc,
            self.decoder_access_rate,
            self.regfile_access_rate,
            self.bpred_access_rate,
            self.icache_access_rate,
            self.icache_miss_rate,
            self.dcache_access_rate,
            self.dcache_miss_rate,
            self.alu_usage,
            self.mac_usage,
            self.shifter_usage,
        ]
    }
}

/// The joint feature vector `x = (c, d)` of the paper: 11 counters plus
/// 8 microarchitecture descriptors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVec {
    /// Raw feature values, counters first.
    pub values: Vec<f64>,
}

/// Number of features in `x`.
pub const N_FEATURES: usize = 19;

impl FeatureVec {
    /// Builds `x = (c, d)` from counters and a configuration.
    pub fn new(c: &PerfCounters, d: &MicroArch) -> Self {
        let mut values = Vec::with_capacity(N_FEATURES);
        values.extend_from_slice(&c.to_vec());
        values.extend_from_slice(&d.descriptors());
        FeatureVec { values }
    }

    /// All 19 feature names (Figure 9 row labels: descriptors then
    /// counters in the paper; we keep counters-first consistently).
    pub fn names() -> Vec<&'static str> {
        let mut v: Vec<&'static str> = PerfCounters::names().to_vec();
        v.extend_from_slice(&MicroArch::descriptor_names());
        v
    }

    /// Euclidean distance to another vector (used by the KNN model after
    /// normalisation).
    pub fn distance(&self, other: &FeatureVec) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_is_19_long() {
        let f = FeatureVec::new(&PerfCounters::default(), &MicroArch::xscale());
        assert_eq!(f.values.len(), N_FEATURES);
        assert_eq!(FeatureVec::names().len(), N_FEATURES);
    }

    #[test]
    fn counters_in_canonical_order() {
        let c = PerfCounters {
            ipc: 1.0,
            shifter_usage: 11.0,
            ..Default::default()
        };
        let v = c.to_vec();
        assert_eq!(v[0], 1.0);
        assert_eq!(v[10], 11.0);
        assert_eq!(PerfCounters::names()[0], "IPC");
        assert_eq!(PerfCounters::names()[10], "Shft_usg");
    }

    #[test]
    fn distance_is_metric_like() {
        let a = FeatureVec {
            values: vec![0.0; N_FEATURES],
        };
        let mut bv = vec![0.0; N_FEATURES];
        bv[0] = 3.0;
        bv[1] = 4.0;
        let b = FeatureVec { values: bv };
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }
}
