//! Property-based tests for the analytical hardware models: monotonicity
//! and boundedness over arbitrary inputs.

use portopt_uarch::{
    access_ns, latencies, miss_probability, MicroArch, MicroArchSpace, ReuseHistogram,
    StackDistance, ASSOCS, BLOCKS, SIZES,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// Miss probability is a probability, monotone in distance and
    /// anti-monotone in cache resources.
    #[test]
    fn miss_probability_properties(
        d in 0.0f64..1e7,
        sets_pow in 0u32..12,
        assoc_pow in 0u32..7,
    ) {
        let sets = 1u32 << sets_pow;
        let assoc = 1u32 << assoc_pow;
        let p = miss_probability(d, sets, assoc);
        prop_assert!((0.0..=1.0).contains(&p));
        // More distance, more misses.
        prop_assert!(miss_probability(d * 2.0 + 1.0, sets, assoc) >= p - 1e-12);
        // More sets or more ways, fewer misses.
        prop_assert!(miss_probability(d, sets * 2, assoc) <= p + 1e-12);
        prop_assert!(miss_probability(d, sets, assoc * 2) <= p + 1e-12);
        // Below associativity: guaranteed hit.
        if d < assoc as f64 {
            prop_assert_eq!(p, 0.0);
        }
    }

    /// Cacti access time is positive, bounded, monotone in size/assoc.
    #[test]
    fn cacti_properties(si in 0usize..6, ai in 0usize..5, bi in 0usize..4) {
        let ns = access_ns(SIZES[si], ASSOCS[ai], BLOCKS[bi]);
        prop_assert!(ns > 0.0 && ns < 10.0);
        if si + 1 < SIZES.len() {
            prop_assert!(access_ns(SIZES[si + 1], ASSOCS[ai], BLOCKS[bi]) > ns);
        }
        if ai + 1 < ASSOCS.len() {
            prop_assert!(access_ns(SIZES[si], ASSOCS[ai + 1], BLOCKS[bi]) > ns);
        }
    }

    /// Every sampled configuration yields sane latencies.
    #[test]
    fn latencies_sane_over_space(seed in 0u64..100_000, extended in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = if extended { MicroArchSpace::extended() } else { MicroArchSpace::base() };
        let cfg = space.sample(&mut rng);
        let l = latencies(&cfg);
        prop_assert!((3..=8).contains(&l.dl1_load_use), "load-use {}", l.dl1_load_use);
        prop_assert!((1..=4).contains(&l.il1_access));
        prop_assert!(l.mem_penalty >= 14 && l.mem_penalty <= 42, "mem {}", l.mem_penalty);
        prop_assert!(l.mispredict > l.il1_access);
    }

    /// Expected misses are bounded by accesses and monotone in cache size,
    /// for arbitrary access streams.
    #[test]
    fn histogram_misses_bounded_and_monotone(seed in 0u64..100_000, n in 50usize..800) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sd = StackDistance::new();
        let mut h = ReuseHistogram::new();
        let universe = rng.gen_range(4u64..512);
        for _ in 0..n {
            let block = rng.gen_range(0..universe);
            h.record(sd.access(block));
        }
        prop_assert_eq!(h.accesses(), n as u64);
        let mut prev = f64::INFINITY;
        for sets_pow in [2u32, 4, 6, 8, 10] {
            let m = h.expected_misses(1 << sets_pow, 4);
            prop_assert!(m >= 0.0 && m <= n as f64 + 1e-9);
            prop_assert!(m <= prev + 1e-9, "not monotone in sets");
            prev = m;
        }
        // Cold misses alone lower-bound every geometry.
        prop_assert!(prev + 1e-9 >= h.cold as f64 * miss_probability_floor());
    }

    /// Stack distances never exceed the number of distinct blocks seen.
    #[test]
    fn stack_distance_bounded(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sd = StackDistance::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            let b = rng.gen_range(0u64..64);
            let d = sd.access(b);
            if let Some(d) = d {
                prop_assert!((d as usize) < seen.len(), "distance {} vs {} distinct", d, seen.len());
            } else {
                prop_assert!(!seen.contains(&b));
            }
            seen.insert(b);
        }
    }

    /// The descriptor vector is finite and order-preserving in each field.
    #[test]
    fn descriptors_finite(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = MicroArchSpace::extended().sample(&mut rng);
        for v in cfg.descriptors() {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
        let mut bigger = cfg;
        bigger.il1_size = 131072;
        prop_assert!(bigger.descriptors()[0] >= cfg.descriptors()[0]);
    }
}

/// Cold misses always miss (probability floor = 1 for the cold part).
fn miss_probability_floor() -> f64 {
    1.0
}

#[test]
fn xscale_is_in_the_base_space() {
    let x = MicroArch::xscale();
    assert!(SIZES.contains(&x.il1_size));
    assert!(ASSOCS.contains(&x.il1_assoc));
    assert!(BLOCKS.contains(&x.il1_block));
}
