//! # portopt-bench
//!
//! Regeneration harness: one binary per table/figure of the paper
//! (`cargo run -p portopt-bench --release --bin fig6 -- --scale default`)
//! plus Criterion micro-benchmarks (`cargo bench`).

#![warn(missing_docs)]

pub mod coordinator;

use portopt_core::{Dataset, GenOptions, ModelKind, SweepReport, SweepScale};
use portopt_experiments::loo::{run_loo, LooResult};
use portopt_experiments::{dataset_cached, suite_modules};
use portopt_ir::Module;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct BinArgs {
    /// Sweep scale.
    pub scale: SweepScale,
    /// Scale name (cache key).
    pub scale_name: String,
    /// Use the §7 extended microarchitecture space.
    pub extended: bool,
    /// Disable the dataset cache.
    pub no_cache: bool,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// `snapshot` bin: where to write the model artifact (default under
    /// `target/`).
    pub out: Option<String>,
    /// `serve` bin: the model artifact to load.
    pub snapshot: Option<String>,
    /// `snapshot` bin: dataset shard files to merge instead of sweeping.
    pub shards: Vec<String>,
    /// `serve` bin: serve stdin/stdout instead of a TCP socket.
    pub stdio: bool,
    /// `serve` bin: TCP port for socket mode.
    pub port: u16,
    /// `serve` bin: requests per executor batch.
    pub batch: usize,
    /// `serve` bin: cross-connection batching window in milliseconds
    /// (also the answer-latency bound for a lone request).
    pub batch_window_ms: u64,
    /// `serve` bin: maximum simultaneous TCP connections.
    pub max_conns: usize,
    /// `serve` bin: bound on pending requests across all connections;
    /// over the bound, requests are refused with an `overloaded` reply.
    pub queue_cap: Option<usize>,
    /// `serve` bin: bound on one connection's outstanding requests;
    /// at the bound its socket stops being read (TCP backpressure).
    pub per_conn_quota: Option<u64>,
    /// `serve` bin: serve a plaintext metrics snapshot on this localhost
    /// port.
    pub metrics_port: Option<u16>,
    /// `serve` bin: poll the snapshot file and hot-reload it on change.
    pub watch_snapshot: bool,
    /// `sweep` bin: this rig's shard index (`0..shard_count`).
    pub shard_index: usize,
    /// `sweep` bin: total number of shards the program grid is split into.
    pub shard_count: usize,
    /// `sweep` bin: directory of the on-disk profile cache, if any.
    pub profile_cache: Option<String>,
    /// `snapshot` bin: also write the (merged) training dataset here.
    pub dataset_out: Option<String>,
    /// `sweep` bin: disable the resumable checkpoint journal.
    pub no_checkpoint: bool,
    /// `sweep` bin: take leases from the coordinator at this `host:port`
    /// instead of sweeping `--shard-index`.
    pub worker: Option<String>,
    /// `coordinator` bin: maximum attempts per shard before the plan
    /// aborts.
    pub retry_budget: u32,
    /// `coordinator` bin: lease deadline in milliseconds.
    pub lease_timeout_ms: u64,
    /// `sweep` bin: evict the profile cache down to this many bytes after
    /// the sweep (current-run entries are never evicted).
    pub cache_max_bytes: Option<u64>,
    /// Stderr log level (`--log-level`, else `PORTOPT_LOG`, else `info`).
    pub log_level: portopt_trace::Level,
    /// Write a JSON-lines trace file here (`--trace-out`).
    pub trace_out: Option<String>,
    /// `snapshot` bin: which model kind to train (`--model`, default kNN).
    pub model: ModelKind,
    /// `serve` bin: refuse to start unless the snapshot holds this model
    /// kind (`--expect-model`).
    pub expect_model: Option<ModelKind>,
    /// `ab` bin: the second snapshot of the A/B pair (`--snapshot-b`).
    pub snapshot_b: Option<String>,
}

impl BinArgs {
    /// Parses `--scale smoke|default|paper|quick`, `--extended`,
    /// `--no-cache`, `--threads N` from `std::env::args`, plus the
    /// `snapshot`/`serve` flags `--out PATH`, `--snapshot PATH`,
    /// `--shard PATH` (repeatable), `--dataset-out PATH`, `--stdio`,
    /// `--port N`, `--batch N`, `--batch-window-ms N`, `--max-conns N`,
    /// `--queue-cap N`, `--per-conn-quota N`, `--metrics-port N`,
    /// `--watch-snapshot`, the model-zoo flags `--model knn|linear|clustered`
    /// (what `snapshot` trains), `--expect-model KIND` (what `serve`
    /// demands of its artifact) and `--snapshot-b PATH` (the `ab` bin's
    /// second model), the `sweep` flags `--shard-index N`,
    /// `--shard-count N`, `--profile-cache DIR`, `--no-checkpoint`,
    /// `--worker HOST:PORT`, `--cache-max-bytes N`, the `coordinator`
    /// flags `--retry-budget N`, `--lease-timeout-ms N`, and the
    /// observability flags `--log-level off|error|warn|info|debug|trace`
    /// (default `info`, or the `PORTOPT_LOG` environment variable) and
    /// `--trace-out PATH` (write a JSON-lines trace file; published
    /// atomically when the bin exits cleanly).
    ///
    /// Parsing also **initializes the global tracer**, so every bin that
    /// calls `BinArgs::parse()` gets leveled stderr logging and optional
    /// file tracing with no further wiring. Bins should call
    /// [`BinArgs::finish_trace`] before exiting to publish the trace file.
    pub fn parse() -> Self {
        let mut scale_name = "quick".to_string();
        let mut extended = false;
        let mut no_cache = false;
        let mut threads = 0usize;
        let mut out = None;
        let mut snapshot = None;
        let mut shards = Vec::new();
        let mut stdio = false;
        let mut port = 7209u16;
        let mut batch = 32usize;
        let mut batch_window_ms = portopt_serve::DEFAULT_WINDOW_MS;
        let mut max_conns = portopt_serve::DEFAULT_MAX_CONNS;
        let mut queue_cap = None;
        let mut per_conn_quota = None;
        let mut metrics_port = None;
        let mut watch_snapshot = false;
        let mut shard_index = 0usize;
        let mut shard_count = 1usize;
        let mut profile_cache = None;
        let mut dataset_out = None;
        let mut no_checkpoint = false;
        let mut worker = None;
        let mut retry_budget = coordinator::DEFAULT_RETRY_BUDGET;
        let mut lease_timeout_ms = coordinator::DEFAULT_LEASE_TIMEOUT_MS;
        let mut cache_max_bytes = None;
        let mut model = ModelKind::Knn;
        let mut expect_model = None;
        let mut snapshot_b = None;
        let args: Vec<String> = std::env::args().collect();
        // The tracer comes up before the main flag loop, so the loop's own
        // warnings already respect the requested level and land in the
        // trace file.
        let (log_level, trace_out) = Self::init_trace(&args);
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale_name = args.get(i).cloned().unwrap_or_default();
                }
                "--extended" => extended = true,
                "--no-cache" => no_cache = true,
                "--threads" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        threads = n;
                        i += 1;
                    }
                    // Don't consume the next token: it may be another flag.
                    None => portopt_trace::warn!(
                        "bench",
                        "--threads expects a number (0 = auto); using auto"
                    ),
                },
                // Path flags don't consume a following flag token: `serve
                // --snapshot --stdio` should complain about the missing
                // path, not try to open a file named `--stdio`.
                "--out" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        out = Some(p.clone());
                        i += 1;
                    }
                    None => portopt_trace::warn!(
                        "bench",
                        "--out expects a file path; using the default"
                    ),
                },
                "--snapshot" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        snapshot = Some(p.clone());
                        i += 1;
                    }
                    None => portopt_trace::warn!("bench", "--snapshot expects a file path"),
                },
                "--shard" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        shards.push(p.clone());
                        i += 1;
                    }
                    None => portopt_trace::warn!("bench", "--shard expects a dataset file path"),
                },
                // Shard flags are fatal on a bad value, unlike the
                // warn-and-default flags above: silently falling back to
                // `0 of 1` would make a typo'd rig sweep the wrong slice
                // of the grid (hours of compute labeled as another rig's).
                "--shard-index" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        shard_index = n;
                        i += 1;
                    }
                    None => {
                        eprintln!("--shard-index expects a number, got {:?}", args.get(i + 1));
                        std::process::exit(2);
                    }
                },
                "--shard-count" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        shard_count = n;
                        i += 1;
                    }
                    None => {
                        eprintln!("--shard-count expects a number, got {:?}", args.get(i + 1));
                        std::process::exit(2);
                    }
                },
                "--profile-cache" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        profile_cache = Some(p.clone());
                        i += 1;
                    }
                    None => {
                        portopt_trace::warn!("bench", "--profile-cache expects a directory path")
                    }
                },
                "--dataset-out" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        dataset_out = Some(p.clone());
                        i += 1;
                    }
                    None => portopt_trace::warn!("bench", "--dataset-out expects a file path"),
                },
                "--stdio" => stdio = true,
                "--port" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        port = n;
                        i += 1;
                    }
                    None => {
                        portopt_trace::warn!("bench", "--port expects a port number; using {port}")
                    }
                },
                "--batch" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => {
                        batch = n;
                        i += 1;
                    }
                    _ => portopt_trace::warn!(
                        "bench",
                        "--batch expects a positive number; using {batch}"
                    ),
                },
                "--batch-window-ms" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        batch_window_ms = n;
                        i += 1;
                    }
                    None => {
                        portopt_trace::warn!(
                            "bench",
                            "--batch-window-ms expects a number; using {batch_window_ms}"
                        )
                    }
                },
                "--max-conns" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => {
                        max_conns = n;
                        i += 1;
                    }
                    _ => portopt_trace::warn!(
                        "bench",
                        "--max-conns expects a positive number; using {max_conns}"
                    ),
                },
                "--queue-cap" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0usize => {
                        queue_cap = Some(n);
                        i += 1;
                    }
                    _ => portopt_trace::warn!(
                        "bench",
                        "--queue-cap expects a positive number; queue stays unbounded"
                    ),
                },
                "--per-conn-quota" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0u64 => {
                        per_conn_quota = Some(n);
                        i += 1;
                    }
                    _ => portopt_trace::warn!(
                        "bench",
                        "--per-conn-quota expects a positive number; connections stay unbounded"
                    ),
                },
                "--metrics-port" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        metrics_port = Some(n);
                        i += 1;
                    }
                    None => portopt_trace::warn!(
                        "bench",
                        "--metrics-port expects a port number; endpoint disabled"
                    ),
                },
                // Model-kind flags are fatal on an unknown tag: training
                // (or expecting) the wrong model because of a typo wastes
                // a sweep, or silently serves the wrong predictor.
                "--model" => match args.get(i + 1).map(|s| ModelKind::parse(s)) {
                    Some(Some(k)) => {
                        model = k;
                        i += 1;
                    }
                    _ => {
                        eprintln!(
                            "--model expects knn|linear|clustered, got {:?}",
                            args.get(i + 1)
                        );
                        std::process::exit(2);
                    }
                },
                "--expect-model" => match args.get(i + 1).map(|s| ModelKind::parse(s)) {
                    Some(Some(k)) => {
                        expect_model = Some(k);
                        i += 1;
                    }
                    _ => {
                        eprintln!(
                            "--expect-model expects knn|linear|clustered, got {:?}",
                            args.get(i + 1)
                        );
                        std::process::exit(2);
                    }
                },
                "--snapshot-b" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        snapshot_b = Some(p.clone());
                        i += 1;
                    }
                    None => portopt_trace::warn!("bench", "--snapshot-b expects a file path"),
                },
                "--watch-snapshot" => watch_snapshot = true,
                "--no-checkpoint" => no_checkpoint = true,
                "--worker" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(a) => {
                        worker = Some(a.clone());
                        i += 1;
                    }
                    None => {
                        eprintln!("--worker expects a coordinator host:port");
                        std::process::exit(2);
                    }
                },
                "--retry-budget" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0u32 => {
                        retry_budget = n;
                        i += 1;
                    }
                    _ => {
                        portopt_trace::warn!(
                            "bench",
                            "--retry-budget expects a positive number; using {retry_budget}"
                        )
                    }
                },
                "--lease-timeout-ms" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0u64 => {
                        lease_timeout_ms = n;
                        i += 1;
                    }
                    _ => portopt_trace::warn!(
                        "bench",
                        "--lease-timeout-ms expects a positive number; using {lease_timeout_ms}"
                    ),
                },
                "--cache-max-bytes" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    Some(n) => {
                        cache_max_bytes = Some(n);
                        i += 1;
                    }
                    None => {
                        // Fatal like the shard flags: a typo'd budget must
                        // not silently skip the eviction the operator
                        // counted on (or, worse, evict to a default).
                        eprintln!(
                            "--cache-max-bytes expects a byte count, got {:?}",
                            args.get(i + 1)
                        );
                        std::process::exit(2);
                    }
                },
                // Already consumed by `init_trace` before this loop; just
                // step over the value token here.
                "--log-level" | "--trace-out" => i += 1,
                other => portopt_trace::warn!("bench", "ignoring unknown argument {other}"),
            }
            i += 1;
        }
        let scale = match scale_name.as_str() {
            "paper" => SweepScale::paper(),
            "default" => SweepScale::default_scale(),
            "smoke" => SweepScale::smoke(),
            // `quick`: the scale used for the recorded EXPERIMENTS.md run.
            _ => SweepScale {
                n_uarch: 10,
                n_opts: 60,
            },
        };
        BinArgs {
            scale,
            scale_name,
            extended,
            no_cache,
            threads,
            out,
            snapshot,
            shards,
            stdio,
            port,
            batch,
            batch_window_ms,
            max_conns,
            queue_cap,
            per_conn_quota,
            metrics_port,
            watch_snapshot,
            shard_index,
            shard_count,
            profile_cache,
            dataset_out,
            no_checkpoint,
            worker,
            retry_budget,
            lease_timeout_ms,
            cache_max_bytes,
            log_level,
            trace_out,
            model,
            expect_model,
            snapshot_b,
        }
    }

    /// Pre-scans `args` for `--log-level` and `--trace-out` and brings up
    /// the global tracer (stderr filter + optional file sink). Runs before
    /// the main flag loop so everything that loop logs is already leveled.
    /// Bad values are fatal (exit 2): an operator asking for `warn` who
    /// silently got the default chatter — or a trace file that never
    /// materializes — would only find out hours into a sweep.
    fn init_trace(args: &[String]) -> (portopt_trace::Level, Option<String>) {
        let mut log_level_flag: Option<String> = None;
        let mut trace_out: Option<String> = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--log-level" => match args.get(i + 1) {
                    Some(l) if portopt_trace::Level::parse(l).is_some() => {
                        log_level_flag = Some(l.clone());
                        i += 1;
                    }
                    other => {
                        eprintln!(
                            "--log-level expects off|error|warn|info|debug|trace, got {other:?}"
                        );
                        std::process::exit(2);
                    }
                },
                "--trace-out" => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        trace_out = Some(p.clone());
                        i += 1;
                    }
                    None => {
                        eprintln!("--trace-out expects a file path");
                        std::process::exit(2);
                    }
                },
                _ => {}
            }
            i += 1;
        }
        let log_level = portopt_trace::level_from_env_or(log_level_flag.as_deref());
        if let Some(path) = &trace_out {
            if let Err(e) = Self::ensure_writable(path) {
                eprintln!("--trace-out: {e}");
                std::process::exit(2);
            }
        }
        if let Err(e) =
            portopt_trace::init(log_level, trace_out.as_deref().map(std::path::Path::new))
        {
            eprintln!(
                "cannot open --trace-out {}: {e}",
                trace_out.as_deref().unwrap_or_default()
            );
            std::process::exit(2);
        }
        (log_level, trace_out)
    }

    /// Publishes the `--trace-out` file (atomic temp → rename), if one was
    /// requested. Call once at the end of a bin's happy path; a crash
    /// before this point leaves only a `.tmp.<pid>` file, never a torn
    /// trace presented as complete.
    pub fn finish_trace() {
        match portopt_trace::finish() {
            Ok(Some(path)) => {
                portopt_trace::info!("bench", "trace written to {}", path.display())
            }
            Ok(None) => {}
            Err(e) => portopt_trace::warn!("bench", "could not publish trace file: {e}"),
        }
    }

    /// Writes `bytes` to `path` atomically: a temp file in the same
    /// directory, flushed, then renamed over the target (the same
    /// publication discipline as `DiskCache::put`). A crash mid-write
    /// leaves either the old file or a stray `.tmp` — never a truncated
    /// artifact for a reader to choke on.
    pub fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = format!("{path}.tmp.{}", std::process::id());
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            e
        })
    }

    /// Verifies that `path` can be created and written *now*, creating
    /// missing parent directories — called by the `sweep`, `snapshot` and
    /// `coordinator` bins before any pricing starts, so a typo'd output
    /// path costs seconds, not a sweep.
    pub fn ensure_writable(path: &str) -> Result<(), String> {
        let p = std::path::Path::new(path);
        if p.is_dir() {
            return Err(format!("{path} is a directory, not a writable file"));
        }
        if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create directory {}: {e}", dir.display()))?;
        }
        // Probe with a sibling temp file (same directory, same rename
        // target as `write_atomic`), so the check exercises the exact
        // permission the final publication needs.
        let probe = format!("{path}.probe.{}", std::process::id());
        std::fs::write(&probe, b"").map_err(|e| format!("{path} is not writable: {e}"))?;
        let _ = std::fs::remove_file(&probe);
        Ok(())
    }

    /// Writes a dataset as JSON and reports the artifact, exiting with
    /// status 2 on failure — the shared output path of the `sweep` bin
    /// (shard files) and `snapshot --dataset-out` (the merged dataset).
    /// Publication is atomic ([`BinArgs::write_atomic`]): a crash mid-write
    /// can never leave a truncated shard for `snapshot --shard`.
    pub fn write_dataset(path: &str, ds: &Dataset) {
        let bytes = serde_json::to_vec(ds).unwrap_or_else(|e| {
            portopt_trace::error!("bench", "cannot serialize dataset: {e}");
            std::process::exit(2);
        });
        if let Err(e) = Self::write_atomic(path, &bytes) {
            portopt_trace::error!("bench", "cannot write dataset {path}: {e}");
            std::process::exit(2);
        }
        println!(
            "wrote {path}: {} programs, {} bytes",
            ds.n_programs(),
            bytes.len()
        );
    }

    /// Default shard-dataset path for the `sweep` bin's `--out`.
    pub fn shard_path(&self) -> String {
        self.out.clone().unwrap_or_else(|| {
            format!(
                "target/portopt-shard-{}{}-{}of{}.json",
                self.scale_name,
                if self.extended { "-ext" } else { "" },
                self.shard_index,
                self.shard_count,
            )
        })
    }

    /// Default model-artifact path for this scale (the `snapshot` bin's
    /// `--out` default and the natural `serve --snapshot` argument). The
    /// kNN path is unsuffixed — unchanged from before the model zoo — and
    /// the other kinds get a `-{kind}` suffix so training two kinds at the
    /// same scale never clobbers.
    pub fn snapshot_path(&self) -> String {
        self.out.clone().unwrap_or_else(|| {
            format!(
                "target/portopt-model-{}{}{}.snap",
                self.scale_name,
                if self.extended { "-ext" } else { "" },
                match self.model {
                    ModelKind::Knn => "".to_string(),
                    other => format!("-{other}"),
                }
            )
        })
    }

    /// Generation options for this run.
    pub fn gen_options(&self) -> GenOptions {
        GenOptions {
            scale: self.scale,
            seed: 2009,
            extended_space: self.extended,
            threads: self.threads,
        }
    }

    /// Where this run's throughput report lands.
    fn report_path(&self) -> String {
        format!(
            "target/BENCH_sweep-{}{}.json",
            self.scale_name,
            if self.extended { "-ext" } else { "" }
        )
    }

    /// Writes the machine-readable sweep throughput report (settings/sec,
    /// wall time) next to the dataset cache and echoes it to stderr, so
    /// every figure run leaves a perf data point behind.
    pub fn write_report(&self, report: &SweepReport) {
        portopt_trace::info!(
            "bench",
            {
                wall_secs = report.wall_secs,
                settings_per_sec = report.settings_per_sec,
                threads = report.threads as u64,
                unique_settings = report.unique_settings as u64
            },
            "sweep: {} programs x {} settings x {} uarchs in {:.2}s \
             ({:.1} settings/sec, {} threads, {} unique settings)",
            report.programs,
            report.settings,
            report.uarchs,
            report.wall_secs,
            report.settings_per_sec,
            report.threads,
            report.unique_settings,
        );
        if let Ok(bytes) = serde_json::to_vec(report) {
            let path = self.report_path();
            if let Err(e) = Self::write_atomic(&path, &bytes) {
                portopt_trace::warn!("bench", "could not write {path}: {e}");
            }
        }
    }

    /// Loads or generates the dataset (cached under `target/`). A fresh
    /// generation also records its throughput report.
    pub fn dataset(&self) -> Dataset {
        let cache = format!(
            "target/portopt-ds-{}{}.json",
            self.scale_name,
            if self.extended { "-ext" } else { "" }
        );
        let path = std::path::PathBuf::from(cache);
        dataset_cached(
            &self.gen_options(),
            if self.no_cache { None } else { Some(&path) },
            |report| self.write_report(report),
        )
    }

    /// Dataset plus the leave-one-out evaluation (also cached).
    pub fn dataset_and_loo(&self) -> (Dataset, LooResult, Vec<Module>) {
        let ds = self.dataset();
        let (_, modules) = suite_modules(2009);
        let cache = format!(
            "target/portopt-loo-{}{}.json",
            self.scale_name,
            if self.extended { "-ext" } else { "" }
        );
        if !self.no_cache {
            if let Ok(bytes) = std::fs::read(&cache) {
                if let Ok(loo) = serde_json::from_slice::<LooResult>(&bytes) {
                    if loo.model_speedup.len() == ds.n_programs() {
                        return (ds, loo, modules);
                    }
                }
            }
        }
        let loo = run_loo(&ds, &modules, self.threads);
        if !self.no_cache {
            if let Ok(bytes) = serde_json::to_vec(&loo) {
                let _ = std::fs::write(&cache, bytes);
            }
        }
        (ds, loo, modules)
    }
}
