//! The sweep coordinator: fleet-scale orchestration of the sharded
//! `(program, setting)` grid with crash-tolerant retries.
//!
//! One `coordinator` process owns the [`ShardSpec`](portopt_core::ShardSpec)
//! plan and leases shard indices to `sweep --worker` rigs over the same
//! JSON-lines wire idiom as the serving protocol (one self-describing JSON
//! document per `\n`-terminated line; see `docs/SWEEP.md`). A worker that
//! dies, stalls past its lease deadline, or refuses a shard does not sink
//! the sweep: the coordinator re-leases the shard to the next rig that
//! asks, with exponential backoff and a per-shard retry budget, and every
//! loss/retry/refusal is observable in [`CoordMetrics`] (the same atomic
//! counter style as `portopt_serve::metrics`).
//!
//! Because sharded sweeps are deterministic — any rig sweeping shard `i`
//! of `n` under the same flags produces byte-identical rows — duplicate
//! results from a stale lease are simply discarded (first accepted result
//! wins, counted in [`CoordMetrics::duplicates`]) and the merged dataset
//! equals the unsharded sweep byte for byte, exactly as if no worker had
//! ever crashed.
//!
//! The lease/retry state machine ([`Coordinator`]) is pure in `(event,
//! now)` and fully unit-tested without sockets; [`run_coordinator`] and
//! [`run_worker`] put TCP under it.

use portopt_core::{Dataset, MergeError};
use serde::{Deserialize, Serialize};
use std::io::{BufRead as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default lease deadline: a worker silent for this long forfeits its
/// shard (generous — a smoke-scale shard sweeps in seconds, a paper-scale
/// one in minutes; size it to your scale with `--lease-timeout-ms`).
pub const DEFAULT_LEASE_TIMEOUT_MS: u64 = 600_000;

/// Default per-shard attempt budget (first attempt included).
pub const DEFAULT_RETRY_BUDGET: u32 = 3;

/// Default base of the exponential re-lease backoff.
pub const DEFAULT_BACKOFF_MS: u64 = 500;

/// Ceiling on the exponential backoff between re-leases of one shard.
pub const MAX_BACKOFF: Duration = Duration::from_secs(60);

/// Every message of the coordinator wire protocol, one JSON document per
/// line, externally tagged by variant name. Workers send `Hello`,
/// `Shard` and `Refuse`; the coordinator answers each with `Grant`,
/// `Wait`, `Finished` or `Abort`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireMsg {
    /// Worker → coordinator: I am idle, lease me a shard.
    Hello {
        /// Worker name (for lease bookkeeping and logs).
        worker: String,
    },
    /// Coordinator → worker: sweep shard `index` of `count`.
    Grant {
        /// Shard index to sweep.
        index: usize,
        /// Total shard count of the plan (the `ShardSpec` denominator).
        count: usize,
        /// Lease deadline in milliseconds: results after this may be
        /// discarded as duplicates of a retry.
        deadline_ms: u64,
    },
    /// Coordinator → worker: nothing leasable right now (everything is in
    /// flight or backing off) — ask again in `retry_ms`.
    Wait {
        /// Suggested delay before the next `Hello`.
        retry_ms: u64,
    },
    /// Coordinator → worker: the plan is complete, disconnect.
    Finished,
    /// Coordinator → worker: the sweep cannot complete (a shard exhausted
    /// its retry budget); disconnect and report.
    Abort {
        /// Human-readable failure description.
        reason: String,
    },
    /// Worker → coordinator: shard `index` swept successfully.
    Shard {
        /// Worker name.
        worker: String,
        /// The shard index this dataset covers.
        index: usize,
        /// The swept shard.
        dataset: Dataset,
    },
    /// Worker → coordinator: I cannot sweep shard `index` (bad local
    /// state — an unwritable cache dir, say); lease it elsewhere.
    Refuse {
        /// Worker name.
        worker: String,
        /// The refused shard index.
        index: usize,
        /// Why the worker refused.
        reason: String,
    },
}

/// Observable coordinator counters, in the atomic style of
/// `portopt_serve::metrics`: lock-free to bump, coherent enough to read
/// live while the fleet runs.
#[derive(Debug, Default)]
pub struct CoordMetrics {
    /// Leases granted (first attempts and retries).
    pub leases_granted: AtomicU64,
    /// Leases that passed their deadline and were revoked.
    pub leases_expired: AtomicU64,
    /// Re-leases of a shard whose earlier attempt was lost/expired/refused.
    pub retries: AtomicU64,
    /// Shards a worker explicitly refused.
    pub refusals: AtomicU64,
    /// Results discarded because the shard was already complete (a stale
    /// lease finishing after its retry).
    pub duplicates: AtomicU64,
    /// Worker connections lost while holding a lease.
    pub workers_lost: AtomicU64,
    /// Shards completed and accepted.
    pub shards_done: AtomicU64,
    /// Shards abandoned after exhausting the retry budget.
    pub shards_failed: AtomicU64,
}

impl CoordMetrics {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// One human-readable summary line (printed by the `coordinator` bin
    /// on every state change and at exit).
    pub fn render_line(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "coordinator: granted={} expired={} retries={} refusals={} \
             duplicates={} workers_lost={} shards_done={} shards_failed={}",
            g(&self.leases_granted),
            g(&self.leases_expired),
            g(&self.retries),
            g(&self.refusals),
            g(&self.duplicates),
            g(&self.workers_lost),
            g(&self.shards_done),
            g(&self.shards_failed),
        )
    }

    /// Plaintext metrics snapshot in the exact style of
    /// `portopt_serve::MetricsSnapshot::to_text` (`name value\n` per
    /// line), served live by the `coordinator` bin's `--metrics-port`
    /// endpoint while the plan runs.
    pub fn to_text(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut s = String::with_capacity(320);
        s.push_str(&format!(
            "portopt_coord_leases_granted_total {}\n",
            g(&self.leases_granted)
        ));
        s.push_str(&format!(
            "portopt_coord_leases_expired_total {}\n",
            g(&self.leases_expired)
        ));
        s.push_str(&format!(
            "portopt_coord_retries_total {}\n",
            g(&self.retries)
        ));
        s.push_str(&format!(
            "portopt_coord_refusals_total {}\n",
            g(&self.refusals)
        ));
        s.push_str(&format!(
            "portopt_coord_duplicates_total {}\n",
            g(&self.duplicates)
        ));
        s.push_str(&format!(
            "portopt_coord_workers_lost_total {}\n",
            g(&self.workers_lost)
        ));
        s.push_str(&format!(
            "portopt_coord_shards_done {}\n",
            g(&self.shards_done)
        ));
        s.push_str(&format!(
            "portopt_coord_shards_failed {}\n",
            g(&self.shards_failed)
        ));
        s
    }
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CoordConfig {
    /// Number of shards the program grid is split into.
    pub shard_count: usize,
    /// How long a lease lives before the shard becomes re-leasable.
    pub lease_timeout: Duration,
    /// Maximum sweep attempts per shard (first attempt included); a shard
    /// that fails this many times aborts the whole plan.
    pub retry_budget: u32,
    /// Base of the exponential backoff between attempts of one shard.
    pub backoff_base: Duration,
}

impl CoordConfig {
    /// Defaults for a plan of `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        CoordConfig {
            shard_count,
            lease_timeout: Duration::from_millis(DEFAULT_LEASE_TIMEOUT_MS),
            retry_budget: DEFAULT_RETRY_BUDGET,
            backoff_base: Duration::from_millis(DEFAULT_BACKOFF_MS),
        }
    }
}

/// One shard's place in the plan.
#[derive(Debug)]
enum Slot {
    /// Sweepable — immediately, or once the backoff expires.
    Pending { not_before: Option<Instant> },
    /// Leased to a worker until the deadline.
    Leased { worker: String, deadline: Instant },
    /// Result accepted.
    Done,
    /// Retry budget exhausted; the plan cannot complete.
    Failed,
}

/// What the coordinator tells a worker that asked for work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Sweep this shard.
    Grant {
        /// The leased shard index.
        index: usize,
    },
    /// Nothing leasable right now; ask again after `retry`.
    Wait {
        /// Suggested delay before asking again.
        retry: Duration,
    },
    /// Every shard is done.
    Finished,
    /// A shard exhausted its retry budget; the plan is dead.
    Abort {
        /// The failed shard.
        index: usize,
    },
}

/// The lease/retry state machine. Pure in `(event, now)`: every method
/// takes the current time explicitly, so tests can replay any schedule of
/// grants, crashes and expiries without sleeping.
#[derive(Debug)]
pub struct Coordinator {
    config: CoordConfig,
    slots: Vec<Slot>,
    attempts: Vec<u32>,
    results: Vec<Option<Dataset>>,
    metrics: Arc<CoordMetrics>,
    /// One detached trace span per in-flight lease (grant -> done /
    /// expired / refused / lost), indexed by shard. Lives outside `Slot`
    /// so closing a span never fights the state-machine matches.
    lease_spans: Vec<Option<portopt_trace::Span>>,
}

impl Coordinator {
    /// A fresh plan: every shard pending, nothing leased.
    pub fn new(config: CoordConfig) -> Self {
        let n = config.shard_count;
        Coordinator {
            config,
            slots: (0..n).map(|_| Slot::Pending { not_before: None }).collect(),
            attempts: vec![0; n],
            results: (0..n).map(|_| None).collect(),
            metrics: Arc::new(CoordMetrics::default()),
            lease_spans: (0..n).map(|_| None).collect(),
        }
    }

    /// The live counters (shared; clone the `Arc` to watch from another
    /// thread).
    pub fn metrics(&self) -> Arc<CoordMetrics> {
        self.metrics.clone()
    }

    /// The plan's shard count.
    pub fn shard_count(&self) -> usize {
        self.config.shard_count
    }

    fn backoff(&self, attempts: u32) -> Duration {
        let factor = 1u32 << attempts.saturating_sub(1).min(16);
        (self.config.backoff_base * factor).min(MAX_BACKOFF)
    }

    /// Closes shard `index`'s lease span (if one is open) with its
    /// terminal outcome: `done`, `expired`, `refused` or `lost`.
    fn close_lease_span(&mut self, index: usize, outcome: &str) {
        if let Some(sp) = self.lease_spans[index].take() {
            sp.end_with(&[
                ("shard", (index as u64).into()),
                ("outcome", outcome.into()),
            ]);
        }
    }

    /// Releases shard `index` for another attempt — or fails it (and the
    /// plan) when the retry budget is spent.
    fn release(&mut self, index: usize, now: Instant) {
        if self.attempts[index] >= self.config.retry_budget {
            self.slots[index] = Slot::Failed;
            CoordMetrics::bump(&self.metrics.shards_failed);
            portopt_trace::warn!(
                "bench.coordinator",
                { shard = index as u64, attempts = self.attempts[index] as u64 },
                "shard {index} failed: retry budget exhausted after {} attempts",
                self.attempts[index]
            );
        } else {
            let backoff = self.backoff(self.attempts[index]);
            portopt_trace::debug!(
                "bench.coordinator",
                { shard = index as u64, backoff_ms = backoff.as_millis() as u64 },
                "shard {index} re-leasable after {}ms backoff",
                backoff.as_millis()
            );
            self.slots[index] = Slot::Pending {
                not_before: Some(now + backoff),
            };
        }
    }

    /// Revokes every lease whose deadline has passed, making those shards
    /// re-leasable (after backoff). Called internally by [`Coordinator::lease`]
    /// and periodically by the serve loop, so a stalled rig cannot pin a
    /// shard forever.
    pub fn expire(&mut self, now: Instant) {
        for index in 0..self.slots.len() {
            if let Slot::Leased { deadline, .. } = &self.slots[index] {
                if *deadline <= now {
                    CoordMetrics::bump(&self.metrics.leases_expired);
                    self.close_lease_span(index, "expired");
                    self.release(index, now);
                }
            }
        }
    }

    /// A worker asked for work: lease it the lowest eligible pending
    /// shard, or tell it why there is none.
    pub fn lease(&mut self, worker: &str, now: Instant) -> Decision {
        self.expire(now);
        if let Some(index) = self.slots.iter().position(|s| matches!(s, Slot::Failed)) {
            return Decision::Abort { index };
        }
        if self.finished() {
            return Decision::Finished;
        }
        let eligible = self.slots.iter().position(|s| match s {
            Slot::Pending { not_before } => not_before.map_or(true, |t| t <= now),
            _ => false,
        });
        if let Some(index) = eligible {
            self.attempts[index] += 1;
            if self.attempts[index] > 1 {
                CoordMetrics::bump(&self.metrics.retries);
            }
            CoordMetrics::bump(&self.metrics.leases_granted);
            self.lease_spans[index] = Some(portopt_trace::Span::begin(
                "bench.coordinator",
                "lease",
                &[
                    ("shard", (index as u64).into()),
                    ("attempt", (self.attempts[index] as u64).into()),
                    ("worker", worker.into()),
                ],
            ));
            self.slots[index] = Slot::Leased {
                worker: worker.to_string(),
                deadline: now + self.config.lease_timeout,
            };
            return Decision::Grant { index };
        }
        // Everything is in flight or backing off: suggest a delay that
        // lands just past the nearest backoff/deadline event.
        let next_event = self
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Pending {
                    not_before: Some(t),
                } => Some(*t),
                Slot::Leased { deadline, .. } => Some(*deadline),
                _ => None,
            })
            .min();
        let retry = next_event
            .map(|t| t.saturating_duration_since(now) + Duration::from_millis(10))
            .unwrap_or(Duration::from_millis(200))
            .clamp(Duration::from_millis(50), Duration::from_secs(2));
        Decision::Wait { retry }
    }

    /// A worker returned shard `index`. Returns `true` if the result was
    /// accepted; a duplicate of an already-complete shard is discarded
    /// (counted, deterministic: the first accepted result wins — harmless
    /// either way, since shard sweeps are byte-identical across rigs).
    pub fn complete(&mut self, index: usize, dataset: Dataset) -> bool {
        if index >= self.slots.len() || matches!(self.slots[index], Slot::Done) {
            CoordMetrics::bump(&self.metrics.duplicates);
            return false;
        }
        self.close_lease_span(index, "done");
        self.slots[index] = Slot::Done;
        self.results[index] = Some(dataset);
        CoordMetrics::bump(&self.metrics.shards_done);
        true
    }

    /// A worker refused shard `index`: re-lease it elsewhere (after
    /// backoff), burning one attempt of its budget.
    pub fn refuse(&mut self, index: usize, now: Instant) {
        if index < self.slots.len() && !matches!(self.slots[index], Slot::Done | Slot::Failed) {
            CoordMetrics::bump(&self.metrics.refusals);
            self.close_lease_span(index, "refused");
            self.release(index, now);
        }
    }

    /// A worker's connection died. Any lease it held is revoked and its
    /// shards go back in the pool (after backoff).
    pub fn worker_lost(&mut self, worker: &str, now: Instant) {
        let mut lost_any = false;
        for index in 0..self.slots.len() {
            if matches!(&self.slots[index], Slot::Leased { worker: w, .. } if w == worker) {
                lost_any = true;
                self.close_lease_span(index, "lost");
                self.release(index, now);
            }
        }
        if lost_any {
            CoordMetrics::bump(&self.metrics.workers_lost);
        }
    }

    /// Every shard completed?
    pub fn finished(&self) -> bool {
        self.slots.iter().all(|s| matches!(s, Slot::Done))
    }

    /// The first shard that exhausted its retry budget, if any — a
    /// terminal state: the plan can never complete.
    pub fn failed_shard(&self) -> Option<usize> {
        self.slots.iter().position(|s| matches!(s, Slot::Failed))
    }

    /// Merges the completed shards in index order (byte-identical to the
    /// unsharded sweep). Call once [`Coordinator::finished`].
    pub fn merged(mut self) -> Result<Dataset, MergeError> {
        Dataset::merge(self.take_results())
    }

    /// Drains the accepted shard results in index order, leaving the
    /// bookkeeping (metrics, attempts) behind — how [`run_coordinator`]
    /// extracts the data while observers still hold the shared handle.
    pub fn take_results(&mut self) -> Vec<Dataset> {
        self.results.iter_mut().filter_map(Option::take).collect()
    }
}

/// Why [`run_coordinator`] gave up.
#[derive(Debug)]
pub enum CoordError {
    /// Socket setup or accept failed.
    Io(std::io::Error),
    /// A shard exhausted its retry budget.
    ShardFailed {
        /// The shard that could not be swept.
        index: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The completed shards would not merge (a worker swept under
    /// different flags — axes mismatch).
    Merge(MergeError),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Io(e) => write!(f, "coordinator i/o error: {e}"),
            CoordError::ShardFailed { index, attempts } => write!(
                f,
                "shard {index} failed {attempts} attempts (retry budget exhausted)"
            ),
            CoordError::Merge(e) => write!(f, "returned shards do not merge: {e}"),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<std::io::Error> for CoordError {
    fn from(e: std::io::Error) -> Self {
        CoordError::Io(e)
    }
}

fn send_msg(stream: &mut TcpStream, msg: &WireMsg) -> std::io::Result<()> {
    let mut line = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn decision_msg(decision: &Decision, coord: &Coordinator) -> WireMsg {
    match decision {
        Decision::Grant { index } => WireMsg::Grant {
            index: *index,
            count: coord.config.shard_count,
            deadline_ms: coord.config.lease_timeout.as_millis() as u64,
        },
        Decision::Wait { retry } => WireMsg::Wait {
            retry_ms: retry.as_millis() as u64,
        },
        Decision::Finished => WireMsg::Finished,
        Decision::Abort { index } => WireMsg::Abort {
            reason: format!("shard {index} exhausted its retry budget"),
        },
    }
}

/// Serves the plan in `coord` on `listener` until every shard is merged
/// or one exhausts its retry budget. Returns the merged dataset — the
/// same bytes an unsharded sweep would produce, regardless of how many
/// workers died along the way.
pub fn run_coordinator(
    listener: TcpListener,
    coord: Arc<Mutex<Coordinator>>,
) -> Result<Dataset, CoordError> {
    listener.set_nonblocking(true)?;
    let done = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let coord = coord.clone();
                let done = done.clone();
                conns.push(std::thread::spawn(move || {
                    handle_worker_conn(stream, coord, done);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                done.store(true, Ordering::SeqCst);
                for h in conns {
                    let _ = h.join();
                }
                return Err(CoordError::Io(e));
            }
        }
        let mut c = coord.lock().expect("coordinator");
        c.expire(Instant::now());
        if c.finished() || c.failed_shard().is_some() {
            break;
        }
    }
    done.store(true, Ordering::SeqCst);
    for h in conns {
        let _ = h.join();
    }
    let mut c = coord.lock().expect("coordinator");
    if let Some(index) = c.failed_shard() {
        return Err(CoordError::ShardFailed {
            index,
            attempts: c.attempts[index],
        });
    }
    let shards = c.take_results();
    drop(c);
    Dataset::merge(shards).map_err(CoordError::Merge)
}

fn handle_worker_conn(stream: TcpStream, coord: Arc<Mutex<Coordinator>>, done: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    let mut worker_name = String::from("?");
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF: a worker that died mid-lease forfeits its shards.
                coord
                    .lock()
                    .expect("coordinator")
                    .worker_lost(&worker_name, Instant::now());
                return;
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if done.load(Ordering::SeqCst) {
                    // Plan over while this worker was sweeping or waiting:
                    // push the terminal message and hang up.
                    let _ = send_msg(&mut writer, &WireMsg::Finished);
                    return;
                }
                continue;
            }
            Err(_) => {
                coord
                    .lock()
                    .expect("coordinator")
                    .worker_lost(&worker_name, Instant::now());
                return;
            }
        }
        let msg = match serde_json::from_str::<WireMsg>(line.trim_end()) {
            Ok(m) => m,
            Err(e) => {
                portopt_trace::warn!("bench.coordinator", "unparseable worker line ignored: {e}");
                continue;
            }
        };
        let now = Instant::now();
        let mut c = coord.lock().expect("coordinator");
        let decision = match msg {
            WireMsg::Hello { worker } => {
                worker_name = worker;
                c.lease(&worker_name, now)
            }
            WireMsg::Shard {
                worker,
                index,
                dataset,
            } => {
                worker_name = worker;
                if !c.complete(index, dataset) {
                    portopt_trace::info!(
                        "bench.coordinator",
                        { shard = index as u64 },
                        "duplicate result for shard {index} from {worker_name} discarded"
                    );
                }
                c.lease(&worker_name, now)
            }
            WireMsg::Refuse {
                worker,
                index,
                reason,
            } => {
                worker_name = worker;
                portopt_trace::warn!(
                    "bench.coordinator",
                    { shard = index as u64 },
                    "{worker_name} refused shard {index}: {reason}"
                );
                c.refuse(index, now);
                c.lease(&worker_name, now)
            }
            // Coordinator-side messages from a confused peer: ignore.
            _ => continue,
        };
        let reply = decision_msg(&decision, &c);
        let terminal = matches!(decision, Decision::Finished | Decision::Abort { .. });
        drop(c);
        if send_msg(&mut writer, &reply).is_err() {
            coord
                .lock()
                .expect("coordinator")
                .worker_lost(&worker_name, Instant::now());
            return;
        }
        if terminal {
            return;
        }
    }
}

/// What a worker did before the coordinator released it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Shards swept and returned.
    pub shards_swept: usize,
    /// Shards refused (the sweep closure returned `Err`).
    pub refused: usize,
}

/// Connects to a coordinator at `addr` and sweeps leases until told
/// [`WireMsg::Finished`]. `sweep(index, count)` runs one shard and
/// returns its dataset, or `Err(reason)` to refuse the lease (the
/// coordinator re-leases it elsewhere).
pub fn run_worker(
    addr: &str,
    name: &str,
    mut sweep: impl FnMut(usize, usize) -> Result<Dataset, String>,
) -> std::io::Result<WorkerOutcome> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = std::io::BufReader::new(stream);
    let mut outcome = WorkerOutcome {
        shards_swept: 0,
        refused: 0,
    };
    send_msg(
        &mut writer,
        &WireMsg::Hello {
            worker: name.to_string(),
        },
    )?;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "coordinator hung up mid-plan",
            ));
        }
        let msg = serde_json::from_str::<WireMsg>(line.trim_end())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        match msg {
            WireMsg::Grant { index, count, .. } => match sweep(index, count) {
                Ok(dataset) => {
                    outcome.shards_swept += 1;
                    send_msg(
                        &mut writer,
                        &WireMsg::Shard {
                            worker: name.to_string(),
                            index,
                            dataset,
                        },
                    )?;
                }
                Err(reason) => {
                    // The refusal reason must be visible on the worker's
                    // own stderr (and in its trace), not only in the
                    // coordinator's log on another machine.
                    portopt_trace::warn!(
                        "bench.coordinator",
                        { shard = index as u64 },
                        "worker {name} refusing shard {index}/{count}: {reason}"
                    );
                    outcome.refused += 1;
                    send_msg(
                        &mut writer,
                        &WireMsg::Refuse {
                            worker: name.to_string(),
                            index,
                            reason,
                        },
                    )?;
                }
            },
            WireMsg::Wait { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.min(2_000)));
                send_msg(
                    &mut writer,
                    &WireMsg::Hello {
                        worker: name.to_string(),
                    },
                )?;
            }
            WireMsg::Finished => return Ok(outcome),
            WireMsg::Abort { reason } => {
                return Err(std::io::Error::new(std::io::ErrorKind::Other, reason));
            }
            // Worker-side messages echoed back: protocol confusion.
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected coordinator message: {other:?}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_core::{generate, GenOptions, ShardSpec, SweepScale};
    use portopt_ir::{FuncBuilder, Module, ModuleBuilder};

    fn tiny_program(name: &str, stride: i64) -> (String, Module) {
        let mut mb = ModuleBuilder::new(name);
        let mut b = FuncBuilder::new("main", 0);
        let acc = b.iconst(0);
        b.counted_loop(0, 60, 1, |b, i| {
            let s = b.mul(i, stride);
            let t = b.add(acc, s);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        (name.to_string(), mb.finish())
    }

    fn tiny_opts() -> GenOptions {
        GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 4,
            },
            seed: 9,
            extended_space: false,
            threads: 1,
        }
    }

    fn fast_config(shards: usize) -> CoordConfig {
        CoordConfig {
            shard_count: shards,
            lease_timeout: Duration::from_secs(5),
            retry_budget: 3,
            backoff_base: Duration::from_millis(40),
        }
    }

    fn tiny_shard(index: usize, count: usize) -> Dataset {
        let programs = vec![
            tiny_program("p1", 1),
            tiny_program("p2", 7),
            tiny_program("p3", 3),
        ];
        let spec = ShardSpec::new(index, count).unwrap();
        generate(spec.slice(&programs), &tiny_opts())
    }

    #[test]
    fn wire_messages_roundtrip() {
        let msgs = vec![
            WireMsg::Hello {
                worker: "rig-a".into(),
            },
            WireMsg::Grant {
                index: 2,
                count: 5,
                deadline_ms: 60_000,
            },
            WireMsg::Wait { retry_ms: 350 },
            WireMsg::Finished,
            WireMsg::Abort {
                reason: "shard 1 exhausted its retry budget".into(),
            },
            WireMsg::Refuse {
                worker: "rig-b".into(),
                index: 1,
                reason: "cache dir unwritable".into(),
            },
        ];
        for msg in msgs {
            let line = serde_json::to_string(&msg).unwrap();
            let back = serde_json::from_str::<WireMsg>(&line).unwrap();
            assert_eq!(format!("{msg:?}"), format!("{back:?}"), "{line}");
        }
        // Shard carries a whole dataset.
        let ds = tiny_shard(0, 3);
        let line = serde_json::to_string(&WireMsg::Shard {
            worker: "rig-a".into(),
            index: 0,
            dataset: ds.clone(),
        })
        .unwrap();
        match serde_json::from_str::<WireMsg>(&line).unwrap() {
            WireMsg::Shard {
                worker,
                index,
                dataset,
            } => {
                assert_eq!(worker, "rig-a");
                assert_eq!(index, 0);
                assert_eq!(
                    serde_json::to_vec(&dataset).unwrap(),
                    serde_json::to_vec(&ds).unwrap()
                );
            }
            other => panic!("expected Shard, got {other:?}"),
        }
    }

    #[test]
    fn leases_are_granted_in_index_order_and_complete() {
        let mut c = Coordinator::new(fast_config(2));
        let t0 = Instant::now();
        assert_eq!(c.lease("a", t0), Decision::Grant { index: 0 });
        assert_eq!(c.lease("b", t0), Decision::Grant { index: 1 });
        // Nothing left to lease while both are in flight.
        assert!(matches!(c.lease("c", t0), Decision::Wait { .. }));
        assert!(c.complete(0, tiny_shard(0, 2)));
        assert!(!c.finished());
        assert!(c.complete(1, tiny_shard(1, 2)));
        assert!(c.finished());
        assert_eq!(c.lease("a", t0), Decision::Finished);
        let m = c.metrics();
        assert_eq!(m.leases_granted.load(Ordering::Relaxed), 2);
        assert_eq!(m.shards_done.load(Ordering::Relaxed), 2);
        assert_eq!(m.retries.load(Ordering::Relaxed), 0);
        let merged = c.merged().unwrap();
        assert_eq!(merged.programs, vec!["p1", "p2", "p3"]);
    }

    #[test]
    fn expired_leases_are_retried_with_backoff() {
        let cfg = fast_config(1);
        let mut c = Coordinator::new(cfg);
        let t0 = Instant::now();
        assert_eq!(c.lease("slow", t0), Decision::Grant { index: 0 });
        // Before the deadline nothing is re-leasable.
        let mid = t0 + cfg.lease_timeout / 2;
        assert!(matches!(c.lease("fast", mid), Decision::Wait { .. }));
        // Past the deadline the lease expires, but the retry backs off
        // first...
        let late = t0 + cfg.lease_timeout + Duration::from_millis(1);
        assert!(matches!(c.lease("fast", late), Decision::Wait { .. }));
        assert_eq!(c.metrics().leases_expired.load(Ordering::Relaxed), 1);
        // ...and after the backoff the shard goes to the new worker.
        let after = late + cfg.backoff_base;
        assert_eq!(c.lease("fast", after), Decision::Grant { index: 0 });
        assert_eq!(c.metrics().retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lost_workers_forfeit_their_leases() {
        let cfg = fast_config(2);
        let mut c = Coordinator::new(cfg);
        let t0 = Instant::now();
        assert_eq!(c.lease("doomed", t0), Decision::Grant { index: 0 });
        assert_eq!(c.lease("ok", t0), Decision::Grant { index: 1 });
        c.worker_lost("doomed", t0);
        assert_eq!(c.metrics().workers_lost.load(Ordering::Relaxed), 1);
        // The forfeited shard comes back after its backoff; the healthy
        // worker's lease is untouched.
        let after = t0 + cfg.backoff_base;
        assert_eq!(c.lease("ok2", after), Decision::Grant { index: 0 });
        // A name that holds no lease is a no-op, not a counter bump.
        c.worker_lost("stranger", t0);
        assert_eq!(c.metrics().workers_lost.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn refusals_burn_budget_and_eventually_abort() {
        let cfg = CoordConfig {
            retry_budget: 2,
            ..fast_config(1)
        };
        let mut c = Coordinator::new(cfg);
        let mut now = Instant::now();
        for attempt in 1..=2 {
            assert_eq!(c.lease("w", now), Decision::Grant { index: 0 }, "{attempt}");
            c.refuse(0, now);
            now += MAX_BACKOFF;
        }
        // Budget spent: the plan is dead and says so.
        assert_eq!(c.lease("w", now), Decision::Abort { index: 0 });
        assert_eq!(c.failed_shard(), Some(0));
        let m = c.metrics();
        assert_eq!(m.refusals.load(Ordering::Relaxed), 2);
        assert_eq!(m.shards_failed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn duplicate_results_are_discarded_deterministically() {
        let cfg = fast_config(1);
        let mut c = Coordinator::new(cfg);
        let t0 = Instant::now();
        assert_eq!(c.lease("a", t0), Decision::Grant { index: 0 });
        // Lease expires; after the backoff (counted from when the expiry
        // was noticed) the shard is re-granted to b; then BOTH finish.
        let expiry = t0 + cfg.lease_timeout + Duration::from_millis(1);
        c.expire(expiry);
        let late = expiry + cfg.backoff_base;
        assert_eq!(c.lease("b", late), Decision::Grant { index: 0 });
        assert!(c.complete(0, tiny_shard(0, 1)), "first result accepted");
        assert!(
            !c.complete(0, tiny_shard(0, 1)),
            "stale duplicate discarded"
        );
        assert_eq!(c.metrics().duplicates.load(Ordering::Relaxed), 1);
        assert!(c.finished());
    }

    /// The end-to-end contract over real TCP: a worker that takes a lease
    /// and dies is retried on a healthy rig, and the merged result is
    /// byte-identical to the unsharded sweep — crash invisible in the data,
    /// visible in the counters.
    #[test]
    fn coordinator_completes_despite_a_dead_worker() {
        let programs = vec![
            tiny_program("p1", 1),
            tiny_program("p2", 7),
            tiny_program("p3", 3),
        ];
        let whole = generate(&programs, &tiny_opts());

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let coord = Arc::new(Mutex::new(Coordinator::new(CoordConfig {
            shard_count: 3,
            lease_timeout: Duration::from_secs(10),
            retry_budget: 3,
            backoff_base: Duration::from_millis(40),
        })));
        let metrics = coord.lock().unwrap().metrics();
        let server = {
            let coord = coord.clone();
            std::thread::spawn(move || run_coordinator(listener, coord))
        };

        // A doomed worker: takes a lease and drops the connection without
        // ever returning the shard.
        {
            let mut stream = TcpStream::connect(&addr).unwrap();
            send_msg(
                &mut stream,
                &WireMsg::Hello {
                    worker: "doomed".into(),
                },
            )
            .unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(
                matches!(
                    serde_json::from_str::<WireMsg>(line.trim_end()).unwrap(),
                    WireMsg::Grant {
                        index: 0,
                        count: 3,
                        ..
                    }
                ),
                "{line}"
            );
            // SIGKILL equivalent: the socket just vanishes.
            drop(reader);
            drop(stream);
        }

        // A healthy worker drains the whole plan, including the retried
        // shard 0.
        let outcome = run_worker(&addr, "healthy", |index, count| {
            let spec = ShardSpec::new(index, count).map_err(|e| e.to_string())?;
            Ok(generate(spec.slice(&programs), &tiny_opts()))
        })
        .unwrap();
        assert_eq!(outcome.shards_swept, 3);

        let merged = server.join().unwrap().unwrap();
        assert_eq!(
            serde_json::to_vec(&merged).unwrap(),
            serde_json::to_vec(&whole).unwrap(),
            "crash + retry must be invisible in the merged data"
        );
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        assert_eq!(g(&metrics.workers_lost), 1, "{}", metrics.render_line());
        assert_eq!(g(&metrics.retries), 1, "{}", metrics.render_line());
        assert_eq!(g(&metrics.shards_done), 3, "{}", metrics.render_line());
        assert_eq!(g(&metrics.leases_granted), 4, "{}", metrics.render_line());
    }

    /// A worker whose sweep closure refuses (bad local state) does not
    /// sink the plan: the shard is re-leased and another rig finishes it.
    #[test]
    fn refused_shards_are_re_leased_over_tcp() {
        let programs = vec![tiny_program("p1", 1), tiny_program("p2", 7)];
        let whole = generate(&programs, &tiny_opts());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let coord = Arc::new(Mutex::new(Coordinator::new(CoordConfig {
            shard_count: 2,
            lease_timeout: Duration::from_secs(10),
            retry_budget: 3,
            backoff_base: Duration::from_millis(40),
        })));
        let metrics = coord.lock().unwrap().metrics();
        let server = {
            let coord = coord.clone();
            std::thread::spawn(move || run_coordinator(listener, coord))
        };
        // One worker refuses shard 0 once, then sweeps whatever it is
        // offered — exercising refusal, backoff and re-lease end to end.
        let mut refused_once = false;
        let outcome = run_worker(&addr, "flaky", |index, count| {
            if index == 0 && !refused_once {
                refused_once = true;
                return Err("cache dir unwritable".to_string());
            }
            let spec = ShardSpec::new(index, count).map_err(|e| e.to_string())?;
            Ok(generate(spec.slice(&programs), &tiny_opts()))
        })
        .unwrap();
        assert_eq!(outcome.refused, 1);
        assert_eq!(outcome.shards_swept, 2);
        let merged = server.join().unwrap().unwrap();
        assert_eq!(
            serde_json::to_vec(&merged).unwrap(),
            serde_json::to_vec(&whole).unwrap()
        );
        assert_eq!(metrics.refusals.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.retries.load(Ordering::Relaxed), 1);
    }
}
