//! Offline trace analysis: ingests a `--trace-out` JSON-lines file and
//! reports where the time went — per-stage breakdown, slowest
//! `(program, setting)` pricings, per-program and per-microarchitecture
//! attribution, queue-wait vs compute ratio, and a depth-indented span
//! tree.
//!
//! ```text
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --trace-out target/sweep.trace
//! cargo run --release -p portopt-bench --bin trace -- target/sweep.trace --top 10
//! ```
//!
//! The file is validated like the checkpoint journal: header first, then
//! every complete record, with a torn final line (producer killed
//! mid-append) reported rather than fatal. Span opens and closes are
//! cross-checked ([`portopt_trace::read::check_spans`]); a file that
//! violates the open/close discipline exits 2, because it means the
//! producer is buggy, not merely interrupted. See `docs/OBSERVABILITY.md`
//! for the format and schema.

use portopt_trace::read::{check_spans, read_trace, Json, TraceRecord};
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!(
        "usage: trace FILE [--top N] [--tree-max N]\n\
         \n  --top N       rows per ranking table (default 10)\
         \n  --tree-max N  span-tree lines before truncation (default 100)"
    );
    std::process::exit(2);
}

fn field<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// One completed span, with its open and close context joined.
struct Closed {
    target: String,
    name: String,
    dur_us: u64,
    open_fields: Vec<(String, Json)>,
    close_fields: Vec<(String, Json)>,
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut top = 10usize;
    let mut tree_max = 100usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            "--tree-max" => {
                tree_max = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 1;
            }
            other if !other.starts_with("--") && file.is_none() => {
                file = Some(other.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    let path = file.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let tf = read_trace(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a valid trace: {e}");
        std::process::exit(2);
    });
    let dangling = check_spans(&tf.records).unwrap_or_else(|e| {
        eprintln!("{path} violates the span discipline: {e}");
        std::process::exit(2);
    });

    println!(
        "{path}: bin `{}`, format v{}, {} records{}",
        tf.header.bin,
        tf.header.format_version,
        tf.records.len(),
        if tf.torn_tail {
            " (torn tail: producer died mid-append)"
        } else {
            ""
        },
    );
    if !dangling.is_empty() {
        println!(
            "  {} span(s) never closed (ids {:?}{}) — normal for an interrupted run",
            dangling.len(),
            &dangling[..dangling.len().min(8)],
            if dangling.len() > 8 { ", …" } else { "" },
        );
    }

    // Join opens with closes into completed spans, preserving file order.
    let mut open_at: HashMap<u64, (String, String, Vec<(String, Json)>)> = HashMap::new();
    let mut closed: Vec<Closed> = Vec::new();
    for r in &tf.records {
        match r {
            TraceRecord::SpanOpen {
                id,
                target,
                name,
                fields,
                ..
            } => {
                open_at.insert(*id, (target.clone(), name.clone(), fields.clone()));
            }
            TraceRecord::SpanClose {
                id, dur_us, fields, ..
            } => {
                if let Some((target, name, open_fields)) = open_at.remove(id) {
                    closed.push(Closed {
                        target,
                        name,
                        dur_us: *dur_us,
                        open_fields,
                        close_fields: fields.clone(),
                    });
                }
            }
            TraceRecord::Event { .. } => {}
        }
    }

    // --- Per-stage breakdown: sum/count/mean/max by (target, name). ---
    let mut stages: HashMap<(String, String), (u64, u64, u64)> = HashMap::new(); // (count, sum, max)
    for c in &closed {
        let e = stages
            .entry((c.target.clone(), c.name.clone()))
            .or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += c.dur_us;
        e.2 = e.2.max(c.dur_us);
    }
    let mut stage_rows: Vec<_> = stages.into_iter().collect();
    stage_rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1));
    println!("\nper-stage time (completed spans, sorted by total):");
    println!(
        "  {:<32} {:>7} {:>12} {:>12} {:>12}",
        "stage", "count", "total", "mean", "max"
    );
    for ((target, name), (count, sum, max)) in &stage_rows {
        println!(
            "  {:<32} {:>7} {:>12} {:>12} {:>12}",
            format!("{target}/{name}"),
            count,
            fmt_us(*sum),
            fmt_us(sum / count.max(&1)),
            fmt_us(*max),
        );
    }

    // --- Pricing spans: the per-(program, setting) unit of sweep work. ---
    let pricings: Vec<&Closed> = closed.iter().filter(|c| c.name == "price_pair").collect();
    println!("\npricing spans: {}", pricings.len());
    if !pricings.is_empty() {
        let mut slowest: Vec<&&Closed> = pricings.iter().collect();
        slowest.sort_by(|a, b| b.dur_us.cmp(&a.dur_us));
        println!(
            "  top {} slowest (program, setting):",
            top.min(slowest.len())
        );
        for c in slowest.iter().take(top) {
            let program = field(&c.open_fields, "program")
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into());
            let t = field(&c.open_fields, "t")
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into());
            let source = field(&c.close_fields, "source")
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into());
            println!(
                "    {:>10}  {program} setting {t} ({source})",
                fmt_us(c.dur_us)
            );
        }
        // Per-program totals.
        let mut by_program: HashMap<String, (u64, u64)> = HashMap::new();
        for c in &pricings {
            let program = field(&c.open_fields, "program")
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into());
            let e = by_program.entry(program).or_insert((0, 0));
            e.0 += 1;
            e.1 += c.dur_us;
        }
        let mut rows: Vec<_> = by_program.into_iter().collect();
        rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1));
        println!("  top {} programs by pricing time:", top.min(rows.len()));
        for (program, (count, sum)) in rows.iter().take(top) {
            println!("    {:>10}  {program} ({count} pairs)", fmt_us(*sum));
        }
    }

    // --- Per-microarchitecture attribution ("uarch evaluated" events). ---
    let mut by_uarch: HashMap<String, (u64, u64)> = HashMap::new();
    for r in &tf.records {
        if let TraceRecord::Event { msg, fields, .. } = r {
            if msg == "uarch evaluated" {
                let u = field(fields, "u")
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "?".into());
                let eval_us = field(fields, "eval_us").and_then(Json::as_u64).unwrap_or(0);
                let e = by_uarch.entry(u).or_insert((0, 0));
                e.0 += 1;
                e.1 += eval_us;
            }
        }
    }
    if !by_uarch.is_empty() {
        let mut rows: Vec<_> = by_uarch.into_iter().collect();
        rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1));
        println!(
            "\ntop {} microarchitectures by evaluation time:",
            top.min(rows.len())
        );
        for (u, (count, sum)) in rows.iter().take(top) {
            println!("  {:>10}  uarch {u} ({count} evaluations)", fmt_us(*sum));
        }
    }

    // --- Queue-wait vs compute, from the executor's drain events. ---
    let (mut compute_us, mut idle_us, mut drains) = (0u64, 0u64, 0u64);
    for r in &tf.records {
        if let TraceRecord::Event { msg, fields, .. } = r {
            if msg == "map_indexed drained" {
                drains += 1;
                compute_us += field(fields, "compute_us")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                idle_us += field(fields, "idle_us").and_then(Json::as_u64).unwrap_or(0);
            }
        }
    }
    if drains > 0 {
        let total = (compute_us + idle_us).max(1);
        println!(
            "\nexecutor: {} drain(s), compute {} vs queue-wait {} ({:.1}% waiting)",
            drains,
            fmt_us(compute_us),
            fmt_us(idle_us),
            idle_us as f64 * 100.0 / total as f64,
        );
    }

    // --- Depth-indented span tree, in file order. ---
    let mut dur_of: HashMap<u64, u64> = HashMap::new();
    for r in &tf.records {
        if let TraceRecord::SpanClose { id, dur_us, .. } = r {
            dur_of.insert(*id, *dur_us);
        }
    }
    let mut depth_of: HashMap<u64, usize> = HashMap::new();
    let mut printed = 0usize;
    let mut skipped = 0usize;
    println!("\nspan tree (file order):");
    for r in &tf.records {
        if let TraceRecord::SpanOpen {
            id,
            parent,
            target,
            name,
            ..
        } = r
        {
            let depth = parent
                .and_then(|p| depth_of.get(&p).copied())
                .map_or(0, |d| d + 1);
            depth_of.insert(*id, depth);
            if printed >= tree_max {
                skipped += 1;
                continue;
            }
            printed += 1;
            let dur = dur_of
                .get(id)
                .map(|d| fmt_us(*d))
                .unwrap_or_else(|| "open".into());
            println!("  {}{target}/{name} [{dur}]", "  ".repeat(depth));
        }
    }
    if skipped > 0 {
        println!("  … {skipped} more span(s) (raise with --tree-max)");
    }
}
