//! §5.3: how many iterative-compilation evaluations match the model?
use portopt_bench::BinArgs;
use portopt_experiments::figures::iters_to_match;

fn main() {
    let args = BinArgs::parse();
    let (ds, loo, _) = args.dataset_and_loo();
    println!("{}", iters_to_match(&ds, &loo));
    BinArgs::finish_trace();
}
