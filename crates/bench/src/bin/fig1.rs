//! Figure 1: best-pass segment diagrams for three programs on three
//! microarchitectures (XScale; small icache; small icache + small dcache).

use portopt_bench::BinArgs;
use portopt_core::generate;
use portopt_experiments::figures::fig1;
use portopt_ir::interp::ExecLimits;
use portopt_mibench::{by_name, Workload};
use portopt_passes::compile;
use portopt_sim::{evaluate, profile};
use portopt_uarch::MicroArch;

fn main() {
    let args = BinArgs::parse();
    let names = ["rijndael_e", "untoast", "madplay"];
    let pairs: Vec<_> = names
        .iter()
        .map(|n| {
            let p = by_name(n, Workload::default()).unwrap();
            (p.name.to_string(), p.module)
        })
        .collect();
    let mut small_i = MicroArch::xscale();
    small_i.il1_size = 4096;
    let mut small_id = small_i;
    small_id.dl1_size = 4096;
    let uarchs = [MicroArch::xscale(), small_i, small_id];
    let labels = [
        "A: XScale",
        "B: small insn cache",
        "C: small insn+data cache",
    ];

    // Generate a dataset with the right setting sample, then re-price every
    // (program, setting) on the three *named* configurations instead of the
    // sampled ones.
    let mut opts = args.gen_options();
    opts.scale.n_uarch = 3;
    let mut ds = generate(&pairs, &opts);
    ds.uarchs = uarchs.to_vec();
    let lim = ExecLimits {
        fuel: 100_000_000,
        max_depth: 2048,
    };
    for (p, (_, module)) in pairs.iter().enumerate() {
        let img3 = compile(module, &portopt_passes::OptConfig::o3());
        let prof3 = profile(&img3, module, &[], lim).unwrap();
        for (u, ua) in uarchs.iter().enumerate() {
            ds.o3_cycles[p][u] = evaluate(&img3, &prof3, ua).cycles;
        }
        for (c, cfg) in ds.configs.clone().iter().enumerate() {
            let img = compile(module, cfg);
            match profile(&img, module, &[], lim) {
                Ok(prof) => {
                    for (u, ua) in uarchs.iter().enumerate() {
                        ds.cycles[p][u][c] = evaluate(&img, &prof, ua).cycles;
                    }
                }
                Err(_) => {
                    for u in 0..3 {
                        ds.cycles[p][u][c] = f64::INFINITY;
                    }
                }
            }
        }
    }

    let f = fig1(&ds, &[0, 1, 2], &[0, 1, 2], &labels.map(String::from));
    println!("{f}");
    for (p, name) in names.iter().enumerate() {
        for u in 0..3 {
            println!(
                "  best speedup {name} on {}: {:.2}x",
                labels[u],
                ds.best_speedup(p, u)
            );
        }
    }
}
