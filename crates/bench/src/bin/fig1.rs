//! Figure 1: best-pass segment diagrams for three programs on three
//! microarchitectures (XScale; small icache; small icache + small dcache).

use portopt_bench::BinArgs;
use portopt_core::generate_with_uarchs;
use portopt_experiments::figures::fig1;
use portopt_mibench::{by_name, Workload};
use portopt_uarch::MicroArch;

fn main() {
    let args = BinArgs::parse();
    let names = ["rijndael_e", "untoast", "madplay"];
    let pairs: Vec<_> = names
        .iter()
        .map(|n| {
            let p = by_name(n, Workload::default()).unwrap();
            (p.name.to_string(), p.module)
        })
        .collect();
    let mut small_i = MicroArch::xscale();
    small_i.il1_size = 4096;
    let mut small_id = small_i;
    small_id.dl1_size = 4096;
    let uarchs = [MicroArch::xscale(), small_i, small_id];
    let labels = [
        "A: XScale",
        "B: small insn cache",
        "C: small insn+data cache",
    ];

    // Price the usual setting sample directly on the three *named*
    // configurations (same settings as the sampled-space dataset for this
    // seed, but each binary is compiled and profiled exactly once).
    let (ds, report) = generate_with_uarchs(&pairs, &uarchs, &args.gen_options());
    args.write_report(&report);

    let f = fig1(&ds, &[0, 1, 2], &[0, 1, 2], &labels.map(String::from));
    println!("{f}");
    for (p, name) in names.iter().enumerate() {
        for u in 0..3 {
            println!(
                "  best speedup {name} on {}: {:.2}x",
                labels[u],
                ds.best_speedup(p, u)
            );
        }
    }
    BinArgs::finish_trace();
}
