//! Figure 4: distribution of maximum available speedup per program.
use portopt_bench::BinArgs;
use portopt_experiments::figures::fig4;

fn main() {
    let args = BinArgs::parse();
    let ds = args.dataset();
    println!("{}", fig4(&ds));
    BinArgs::finish_trace();
}
