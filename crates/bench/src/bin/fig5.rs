//! Figure 5: best vs. predicted speedup over the joint space.
use portopt_bench::BinArgs;
use portopt_experiments::figures::fig5;

fn main() {
    let args = BinArgs::parse();
    let (ds, loo, _) = args.dataset_and_loo();
    println!("{}", fig5(&ds, &loo));
    BinArgs::finish_trace();
}
