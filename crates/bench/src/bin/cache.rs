//! Offline maintenance for the on-disk profile cache: inspect its size,
//! evict it down to a byte budget (LRU by mtime), and sweep stale temp
//! droppings — without running a sweep.
//!
//! ```text
//! cargo run --release -p portopt-bench --bin cache -- stats target/pcache
//! cargo run --release -p portopt-bench --bin cache -- gc target/pcache --max-bytes 50000000
//! ```
//!
//! Offline GC protects nothing (no sweep is running, so no entry is
//! "current"); `sweep --cache-max-bytes` is the online variant that never
//! evicts entries the running sweep touched. See `docs/SWEEP.md`.

use portopt_core::open_profile_cache;
use portopt_exec::DiskCache;

fn usage() -> ! {
    eprintln!(
        "usage:\n  cache stats DIR\n  cache gc DIR --max-bytes N\n\
         \nstats  print entry count and total bytes\n\
         gc     evict oldest-first (by mtime) until the cache is <= N bytes"
    );
    std::process::exit(2);
}

fn open(dir: &str) -> DiskCache {
    open_profile_cache(dir).unwrap_or_else(|e| {
        portopt_trace::error!("bench.cache", "cannot open profile cache {dir}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") => {
            let dir = args.get(1).unwrap_or_else(|| usage());
            let cache = open(dir);
            match (cache.entries(), cache.total_bytes()) {
                (Ok(entries), Ok(bytes)) => {
                    println!("{dir}: {} entries, {bytes} bytes", entries.len());
                }
                (Err(e), _) | (_, Err(e)) => {
                    portopt_trace::error!("bench.cache", "cannot scan {dir}: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("gc") => {
            let dir = args.get(1).unwrap_or_else(|| usage());
            let max_bytes = match args.get(2).map(String::as_str) {
                Some("--max-bytes") => args
                    .get(3)
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-bytes expects a byte count, got {:?}", args.get(3));
                        std::process::exit(2);
                    }),
                _ => usage(),
            };
            let cache = open(dir);
            match cache.gc(max_bytes) {
                Ok(r) => {
                    println!(
                        "{dir}: examined {} entries ({} bytes), evicted {} ({} bytes), \
                         kept {} ({} bytes), removed {} stale tmp files",
                        r.examined,
                        r.before_bytes,
                        r.evicted,
                        r.evicted_bytes,
                        r.kept,
                        r.kept_bytes,
                        r.tmp_removed,
                    );
                    if !r.met_budget(max_bytes) {
                        portopt_trace::warn!(
                            "bench.cache",
                            "still over budget ({} > {max_bytes})",
                            r.kept_bytes
                        );
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    portopt_trace::error!("bench.cache", "gc failed: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => usage(),
    }
}
