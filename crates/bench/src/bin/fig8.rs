//! Figure 8: Hinton diagram — MI(optimisation ; speedup) per program.
use portopt_bench::BinArgs;
use portopt_experiments::figures::fig8;

fn main() {
    let args = BinArgs::parse();
    let ds = args.dataset();
    println!("Figure 8 (rows: optimisations, cols: programs)");
    println!("{}", fig8(&ds));
    BinArgs::finish_trace();
}
