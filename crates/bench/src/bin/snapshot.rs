//! Trains a `PortableCompiler` and writes a versioned model snapshot —
//! the offline half of the serving path. Serving then never regenerates
//! the dataset: `serve --snapshot <file>` answers predictions from this
//! artifact alone.
//!
//! ```text
//! # train at smoke scale (cached dataset) and write target/portopt-model-smoke.snap
//! cargo run --release -p portopt-bench --bin snapshot -- --scale smoke
//!
//! # train another model kind from the zoo on the same dataset
//! cargo run --release -p portopt-bench --bin snapshot -- --scale smoke --model linear
//!
//! # train from pre-swept dataset shards (e.g. one per rig) instead
//! cargo run --release -p portopt-bench --bin snapshot -- \
//!     --shard rig0.json --shard rig1.json --out model.snap
//! ```

use portopt_bench::BinArgs;
use portopt_core::{Dataset, TrainOptions};
use portopt_serve::Snapshot;

fn load_shard(path: &str) -> Dataset {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        portopt_trace::error!("bench.snapshot", "cannot read shard {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_slice(&bytes).unwrap_or_else(|e| {
        portopt_trace::error!("bench.snapshot", "shard {path} is not a dataset: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = BinArgs::parse();
    // Fail fast: a bad output path must cost seconds, not a regeneration
    // sweep plus a training run.
    for path in std::iter::once(args.snapshot_path()).chain(args.dataset_out.iter().cloned()) {
        if let Err(e) = BinArgs::ensure_writable(&path) {
            portopt_trace::error!("bench.snapshot", "refusing to train: {e}");
            std::process::exit(2);
        }
    }
    let ds = if args.shards.is_empty() {
        args.dataset()
    } else {
        let shards: Vec<Dataset> = args.shards.iter().map(|p| load_shard(p)).collect();
        Dataset::merge(shards).unwrap_or_else(|e| {
            portopt_trace::error!("bench.snapshot", "cannot merge shards: {e}");
            std::process::exit(2);
        })
    };
    // `--dataset-out`: persist the exact (merged) dataset this snapshot
    // trains on — the artifact the sharded-sweep CI job diffs against an
    // unsharded sweep's output.
    if let Some(path) = &args.dataset_out {
        BinArgs::write_dataset(path, &ds);
    }
    let train_span = portopt_trace::span(
        "bench.snapshot",
        "train",
        &[("programs", (ds.n_programs() as u64).into())],
    );
    let snap =
        Snapshot::try_train_kind(&ds, args.model, &TrainOptions::default()).unwrap_or_else(|e| {
            portopt_trace::error!("bench.snapshot", "cannot train on this dataset: {e}");
            std::process::exit(2);
        });
    train_span.close_with(&[("pairs", (snap.compiler.model().len() as u64).into())]);
    let path = args.snapshot_path();
    if let Err(e) = snap.save(&path) {
        portopt_trace::error!("bench.snapshot", "cannot write snapshot {path}: {e}");
        std::process::exit(2);
    }
    let m = &snap.meta;
    println!(
        "wrote {path}: format v{}, {} model, {} training pairs ({} programs x {} uarchs, \
         {} settings each), {} features, {}-dim pass space, k={}, beta={}",
        m.format_version,
        m.model_kind,
        snap.compiler.model().len(),
        m.programs,
        m.uarchs,
        m.settings,
        m.feature_dim,
        m.pass_space.len(),
        m.k,
        m.beta,
    );
    BinArgs::finish_trace();
}
