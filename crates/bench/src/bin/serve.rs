//! Serves predictions from a model snapshot — the online half of the
//! serving path. Loads the artifact written by the `snapshot` bin (no
//! dataset regeneration, no retraining) and answers JSON-lines requests,
//! batched onto the executor. The wire protocol is specified in
//! `docs/SERVING.md`.
//!
//! ```text
//! # stdin/stdout, for piping and tests
//! echo '{"features": [...], "uarch": "xscale"}' \
//!   | cargo run --release -p portopt-bench --bin serve -- \
//!       --snapshot target/portopt-model-smoke.snap --stdio
//!
//! # concurrent TCP socket: bounded connections, cross-connection
//! # batching window, hot snapshot reload on file change, bounded
//! # admission with per-client backpressure, live metrics endpoint
//! cargo run --release -p portopt-bench --bin serve -- \
//!     --snapshot target/portopt-model-smoke.snap --port 7209 \
//!     --max-conns 128 --batch-window-ms 5 --watch-snapshot \
//!     --queue-cap 4096 --per-conn-quota 256 --metrics-port 9209
//! ```
//!
//! Shuts down on stdin EOF (stdio mode) or a `{"shutdown": true}` request
//! (either mode), then reports latency/throughput counters on stderr. A
//! `{"cmd": "reload"}` request (or `--watch-snapshot`) hot-swaps the
//! snapshot without dropping in-flight requests; a `{"cmd": "stats"}`
//! request answers with a one-line JSON metrics snapshot (live p50/p99
//! latency, queue depth, refusal counters).

use portopt_bench::BinArgs;
use portopt_serve::{
    PredictionService, ServeOptions, ServiceStats, Snapshot, WatchEvent, DEFAULT_WATCH_INTERVAL_MS,
};
use std::time::Duration;

fn main() {
    let args = BinArgs::parse();
    let path = args.snapshot.clone().unwrap_or_else(|| {
        portopt_trace::error!(
            "bench.serve",
            "serve needs --snapshot <file> (write one with the `snapshot` bin)"
        );
        std::process::exit(2);
    });
    // `--expect-model` refuses a wrong-kind artifact off its header, before
    // the payload is decoded — the guard for deployments that pin a kind.
    let snap = match args.expect_model {
        Some(kind) => Snapshot::load_expecting(&path, kind),
        None => Snapshot::load(&path),
    }
    .unwrap_or_else(|e| {
        portopt_trace::error!("bench.serve", "cannot serve {path}: {e}");
        std::process::exit(2);
    });
    portopt_trace::info!(
        "bench.serve",
        "serving {path}: {} model, {} training pairs, format v{}",
        snap.meta.model_kind,
        snap.compiler.model().len(),
        snap.meta.format_version
    );
    let service = PredictionService::new(snap, args.threads).with_reload_path(&path);
    let stats = if args.stdio {
        let mut stats = ServiceStats::default();
        // Stdio has no admin channel worth blocking on, so the watcher (if
        // requested) runs detached and lives as long as the process.
        if args.watch_snapshot {
            let handle = service.reload_handle();
            let watch_path = path.clone();
            std::thread::spawn(move || {
                let run_forever = Box::leak(Box::new(std::sync::atomic::AtomicBool::new(false)));
                handle.watch(
                    &watch_path,
                    Duration::from_millis(DEFAULT_WATCH_INTERVAL_MS),
                    run_forever,
                    WatchEvent::log_to_stderr,
                );
            });
        }
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = service.run_lines(stdin.lock(), stdout.lock(), args.batch, &mut stats) {
            portopt_trace::error!("bench.serve", "i/o error: {e}");
            std::process::exit(1);
        }
        stats
    } else {
        let addr = format!("127.0.0.1:{}", args.port);
        let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
            portopt_trace::error!("bench.serve", "cannot bind {addr}: {e}");
            std::process::exit(2);
        });
        let opts = ServeOptions {
            batch: args.batch,
            window: Duration::from_millis(args.batch_window_ms),
            max_conns: args.max_conns,
            queue_cap: args.queue_cap,
            per_conn_quota: args.per_conn_quota,
            metrics_port: args.metrics_port,
            watch_interval: args
                .watch_snapshot
                .then(|| Duration::from_millis(DEFAULT_WATCH_INTERVAL_MS)),
        };
        portopt_trace::info!(
            "bench.serve",
            "listening on {addr}: up to {} connections, batch {} / window {} ms{}{}{}{} \
             (stop with a {{\"shutdown\": true}} request)",
            opts.max_conns,
            opts.batch,
            args.batch_window_ms,
            match args.queue_cap {
                Some(cap) => format!(", queue cap {cap}"),
                None => String::new(),
            },
            match args.per_conn_quota {
                Some(q) => format!(", per-conn quota {q}"),
                None => String::new(),
            },
            match args.metrics_port {
                Some(p) => format!(", metrics on 127.0.0.1:{p}"),
                None => String::new(),
            },
            if args.watch_snapshot {
                ", watching the snapshot file"
            } else {
                ""
            },
        );
        match service.run_concurrent(listener, &opts) {
            Ok(stats) => stats,
            Err(e) => {
                portopt_trace::error!("bench.serve", "accept error: {e}");
                std::process::exit(1);
            }
        }
    };
    portopt_trace::info!("bench.serve", "{}", stats.report());
    BinArgs::finish_trace();
}
