//! Serves predictions from a model snapshot — the online half of the
//! serving path. Loads the artifact written by the `snapshot` bin (no
//! dataset regeneration, no retraining) and answers JSON-lines requests,
//! batched onto the executor.
//!
//! ```text
//! # stdin/stdout, for piping and tests
//! echo '{"features": [...], "uarch": "xscale"}' \
//!   | cargo run --release -p portopt-bench --bin serve -- \
//!       --snapshot target/portopt-model-smoke.snap --stdio
//!
//! # TCP socket
//! cargo run --release -p portopt-bench --bin serve -- \
//!     --snapshot target/portopt-model-smoke.snap --port 7209
//! ```
//!
//! Shuts down on stdin EOF (stdio mode) or a `{"shutdown": true}` request
//! (either mode), then reports latency/throughput counters on stderr.

use portopt_bench::BinArgs;
use portopt_serve::{PredictionService, ServiceStats, Snapshot};

fn main() {
    let args = BinArgs::parse();
    let path = args.snapshot.clone().unwrap_or_else(|| {
        eprintln!("serve needs --snapshot <file> (write one with the `snapshot` bin)");
        std::process::exit(2);
    });
    let snap = Snapshot::load(&path).unwrap_or_else(|e| {
        eprintln!("cannot serve {path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "serving {path}: {} training pairs, format v{}",
        snap.compiler.model().len(),
        snap.meta.format_version
    );
    let service = PredictionService::new(snap, args.threads);
    let stats = if args.stdio {
        let mut stats = ServiceStats::default();
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = service.run_lines(stdin.lock(), stdout.lock(), args.batch, &mut stats) {
            eprintln!("i/o error: {e}");
            std::process::exit(1);
        }
        stats
    } else {
        let addr = format!("127.0.0.1:{}", args.port);
        let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(2);
        });
        eprintln!("listening on {addr} (stop with a {{\"shutdown\": true}} request)");
        match service.run_tcp(listener, args.batch) {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("accept error: {e}");
                std::process::exit(1);
            }
        }
    };
    eprintln!("{}", stats.report());
}
