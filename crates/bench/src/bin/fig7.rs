//! Figure 7: per-uarch model vs. best speedup (mean over programs).
use portopt_bench::BinArgs;
use portopt_experiments::figures::fig7;

fn main() {
    let args = BinArgs::parse();
    let (ds, loo, _) = args.dataset_and_loo();
    println!("{}", fig7(&ds, &loo));
    BinArgs::finish_trace();
}
