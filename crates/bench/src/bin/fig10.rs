//! Figure 10: per-program model vs. best on the §7 extended space
//! (frequency 200–600 MHz, issue width 1–2).
use portopt_bench::BinArgs;
use portopt_experiments::figures::fig6;

fn main() {
    let mut args = BinArgs::parse();
    args.extended = true;
    let (ds, loo, _) = args.dataset_and_loo();
    println!("Figure 10 (extended space: frequency + issue width)");
    println!("{}", fig6(&ds, &loo));
    BinArgs::finish_trace();
}
