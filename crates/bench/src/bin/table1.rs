//! Table 1: the 11 performance counters, with values measured for one
//! program on the XScale baseline.
use portopt_passes::{compile, OptConfig};
use portopt_sim::{evaluate, profile};
use portopt_uarch::{MicroArch, PerfCounters};

fn main() {
    println!("Table 1: performance counters (c) — measured on crc @ XScale");
    let p = portopt_mibench::by_name("crc", Default::default()).unwrap();
    let img = compile(&p.module, &OptConfig::o3());
    let prof = profile(&img, &p.module, &[], Default::default()).unwrap();
    let t = evaluate(&img, &prof, &MicroArch::xscale());
    for (name, v) in PerfCounters::names().iter().zip(t.counters.to_vec()) {
        println!("  {name:<18} {v:.4}");
    }
}
