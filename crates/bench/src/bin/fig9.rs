//! Figure 9: Hinton diagram — MI(feature ; best optimisation).
use portopt_bench::BinArgs;
use portopt_experiments::figures::fig9;

fn main() {
    let args = BinArgs::parse();
    let ds = args.dataset();
    println!("Figure 9 (rows: optimisations, cols: 11 counters + 8 descriptors)");
    println!("{}", fig9(&ds));
    BinArgs::finish_trace();
}
