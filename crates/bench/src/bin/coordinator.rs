//! The sweep coordinator: owns a `ShardSpec` plan, leases shards to
//! `sweep --worker` rigs over TCP (JSON-lines wire protocol, see
//! `docs/SWEEP.md`), retries shards whose workers die, stall past the
//! lease deadline, or refuse, and writes the merged dataset — byte
//! identical to an unsharded sweep, however many rigs crashed along the
//! way.
//!
//! ```text
//! # one coordinator, two expendable rigs
//! cargo run --release -p portopt-bench --bin coordinator -- \
//!     --scale smoke --shard-count 4 --port 7310 --out merged.json &
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --worker 127.0.0.1:7310 --profile-cache target/pcache &
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --worker 127.0.0.1:7310 --profile-cache target/pcache
//! ```
//!
//! Worker loss, lease expiry, retries, refusals and deduped duplicate
//! results are all visible in the exit counters (`coordinator: granted=…
//! workers_lost=…`).

use portopt_bench::coordinator::{run_coordinator, CoordConfig, Coordinator};
use portopt_bench::BinArgs;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn main() {
    let args = BinArgs::parse();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| format!("target/portopt-merged-{}.json", args.scale_name));
    // Fail fast before any worker burns compute on a plan whose result
    // could never be written.
    if let Err(e) = BinArgs::ensure_writable(&out) {
        eprintln!("refusing to coordinate: {e}");
        std::process::exit(2);
    }
    if args.shard_count == 0 {
        eprintln!("--shard-count must be at least 1");
        std::process::exit(2);
    }

    let listener = TcpListener::bind(("127.0.0.1", args.port)).unwrap_or_else(|e| {
        eprintln!("cannot listen on port {}: {e}", args.port);
        std::process::exit(2);
    });
    let addr = listener.local_addr().expect("bound socket has an address");
    let config = CoordConfig {
        shard_count: args.shard_count,
        lease_timeout: Duration::from_millis(args.lease_timeout_ms),
        retry_budget: args.retry_budget,
        backoff_base: Duration::from_millis(portopt_bench::coordinator::DEFAULT_BACKOFF_MS),
    };
    println!(
        "coordinator: {} shards on {addr} (lease timeout {}ms, retry budget {})",
        config.shard_count, args.lease_timeout_ms, args.retry_budget,
    );
    let coord = Arc::new(Mutex::new(Coordinator::new(config)));
    let metrics = coord.lock().expect("coordinator").metrics();
    match run_coordinator(listener, coord) {
        Ok(merged) => {
            println!("{}", metrics.render_line());
            BinArgs::write_dataset(&out, &merged);
        }
        Err(e) => {
            println!("{}", metrics.render_line());
            eprintln!("coordinator failed: {e}");
            std::process::exit(1);
        }
    }
}
