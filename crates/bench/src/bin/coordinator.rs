//! The sweep coordinator: owns a `ShardSpec` plan, leases shards to
//! `sweep --worker` rigs over TCP (JSON-lines wire protocol, see
//! `docs/SWEEP.md`), retries shards whose workers die, stall past the
//! lease deadline, or refuse, and writes the merged dataset — byte
//! identical to an unsharded sweep, however many rigs crashed along the
//! way.
//!
//! ```text
//! # one coordinator, two expendable rigs
//! cargo run --release -p portopt-bench --bin coordinator -- \
//!     --scale smoke --shard-count 4 --port 7310 --out merged.json &
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --worker 127.0.0.1:7310 --profile-cache target/pcache &
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --worker 127.0.0.1:7310 --profile-cache target/pcache
//! ```
//!
//! Worker loss, lease expiry, retries, refusals and deduped duplicate
//! results are all visible in the exit counters (`coordinator: granted=…
//! workers_lost=…`) — and, live while the plan runs, on the plaintext
//! `--metrics-port` endpoint (`portopt_coord_*` lines, same read-to-EOF
//! contract as the `serve` bin's metrics port).

use portopt_bench::coordinator::{run_coordinator, CoordConfig, CoordMetrics, Coordinator};
use portopt_bench::BinArgs;
use std::io::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serves `metrics.to_text()` to every connection until `stop`: accept,
/// write, drop (a scraper reads to EOF) — the same loop shape as the
/// `serve` bin's metrics endpoint.
fn metrics_endpoint_loop(listener: &TcpListener, metrics: &CoordMetrics, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.write_all(metrics.to_text().as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                portopt_trace::warn!("bench.coordinator", "metrics endpoint accept error: {e}")
            }
        }
    }
}

fn main() {
    let args = BinArgs::parse();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| format!("target/portopt-merged-{}.json", args.scale_name));
    // Fail fast before any worker burns compute on a plan whose result
    // could never be written.
    if let Err(e) = BinArgs::ensure_writable(&out) {
        portopt_trace::error!("bench.coordinator", "refusing to coordinate: {e}");
        std::process::exit(2);
    }
    if args.shard_count == 0 {
        portopt_trace::error!("bench.coordinator", "--shard-count must be at least 1");
        std::process::exit(2);
    }

    let listener = TcpListener::bind(("127.0.0.1", args.port)).unwrap_or_else(|e| {
        portopt_trace::error!(
            "bench.coordinator",
            "cannot listen on port {}: {e}",
            args.port
        );
        std::process::exit(2);
    });
    let addr = listener.local_addr().expect("bound socket has an address");
    let config = CoordConfig {
        shard_count: args.shard_count,
        lease_timeout: Duration::from_millis(args.lease_timeout_ms),
        retry_budget: args.retry_budget,
        backoff_base: Duration::from_millis(portopt_bench::coordinator::DEFAULT_BACKOFF_MS),
    };
    println!(
        "coordinator: {} shards on {addr} (lease timeout {}ms, retry budget {})",
        config.shard_count, args.lease_timeout_ms, args.retry_budget,
    );
    let coord = Arc::new(Mutex::new(Coordinator::new(config)));
    let metrics = coord.lock().expect("coordinator").metrics();

    // Live fleet counters while the plan runs: the endpoint thread serves
    // the shared CoordMetrics and is told to stop once the plan resolves.
    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics_thread = args.metrics_port.map(|port| {
        let listener = TcpListener::bind(("127.0.0.1", port)).unwrap_or_else(|e| {
            portopt_trace::error!(
                "bench.coordinator",
                "cannot listen on metrics port {port}: {e}"
            );
            std::process::exit(2);
        });
        listener
            .set_nonblocking(true)
            .expect("nonblocking metrics listener");
        let shown = listener.local_addr().expect("bound socket has an address");
        println!("coordinator: metrics on {shown}");
        let metrics = metrics.clone();
        let stop = metrics_stop.clone();
        std::thread::spawn(move || metrics_endpoint_loop(&listener, &metrics, &stop))
    });

    let outcome = run_coordinator(listener, coord);
    metrics_stop.store(true, Ordering::Release);
    if let Some(h) = metrics_thread {
        let _ = h.join();
    }
    match outcome {
        Ok(merged) => {
            println!("{}", metrics.render_line());
            BinArgs::write_dataset(&out, &merged);
            BinArgs::finish_trace();
        }
        Err(e) => {
            println!("{}", metrics.render_line());
            portopt_trace::error!("bench.coordinator", "coordinator failed: {e}");
            BinArgs::finish_trace();
            std::process::exit(1);
        }
    }
}
