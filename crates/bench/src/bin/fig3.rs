//! Figure 3: the compiler optimisation space.
use portopt_passes::OptSpace;

fn main() {
    let dims = OptSpace::dims();
    println!("Figure 3: {} optimisation dimensions", dims.len());
    for d in &dims {
        println!("  {:<30} {} values", d.name, d.cardinality);
    }
    let (flags, total) = OptSpace::combination_counts();
    println!("flag-only combinations: {flags:.3e} (paper: 6.42e8)");
    println!("total combinations:     {total:.3e} (paper: 1.69e17)");
}
