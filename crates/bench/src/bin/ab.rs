//! A/B-serves two model snapshots over one request stream — the
//! model-zoo comparison harness. Every request is answered by *both*
//! models (same batch boundaries, same snapshot-capture discipline as the
//! single-model `serve` bin), each reply pair is emitted as one JSON
//! line, and the run ends with per-model predicted-vs-O3 cycle stats so
//! "is the linear model good enough to serve?" is one command:
//!
//! ```text
//! # train the pair, then replay a shared stream through both
//! cargo run --release -p portopt-bench --bin snapshot -- --scale smoke
//! cargo run --release -p portopt-bench --bin snapshot -- --scale smoke --model linear
//! cat requests.jsonl | cargo run --release -p portopt-bench --bin ab -- \
//!     --snapshot target/portopt-model-smoke.snap \
//!     --snapshot-b target/portopt-model-smoke-linear.snap --stdio
//!
//! # same, behind one TCP socket (connections handled one at a time)
//! cargo run --release -p portopt-bench --bin ab -- \
//!     --snapshot a.snap --snapshot-b b.snap --port 7210
//! ```
//!
//! Reply lines look like `{"id":4,"agree":true,"a":{...},"b":{...}}`
//! where each side carries its model kind, latency, error (if any) and —
//! for `"apply": true` requests — the predicted-vs-O3 cycle counts. The
//! final stdout line is the summary: per side, requests answered, errors,
//! agreement count, and total O3 vs predicted cycles over every applied
//! request. Shuts down on EOF or a `{"shutdown": true}` line.

use portopt_bench::BinArgs;
use portopt_serve::{
    LineAction, PredictionService, ServeResponse, ServiceStats, Snapshot, LOCAL_CONN,
};
use std::io::{BufRead, Write};

/// Per-side running totals over the shared stream.
#[derive(Default)]
struct SideStats {
    requests: u64,
    errors: u64,
    applied: u64,
    o3_cycles: f64,
    predicted_cycles: f64,
    total_latency_ms: f64,
}

impl SideStats {
    fn absorb(&mut self, r: &ServeResponse) {
        self.requests += 1;
        self.total_latency_ms += r.latency_ms;
        if r.error.is_some() {
            self.errors += 1;
        }
        if let Some(apply) = &r.stats {
            self.applied += 1;
            self.o3_cycles += apply.o3_cycles;
            self.predicted_cycles += apply.predicted_cycles;
        }
    }

    /// Total-cycles speedup over every applied request (0 when none were).
    fn speedup(&self) -> f64 {
        if self.predicted_cycles > 0.0 {
            self.o3_cycles / self.predicted_cycles
        } else {
            0.0
        }
    }

    fn to_json(&self, kind: &str) -> String {
        format!(
            "{{\"kind\":\"{kind}\",\"requests\":{},\"errors\":{},\"applied\":{},\
             \"o3_cycles\":{:.1},\"predicted_cycles\":{:.1},\"speedup\":{:.4},\
             \"mean_latency_ms\":{:.4}}}",
            self.requests,
            self.errors,
            self.applied,
            self.o3_cycles,
            self.predicted_cycles,
            self.speedup(),
            if self.requests > 0 {
                self.total_latency_ms / self.requests as f64
            } else {
                0.0
            },
        )
    }
}

/// One side of a reply-pair line: kind, latency, error, apply cycles.
fn side_json(kind: &str, r: &ServeResponse) -> String {
    let mut s = format!(
        "{{\"kind\":\"{kind}\",\"latency_ms\":{:.4},\"snapshot_version\":{}",
        r.latency_ms, r.snapshot_version
    );
    if let Some(e) = &r.error {
        s.push_str(&format!(",\"error\":{}", serde_json::to_string(e).unwrap()));
    }
    if let Some(apply) = &r.stats {
        s.push_str(&format!(
            ",\"o3_cycles\":{:.1},\"predicted_cycles\":{:.1},\"speedup\":{:.4}",
            apply.o3_cycles, apply.predicted_cycles, apply.speedup
        ));
    }
    s.push('}');
    s
}

/// Drains both services and writes one paired line per request. Both
/// sides saw the same submissions in the same order, so the reply
/// streams zip positionally.
fn flush_pairs(
    a: &PredictionService,
    b: &PredictionService,
    kinds: (&str, &str),
    totals: &mut (SideStats, SideStats),
    out: &mut impl Write,
) -> std::io::Result<()> {
    let mut sa = ServiceStats::default();
    let mut sb = ServiceStats::default();
    let ra = a.drain(&mut sa);
    let rb = b.drain(&mut sb);
    if ra.len() != rb.len() {
        portopt_trace::warn!(
            "bench.ab",
            "reply streams diverged: {} vs {} replies in one batch",
            ra.len(),
            rb.len()
        );
    }
    for (x, y) in ra.iter().zip(rb.iter()) {
        totals.0.absorb(x);
        totals.1.absorb(y);
        let agree = x.error.is_none() && y.error.is_none() && x.choices == y.choices;
        writeln!(
            out,
            "{{\"id\":{},\"agree\":{agree},\"a\":{},\"b\":{}}}",
            x.id,
            side_json(kinds.0, x),
            side_json(kinds.1, y),
        )?;
    }
    out.flush()
}

/// Feeds every line of `reader` to both services, flushing paired replies
/// at each `batch` boundary and at EOF. Returns `true` on a shutdown
/// sentinel (vs. plain EOF).
fn run_ab(
    reader: impl BufRead,
    out: &mut impl Write,
    a: &PredictionService,
    b: &PredictionService,
    kinds: (&str, &str),
    batch: usize,
    totals: &mut (SideStats, SideStats),
) -> std::io::Result<bool> {
    let mut pending = 0usize;
    let mut shutdown = false;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let action_a = a.submit_line_for(LOCAL_CONN, &line);
        let _ = b.submit_line_for(LOCAL_CONN, &line);
        match action_a {
            LineAction::Shutdown => {
                shutdown = true;
                break;
            }
            LineAction::Queued => pending += 1,
            // Admin commands (reload/stats) and refusals are single-model
            // concepts; the A/B harness only replays predictions.
            _ => portopt_trace::warn!("bench.ab", "ignoring non-prediction line: {line}"),
        }
        if pending >= batch {
            flush_pairs(a, b, kinds, totals, out)?;
            pending = 0;
        }
    }
    flush_pairs(a, b, kinds, totals, out)?;
    Ok(shutdown)
}

fn load(path: &str) -> Snapshot {
    Snapshot::load(path).unwrap_or_else(|e| {
        portopt_trace::error!("bench.ab", "cannot serve {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = BinArgs::parse();
    let (path_a, path_b) = match (&args.snapshot, &args.snapshot_b) {
        (Some(a), Some(b)) => (a.clone(), b.clone()),
        _ => {
            portopt_trace::error!(
                "bench.ab",
                "ab needs --snapshot <file> and --snapshot-b <file> \
                 (write them with the `snapshot` bin)"
            );
            std::process::exit(2);
        }
    };
    let snap_a = load(&path_a);
    let snap_b = load(&path_b);
    let kind_a = snap_a.meta.model_kind.as_str();
    let kind_b = snap_b.meta.model_kind.as_str();
    portopt_trace::info!(
        "bench.ab",
        "A/B: {path_a} ({kind_a}, {} pairs) vs {path_b} ({kind_b}, {} pairs)",
        snap_a.compiler.model().len(),
        snap_b.compiler.model().len()
    );
    let service_a = PredictionService::new(snap_a, args.threads);
    let service_b = PredictionService::new(snap_b, args.threads);
    let mut totals = (SideStats::default(), SideStats::default());
    let kinds = (kind_a, kind_b);

    if args.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        if let Err(e) = run_ab(
            stdin.lock(),
            &mut out,
            &service_a,
            &service_b,
            kinds,
            args.batch,
            &mut totals,
        ) {
            portopt_trace::error!("bench.ab", "i/o error: {e}");
            std::process::exit(1);
        }
    } else {
        let addr = format!("127.0.0.1:{}", args.port);
        let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
            portopt_trace::error!("bench.ab", "cannot bind {addr}: {e}");
            std::process::exit(2);
        });
        portopt_trace::info!(
            "bench.ab",
            "listening on {addr}: connections handled one at a time, paired replies \
             (stop with a {{\"shutdown\": true}} request)"
        );
        loop {
            let (stream, peer) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    portopt_trace::warn!("bench.ab", "accept error: {e}");
                    continue;
                }
            };
            portopt_trace::debug!("bench.ab", "connection from {peer}");
            let reader = std::io::BufReader::new(stream.try_clone().unwrap_or_else(|e| {
                portopt_trace::error!("bench.ab", "cannot clone socket: {e}");
                std::process::exit(1);
            }));
            let mut out = stream;
            match run_ab(
                reader,
                &mut out,
                &service_a,
                &service_b,
                kinds,
                args.batch,
                &mut totals,
            ) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => portopt_trace::warn!("bench.ab", "connection error: {e}"),
            }
        }
    }

    // The summary is the last stdout line either way, so a piped consumer
    // can take `tail -n 1`.
    println!(
        "{{\"cmd\":\"ab-summary\",\"a\":{},\"b\":{}}}",
        totals.0.to_json(kind_a),
        totals.1.to_json(kind_b),
    );
    portopt_trace::info!(
        "bench.ab",
        "A ({kind_a}): {} requests, {} errors, speedup {:.4}; \
         B ({kind_b}): {} requests, {} errors, speedup {:.4}",
        totals.0.requests,
        totals.0.errors,
        totals.0.speedup(),
        totals.1.requests,
        totals.1.errors,
        totals.1.speedup(),
    );
    BinArgs::finish_trace();
}
