//! The multi-rig sweep driver: sweeps this rig's shard of the
//! `(program, setting)` training grid and writes a `Dataset` shard file
//! that `snapshot --shard` merges for training.
//!
//! ```text
//! # rig 0 and rig 1 each sweep half the programs, sharing nothing but
//! # the seed; --profile-cache makes re-runs reuse profiling on disk
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --shard-index 0 --shard-count 2 \
//!     --profile-cache target/pcache --out rig0.json
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --shard-index 1 --shard-count 2 \
//!     --profile-cache target/pcache --out rig1.json
//!
//! # then merge-train on any one machine
//! cargo run --release -p portopt-bench --bin snapshot -- \
//!     --shard rig0.json --shard rig1.json --out model.snap
//! ```
//!
//! Without shard flags (`--shard-count 1`, the default) this is a plain
//! whole-suite sweep to an explicit dataset file. Sharding is contiguous
//! and deterministic ([`portopt_core::shard::ShardSpec`]), so merging the
//! shards in index order is byte-identical to the unsharded sweep — CI
//! asserts exactly that.
//!
//! **Crash safety**: every completed `(program, setting)` pair is
//! checkpointed to `<out>.journal` as it finishes, and a rerun with the
//! same flags resumes from the journal instead of re-pricing (disable
//! with `--no-checkpoint`; see `docs/SWEEP.md`). The journal is retired
//! once the shard file is (atomically) published.
//!
//! **Fleet mode**: `--worker HOST:PORT` takes shard leases from a
//! `coordinator` bin instead of sweeping a fixed `--shard-index`, so a
//! pool of rigs drains the plan and a dead rig's shard is retried
//! elsewhere.
//!
//! **Disk pressure**: `--cache-max-bytes N` evicts the profile cache
//! LRU-by-mtime down to `N` bytes after the sweep, never touching entries
//! this run wrote or read (offline alternative: the `cache` bin).

use portopt_bench::{coordinator, BinArgs};
use portopt_core::{
    generate_with_checkpoint, open_profile_cache, open_sweep_journal, CheckpointJournal, Dataset,
    GenOptions, ShardSpec, SweepReport,
};
use portopt_exec::DiskCache;
use portopt_experiments::suite_modules;
use portopt_ir::Module;

fn open_cache(args: &BinArgs) -> Option<DiskCache> {
    args.profile_cache.as_ref().map(|dir| {
        open_profile_cache(dir).unwrap_or_else(|e| {
            portopt_trace::error!("bench.sweep", "cannot open profile cache {dir}: {e}");
            std::process::exit(2);
        })
    })
}

fn print_cache_stats(cache: &DiskCache) {
    let s = cache.stats();
    println!(
        "profile cache: {} hits, {} misses, {} rejected ({})",
        s.hits,
        s.misses,
        s.rejected,
        cache.dir().display(),
    );
}

/// Evicts the profile cache down to `max_bytes` (entries touched by this
/// run are protected) and reports what happened.
fn gc_cache(cache: &DiskCache, max_bytes: u64) {
    match cache.gc(max_bytes) {
        Ok(r) => {
            println!(
                "cache gc: evicted {} entries ({} bytes), kept {} ({} bytes, \
                 {} protected), budget {max_bytes} bytes {}",
                r.evicted,
                r.evicted_bytes,
                r.kept,
                r.kept_bytes,
                r.protected,
                if r.met_budget(max_bytes) {
                    "met"
                } else {
                    "NOT met (current-run entries exceed it)"
                },
            );
        }
        Err(e) => portopt_trace::warn!("bench.sweep", "cache gc failed: {e}"),
    }
}

/// Opens the checkpoint journal for one shard sweep (unless disabled) and
/// reports what it resumed — the log line the CI crash-resume job greps.
fn open_journal(
    path: &str,
    programs: &[(String, Module)],
    opts: &GenOptions,
    disabled: bool,
) -> Option<CheckpointJournal> {
    if disabled {
        return None;
    }
    let journal = open_sweep_journal(path, programs, opts).unwrap_or_else(|e| {
        portopt_trace::error!("bench.sweep", "cannot open checkpoint journal {path}: {e}");
        std::process::exit(2);
    });
    println!(
        "checkpoint journal: resumed {} completed pairs, {} baselines{} ({path})",
        journal.resumed_pairs(),
        journal.resumed_baselines(),
        if journal.healed_bytes() > 0 {
            format!(", healed {} torn bytes", journal.healed_bytes())
        } else {
            String::new()
        },
    );
    Some(journal)
}

/// Sweeps one shard with checkpointing and returns the dataset, retiring
/// the journal only after `publish` has safely landed the result.
fn sweep_shard(
    args: &BinArgs,
    spec: &ShardSpec,
    pairs: &[(String, Module)],
    cache: Option<&DiskCache>,
    journal_path: &str,
    publish: impl FnOnce(&Dataset, &SweepReport),
) -> Dataset {
    let mine = spec.slice(pairs);
    let sp = portopt_trace::span(
        "bench.sweep",
        "sweep_shard",
        &[
            ("shard_index", (spec.index() as u64).into()),
            ("shard_count", (spec.count() as u64).into()),
            ("programs", (mine.len() as u64).into()),
        ],
    );
    let opts = args.gen_options();
    let journal = open_journal(journal_path, mine, &opts, args.no_checkpoint);
    let (ds, report) = generate_with_checkpoint(mine, &opts, cache, journal.as_ref());
    sp.close_with(&[("wall_secs", report.wall_secs.into())]);
    publish(&ds, &report);
    if let Some(j) = journal {
        if let Err(e) = j.retire() {
            portopt_trace::warn!(
                "bench.sweep",
                "could not retire checkpoint journal {journal_path}: {e}"
            );
        }
    }
    ds
}

/// Fleet mode: drain shard leases from the coordinator until the plan is
/// finished. Each lease is swept with its own checkpoint journal, so even
/// a worker killed mid-lease resumes its own partial work when restarted.
fn run_as_worker(args: &BinArgs, addr: &str) -> ! {
    let (pairs, _) = suite_modules(2009);
    let name = format!(
        "worker-{}-{}",
        std::process::id(),
        std::env::var("HOSTNAME").unwrap_or_else(|_| "rig".into())
    );
    println!("sweep worker {name}: taking leases from {addr}");
    let cache = open_cache(args);
    let outcome = coordinator::run_worker(addr, &name, |index, count| {
        let spec = ShardSpec::new(index, count).map_err(|e| e.to_string())?;
        let journal_path = format!(
            "target/portopt-worker-{}{}-{index}of{count}.journal",
            args.scale_name,
            if args.extended { "-ext" } else { "" },
        );
        if let Err(e) = BinArgs::ensure_writable(&journal_path) {
            // Refuse rather than die: the coordinator re-leases the shard
            // to a rig whose disk works.
            return Err(e);
        }
        println!("worker {name}: sweeping shard {index}/{count}");
        Ok(sweep_shard(
            args,
            &spec,
            &pairs,
            cache.as_ref(),
            &journal_path,
            |_, report| {
                portopt_trace::info!(
                    "bench.sweep",
                    { wall_secs = report.wall_secs },
                    "worker {name}: shard {index}/{count} done in {:.2}s",
                    report.wall_secs
                );
            },
        ))
    });
    if let Some(c) = &cache {
        print_cache_stats(c);
        if let Some(max) = args.cache_max_bytes {
            gc_cache(c, max);
        }
    }
    match outcome {
        Ok(o) => {
            println!(
                "worker {name}: plan finished ({} shards swept, {} refused)",
                o.shards_swept, o.refused
            );
            BinArgs::finish_trace();
            std::process::exit(0);
        }
        Err(e) => {
            portopt_trace::error!("bench.sweep", "worker {name}: {e}");
            BinArgs::finish_trace();
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = BinArgs::parse();
    if let Some(addr) = args.worker.clone() {
        run_as_worker(&args, &addr);
    }

    let spec = ShardSpec::new(args.shard_index, args.shard_count).unwrap_or_else(|e| {
        portopt_trace::error!("bench.sweep", "bad shard spec: {e}");
        std::process::exit(2);
    });
    // Fail fast: a bad --out must cost seconds, not a full sweep. The
    // journal lands next to the shard file, so one probe covers both.
    let out = args.shard_path();
    if let Err(e) = BinArgs::ensure_writable(&out) {
        portopt_trace::error!("bench.sweep", "refusing to sweep: {e}");
        std::process::exit(2);
    }

    let (pairs, _) = suite_modules(2009);
    let range = spec.range(pairs.len());
    println!(
        "sweep shard {}/{}: programs [{}..{}) of {} ({} uarchs x {} settings, scale {})",
        spec.index(),
        spec.count(),
        range.start,
        range.end,
        pairs.len(),
        args.scale.n_uarch,
        args.scale.n_opts,
        args.scale_name,
    );

    let cache = open_cache(&args);
    let journal_path = format!("{out}.journal");
    sweep_shard(
        &args,
        &spec,
        &pairs,
        cache.as_ref(),
        &journal_path,
        |ds, report| {
            args.write_report(report);
            if let Some(c) = &cache {
                print_cache_stats(c);
            }
            BinArgs::write_dataset(&out, ds);
        },
    );
    if let Some(c) = &cache {
        if let Some(max) = args.cache_max_bytes {
            gc_cache(c, max);
        }
    }
    BinArgs::finish_trace();
}
