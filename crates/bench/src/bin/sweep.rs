//! The multi-rig sweep driver: sweeps this rig's shard of the
//! `(program, setting)` training grid and writes a `Dataset` shard file
//! that `snapshot --shard` merges for training.
//!
//! ```text
//! # rig 0 and rig 1 each sweep half the programs, sharing nothing but
//! # the seed; --profile-cache makes re-runs reuse profiling on disk
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --shard-index 0 --shard-count 2 \
//!     --profile-cache target/pcache --out rig0.json
//! cargo run --release -p portopt-bench --bin sweep -- \
//!     --scale smoke --shard-index 1 --shard-count 2 \
//!     --profile-cache target/pcache --out rig1.json
//!
//! # then merge-train on any one machine
//! cargo run --release -p portopt-bench --bin snapshot -- \
//!     --shard rig0.json --shard rig1.json --out model.snap
//! ```
//!
//! Without shard flags (`--shard-count 1`, the default) this is a plain
//! whole-suite sweep to an explicit dataset file. Sharding is contiguous
//! and deterministic ([`portopt_core::shard::ShardSpec`]), so merging the
//! shards in index order is byte-identical to the unsharded sweep — CI
//! asserts exactly that.

use portopt_bench::BinArgs;
use portopt_core::{generate_with_cache, open_profile_cache, ShardSpec};
use portopt_experiments::suite_modules;

fn main() {
    let args = BinArgs::parse();
    let spec = ShardSpec::new(args.shard_index, args.shard_count).unwrap_or_else(|e| {
        eprintln!("bad shard spec: {e}");
        std::process::exit(2);
    });
    let (pairs, _) = suite_modules(2009);
    let range = spec.range(pairs.len());
    let mine = spec.slice(&pairs);
    println!(
        "sweep shard {}/{}: programs [{}..{}) of {} ({} uarchs x {} settings, scale {})",
        spec.index(),
        spec.count(),
        range.start,
        range.end,
        pairs.len(),
        args.scale.n_uarch,
        args.scale.n_opts,
        args.scale_name,
    );

    let cache = args.profile_cache.as_ref().map(|dir| {
        open_profile_cache(dir).unwrap_or_else(|e| {
            eprintln!("cannot open profile cache {dir}: {e}");
            std::process::exit(2);
        })
    });
    let (ds, report) = generate_with_cache(mine, &args.gen_options(), cache.as_ref());
    args.write_report(&report);
    if let Some(c) = &cache {
        let s = c.stats();
        println!(
            "profile cache: {} hits, {} misses, {} rejected ({})",
            s.hits,
            s.misses,
            s.rejected,
            c.dir().display(),
        );
    }

    BinArgs::write_dataset(&args.shard_path(), &ds);
}
