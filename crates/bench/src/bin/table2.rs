//! Table 2: the microarchitectural parameter space and XScale values.
use portopt_uarch::*;

fn main() {
    println!(
        "Table 2: microarchitectural parameters (total configs: {})",
        MicroArchSpace::base().total_configs()
    );
    let x = MicroArch::xscale();
    println!("  {:<12} {:?}  XScale={}", "IL1 size", SIZES, x.il1_size);
    println!("  {:<12} {:?}  XScale={}", "IL1 assoc", ASSOCS, x.il1_assoc);
    println!("  {:<12} {:?}  XScale={}", "IL1 block", BLOCKS, x.il1_block);
    println!("  {:<12} {:?}  XScale={}", "DL1 size", SIZES, x.dl1_size);
    println!("  {:<12} {:?}  XScale={}", "DL1 assoc", ASSOCS, x.dl1_assoc);
    println!("  {:<12} {:?}  XScale={}", "DL1 block", BLOCKS, x.dl1_block);
    println!(
        "  {:<12} {:?}  XScale={}",
        "BTB entries", BTB_ENTRIES, x.btb_entries
    );
    println!(
        "  {:<12} {:?}  XScale={}",
        "BTB assoc", BTB_ASSOCS, x.btb_assoc
    );
    println!(
        "extended space (§7): freq {:?} MHz, width {:?} -> {} configs",
        FREQS,
        WIDTHS,
        MicroArchSpace::extended().total_configs()
    );
}
