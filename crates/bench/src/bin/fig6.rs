//! Figure 6: per-program model vs. best speedup (mean over uarchs).
use portopt_bench::BinArgs;
use portopt_experiments::figures::fig6;

fn main() {
    let args = BinArgs::parse();
    let (ds, loo, _) = args.dataset_and_loo();
    println!("{}", fig6(&ds, &loo));
    BinArgs::finish_trace();
}
