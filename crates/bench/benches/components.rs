//! Criterion micro-benchmarks for the portopt components: compilation,
//! profiling, the fast timing model, model training/prediction, and the
//! search baselines. (Figure regeneration lives in the `--bin` targets.)

use criterion::{criterion_group, criterion_main, Criterion};
use portopt_core::{
    generate, sweep_program, GenOptions, ModelKind, PortableCompiler, SweepScale, TrainOptions,
};
use portopt_exec::Executor;
use portopt_mibench::{by_name, suite, Workload};
use portopt_passes::{compile, OptConfig};
use portopt_sim::{evaluate, profile, simulate, PreparedEval};
use portopt_uarch::{MicroArch, MicroArchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_compile(c: &mut Criterion) {
    let p = by_name("crc", Workload::default()).unwrap();
    let mut g = c.benchmark_group("compile");
    g.sample_size(20);
    g.bench_function("crc_o3", |b| {
        b.iter(|| compile(&p.module, &OptConfig::o3()))
    });
    g.bench_function("crc_o0", |b| {
        b.iter(|| compile(&p.module, &OptConfig::o0()))
    });
    let big = by_name("rijndael_e", Workload::default()).unwrap();
    g.bench_function("rijndael_e_o3", |b| {
        b.iter(|| compile(&big.module, &OptConfig::o3()))
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let p = by_name("crc", Workload::default()).unwrap();
    let img = compile(&p.module, &OptConfig::o3());
    let prof = profile(&img, &p.module, &[], Default::default()).unwrap();
    let x = MicroArch::xscale();
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("profile_crc", |b| {
        b.iter(|| profile(&img, &p.module, &[], Default::default()).unwrap())
    });
    g.bench_function("fast_timing_model", |b| {
        b.iter(|| evaluate(&img, &prof, &x))
    });
    g.bench_function("fast_timing_model_prepared", |b| {
        let pe = PreparedEval::new(&img, &prof);
        b.iter(|| pe.evaluate(&x))
    });
    g.bench_function("detailed_sim_crc", |b| {
        b.iter(|| simulate(&img, &p.module, &x, &[], Default::default()).unwrap())
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    // A small dataset to train against.
    let progs: Vec<_> = suite(Workload::default()).into_iter().take(4).collect();
    let pairs: Vec<_> = progs
        .iter()
        .map(|p| (p.name.to_string(), p.module.clone()))
        .collect();
    let ds = generate(
        &pairs,
        &GenOptions {
            scale: SweepScale {
                n_uarch: 4,
                n_opts: 24,
            },
            seed: 1,
            extended_space: false,
            threads: 0,
        },
    );
    let mut g = c.benchmark_group("model");
    g.sample_size(20);
    g.bench_function("train", |b| {
        b.iter(|| PortableCompiler::train(&ds, None, None, &TrainOptions::default()))
    });
    let pc = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
    g.bench_function("predict", |b| b.iter(|| pc.predict(&ds.features[0][0])));
    // The same query through the retained naive kernel (per-point Vec
    // walk + full sort) vs the blocked-SoA + partial-select path that
    // `predict` uses — the pair quantifies the hot-path rebuild and
    // guards against the oracle silently becoming the fast path again.
    let x = &ds.features[0][0].values;
    let knn = pc.knn().expect("default training is kNN");
    g.bench_function("predict_mode_soa", |b| b.iter(|| knn.predict_mode(x)));
    g.bench_function("predict_mode_oracle", |b| {
        b.iter(|| knn.predict_mode_oracle(x))
    });
    // The rest of the zoo through the same query, so per-kind serve costs
    // are tracked side by side with the paper's kNN.
    for kind in [ModelKind::Linear, ModelKind::Clustered] {
        let zoo = PortableCompiler::try_train_kind(&ds, None, None, kind, &TrainOptions::default())
            .unwrap();
        g.bench_function(&format!("predict_mode_{kind}"), |b| {
            b.iter(|| zoo.model().predict_mode(x))
        });
    }
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    // The smoke-scale per-program sweep (6 uarchs × 40 settings) through
    // the work-stealing executor — the unit of dataset-generation
    // throughput that `BENCH_*.json` tracks across PRs.
    let p = by_name("crc", Workload::default()).unwrap();
    let scale = SweepScale::smoke();
    let mut rng = StdRng::seed_from_u64(2009);
    let uarchs = MicroArchSpace::base().sample_n(scale.n_uarch, &mut rng);
    // The exact setting sample generate() would draw at this seed, so the
    // tracked number measures the real workload.
    let configs = portopt_core::dataset::sample_configs(scale.n_opts, 2009);
    let exec = Executor::new(0);
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.bench_function("sweep_program_crc_smoke", |b| {
        b.iter(|| sweep_program(&p.module, &uarchs, &configs, &exec))
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    // Search against the pre-priced dataset grid (no recompilation): pure
    // algorithm cost.
    let progs: Vec<_> = suite(Workload::default()).into_iter().take(1).collect();
    let pairs: Vec<_> = progs
        .iter()
        .map(|p| (p.name.to_string(), p.module.clone()))
        .collect();
    let ds = generate(
        &pairs,
        &GenOptions {
            scale: SweepScale {
                n_uarch: 1,
                n_opts: 8,
            },
            seed: 2,
            extended_space: false,
            threads: 0,
        },
    );
    let base = ds.o3_cycles[0][0];
    let synthetic = move |cfg: &OptConfig| -> f64 {
        // Cheap stand-in cost keyed off the config bits, anchored to a real
        // baseline magnitude.
        let c = cfg.to_choices();
        base * (1.0 + c.iter().map(|&v| v as f64).sum::<f64>() / 100.0)
    };
    let mut g = c.benchmark_group("search");
    g.sample_size(20);
    g.bench_function("random_200", |b| {
        b.iter(|| portopt_search::random_search(200, 7, synthetic))
    });
    g.bench_function("genetic_200", |b| {
        b.iter(|| portopt_search::genetic_search(200, 7, synthetic))
    });
    g.bench_function("hill_200", |b| {
        b.iter(|| portopt_search::hill_climb(200, 7, synthetic))
    });
    g.finish();
}

fn bench_serve(c: &mut Criterion) {
    // Batched predictions through the full serving path — JSON parse,
    // queue, executor drain, reply struct — at smoke scale. The
    // `serve_predict` predictions/sec number is tracked in
    // BENCH_sweep.json alongside the sweep trajectory.
    use portopt_serve::{PredictionService, RequestInput, ServeRequest, ServiceStats, Snapshot};

    let progs: Vec<_> = suite(Workload::default()).into_iter().take(4).collect();
    let pairs: Vec<_> = progs
        .iter()
        .map(|p| (p.name.to_string(), p.module.clone()))
        .collect();
    let ds = generate(
        &pairs,
        &GenOptions {
            scale: SweepScale {
                n_uarch: 6,
                n_opts: 40,
            },
            seed: 2009,
            extended_space: false,
            threads: 0,
        },
    );
    let service = PredictionService::new(Snapshot::train(&ds, &TrainOptions::default()), 0);
    let lines: Vec<String> = (0..64)
        .map(|i| {
            let (p, u) = (i % ds.n_programs(), i % ds.n_uarchs());
            let req = ServeRequest {
                id: Some(i as u64),
                input: RequestInput::Features(ds.features[p][u].values.clone()),
                uarch: ds.uarchs[u],
                apply: false,
            };
            serde_json::to_string(&req).unwrap()
        })
        .collect();
    let mut g = c.benchmark_group("serve");
    g.sample_size(20);
    g.bench_function("serve_predict_batch64", |b| {
        b.iter(|| {
            let mut stats = ServiceStats::default();
            for line in &lines {
                service.submit_line(line);
            }
            service.drain(&mut stats)
        })
    });

    // The same 64-request batch answered by the rest of the model zoo —
    // identical harness, only the snapshot's model kind differs, so the
    // per-kind serving cost is directly comparable with the kNN number.
    for kind in [ModelKind::Linear, ModelKind::Clustered] {
        let zoo_service = PredictionService::new(
            Snapshot::try_train_kind(&ds, kind, &TrainOptions::default()).unwrap(),
            0,
        );
        g.bench_function(&format!("serve_predict_batch64_{kind}"), |b| {
            b.iter(|| {
                let mut stats = ServiceStats::default();
                for line in &lines {
                    zoo_service.submit_line(line);
                }
                zoo_service.drain(&mut stats)
            })
        });
    }

    // The same 64 predictions arriving interleaved on two registered
    // connections (the PR 5 concurrent path): classify + conn-tagged
    // queue + registry bookkeeping + dead-connection filter + routed
    // drain. Measured at the same boundary as `serve_predict_batch64`
    // (replies computed and routed, delivery excluded), so the two
    // numbers are directly comparable in BENCH_sweep.json.
    use portopt_serve::ConnectionRegistry;
    let registry: ConnectionRegistry<Vec<u8>> = ConnectionRegistry::new(4);
    let conn_a = registry.register(Vec::new()).expect("capacity 4");
    let conn_b = registry.register(Vec::new()).expect("capacity 4");
    g.bench_function("serve_concurrent_2conn_batch64", |b| {
        b.iter(|| {
            let mut stats = ServiceStats::default();
            for (i, line) in lines.iter().enumerate() {
                let conn = if i % 2 == 0 { conn_a } else { conn_b };
                registry.note_submitted(conn);
                service.submit_line_for(conn, line);
            }
            service.discard_dead(|conn| !registry.live(conn));
            service.drain_routed(&mut stats)
        })
    });

    // Saturation: the same 64 lines thrown at a queue capped well below
    // the burst size. Admission accepts the first 16, refuses the other
    // 48 out-of-band, then one drain empties the queue — so the number
    // measures the refusal fast path (typed error + formatted reply,
    // no batch pipeline) alongside the usual accept/drain cost. Tracked
    // in BENCH_sweep.json as the overload-mode counterpart of
    // `serve_predict_batch64`.
    let saturated = PredictionService::new(Snapshot::train(&ds, &TrainOptions::default()), 0)
        .with_queue_cap(16);
    g.bench_function("serve_saturated_cap16_burst64", |b| {
        b.iter(|| {
            let mut stats = ServiceStats::default();
            let mut refused = 0u32;
            for line in &lines {
                if let portopt_serve::LineAction::Refused { .. } =
                    saturated.classify_and_submit(portopt_serve::LOCAL_CONN, line)
                {
                    refused += 1;
                }
            }
            let replies = saturated.drain(&mut stats);
            assert_eq!(replies.len() + refused as usize, lines.len());
            (replies, refused)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_simulation,
    bench_model,
    bench_sweep,
    bench_search,
    bench_serve
);
criterion_main!(benches);
