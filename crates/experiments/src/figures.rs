//! Generators for every table and figure in the paper's evaluation.
//!
//! Each function consumes the shared [`Dataset`] (plus the leave-one-out
//! result where the figure involves the model) and returns a structured,
//! printable result. The `portopt-bench` binaries wrap these one-to-one.

use crate::loo::LooResult;
use crate::stats::{five_num, mean, FiveNum};
use portopt_core::Dataset;
use portopt_ml::{bin_equal_frequency, normalized_mutual_information};
use portopt_passes::OptSpace;
use portopt_uarch::FeatureVec;
use std::fmt::Write as _;

/// Figure 4: per-program distribution of the maximum speedup available
/// across microarchitectures, plus the §4.4 wrong-passes statistics.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// `(program, five-number summary of best speedup across uarchs)`.
    pub rows: Vec<(String, FiveNum)>,
    /// Mean of per-pair best speedups (paper: 1.23x).
    pub average_best: f64,
    /// Mean speedup of the *worst* setting per pair (paper: ~0.7x).
    pub average_worst: f64,
    /// Worst-case single-pair slowdown (paper: ~0.2x).
    pub worst_case: f64,
}

/// Computes Figure 4.
pub fn fig4(ds: &Dataset) -> Fig4 {
    let mut rows = Vec::new();
    let mut all_best = Vec::new();
    let mut all_worst = Vec::new();
    for p in 0..ds.n_programs() {
        let best: Vec<f64> = (0..ds.n_uarchs()).map(|u| ds.best_speedup(p, u)).collect();
        for u in 0..ds.n_uarchs() {
            let worst = ds.cycles[p][u]
                .iter()
                .copied()
                .filter(|c| c.is_finite())
                .fold(0.0f64, f64::max);
            if worst > 0.0 {
                all_worst.push(ds.o3_cycles[p][u] / worst);
            }
        }
        all_best.extend_from_slice(&best);
        rows.push((ds.programs[p].clone(), five_num(&best)));
    }
    Fig4 {
        rows,
        average_best: mean(&all_best),
        average_worst: mean(&all_worst),
        worst_case: all_worst.iter().copied().fold(f64::INFINITY, f64::min),
    }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 4: distribution of max speedup per program (across uarchs)"
        )?;
        writeln!(
            f,
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "program", "min", "q25", "med", "q75", "max"
        )?;
        for (name, fv) in &self.rows {
            writeln!(
                f,
                "{:<12} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
                name, fv.min, fv.q25, fv.median, fv.q75, fv.max
            )?;
        }
        writeln!(
            f,
            "AVERAGE best speedup: {:.3}x (paper: 1.23x)",
            self.average_best
        )?;
        writeln!(
            f,
            "wrong passes: avg {:.2}x, worst {:.2}x (paper: 0.7x / 0.2x)",
            self.average_worst, self.worst_case
        )
    }
}

/// Figure 5: best vs. predicted speedup surfaces and their correlation.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Program names (axis labels).
    pub programs: Vec<String>,
    /// `best[p][u]`.
    pub best: Vec<Vec<f64>>,
    /// `model[p][u]`.
    pub model: Vec<Vec<f64>>,
    /// Pearson correlation over the joint space (paper: 0.93).
    pub correlation: f64,
}

/// Computes Figure 5 from a finished leave-one-out run.
pub fn fig5(ds: &Dataset, loo: &LooResult) -> Fig5 {
    Fig5 {
        programs: ds.programs.clone(),
        best: loo.best_speedup.clone(),
        model: loo.model_speedup.clone(),
        correlation: loo.correlation(),
    }
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 5: speedup surfaces over (program x uarch)")?;
        for (which, m) in [("(a) best", &self.best), ("(b) our compiler", &self.model)] {
            writeln!(f, "{which}: per-program mean / max across uarchs")?;
            for (p, row) in m.iter().enumerate() {
                let mx = row.iter().copied().fold(0.0f64, f64::max);
                writeln!(
                    f,
                    "  {:<12} mean {:>5.2} max {:>5.2}",
                    self.programs[p],
                    mean(row),
                    mx
                )?;
            }
        }
        writeln!(
            f,
            "correlation(best, model) = {:.3} (paper: 0.93)",
            self.correlation
        )
    }
}

/// Figures 6/10: per-program model vs. best, averaged over uarchs.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(program, model mean, best mean)`.
    pub rows: Vec<(String, f64, f64)>,
    /// Mean model speedup (paper: 1.16x base space, 1.14x extended).
    pub average_model: f64,
    /// Mean best speedup (paper: 1.23x base, 1.24x extended).
    pub average_best: f64,
    /// Fraction of available improvement captured (paper: 67 %).
    pub fraction_of_best: f64,
}

/// Computes Figure 6 (or Figure 10 when fed the extended-space dataset).
pub fn fig6(ds: &Dataset, loo: &LooResult) -> Fig6 {
    let rows: Vec<(String, f64, f64)> = (0..ds.n_programs())
        .map(|p| {
            (
                ds.programs[p].clone(),
                mean(&loo.model_speedup[p]),
                mean(&loo.best_speedup[p]),
            )
        })
        .collect();
    Fig6 {
        rows,
        average_model: loo.mean_model(),
        average_best: loo.mean_best(),
        fraction_of_best: loo.fraction_of_best(),
    }
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 6: per-program speedup over O3 (mean across uarchs)"
        )?;
        writeln!(f, "{:<12} {:>8} {:>8}", "program", "model", "best")?;
        for (name, m, b) in &self.rows {
            writeln!(f, "{:<12} {:>8.3} {:>8.3}", name, m, b)?;
        }
        writeln!(
            f,
            "AVERAGE: model {:.3}x, best {:.3}x, fraction {:.0}% (paper: 1.16x / 1.23x / 67%)",
            self.average_model,
            self.average_best,
            self.fraction_of_best * 100.0
        )
    }
}

/// Figure 7: per-microarchitecture model vs. best, sorted by best.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(uarch index in dataset, model mean, best mean)`, ascending best.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Computes Figure 7.
pub fn fig7(ds: &Dataset, loo: &LooResult) -> Fig7 {
    let nu = ds.n_uarchs();
    let mut rows: Vec<(usize, f64, f64)> = (0..nu)
        .map(|u| {
            let m: Vec<f64> = (0..ds.n_programs())
                .map(|p| loo.model_speedup[p][u])
                .collect();
            let b: Vec<f64> = (0..ds.n_programs())
                .map(|p| loo.best_speedup[p][u])
                .collect();
            (u, mean(&m), mean(&b))
        })
        .collect();
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    Fig7 { rows }
}

impl std::fmt::Display for Fig7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 7: per-uarch speedup over O3 (mean across programs, sorted by best)"
        )?;
        writeln!(f, "{:<6} {:>8} {:>8}", "uarch", "model", "best")?;
        for (u, m, b) in &self.rows {
            writeln!(f, "{:<6} {:>8.3} {:>8.3}", u, m, b)?;
        }
        Ok(())
    }
}

/// A Hinton diagram: row labels × column labels with `[0,1]` magnitudes.
#[derive(Debug, Clone)]
pub struct Hinton {
    /// Row labels.
    pub rows: Vec<String>,
    /// Column labels.
    pub cols: Vec<String>,
    /// `values[row][col]` in `[0, 1]`.
    pub values: Vec<Vec<f64>>,
}

impl std::fmt::Display for Hinton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render magnitudes as glyph sizes, the ASCII take on a Hinton plot.
        let glyph = |v: f64| -> char {
            match (v * 5.0) as usize {
                0 => '.',
                1 => 'o',
                2 => 'O',
                3 => '#',
                _ => '@',
            }
        };
        let mut header = String::new();
        write!(header, "{:<28}", "")?;
        for c in &self.cols {
            write!(header, "{:>2}", &c[..1.min(c.len())])?;
        }
        writeln!(f, "{header}")?;
        for (r, row) in self.values.iter().enumerate() {
            write!(f, "{:<28}", self.rows[r])?;
            for v in row {
                write!(f, " {}", glyph(*v))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "legend: . o O # @  =  0 .. 1 (normalised MI)")
    }
}

/// Figure 8: per program, the normalised mutual information between each
/// optimisation dimension's setting and the achieved speedup.
pub fn fig8(ds: &Dataset) -> Hinton {
    let dims = OptSpace::dims();
    let nbins = 5;
    let mut values = Vec::new();
    for d in 0..dims.len() {
        let mut row = Vec::new();
        for p in 0..ds.n_programs() {
            // Samples: over all (uarch, setting) pairs of this program.
            let mut xs = Vec::new();
            let mut speeds = Vec::new();
            for u in 0..ds.n_uarchs() {
                for (c, cfg) in ds.configs.iter().enumerate() {
                    if !ds.cycles[p][u][c].is_finite() {
                        continue;
                    }
                    xs.push(cfg.to_choices()[d] as usize);
                    speeds.push(ds.speedup(p, u, c));
                }
            }
            let bins = bin_equal_frequency(&speeds, nbins);
            let pairs: Vec<(usize, usize)> = xs.into_iter().zip(bins).collect();
            row.push(normalized_mutual_information(
                &pairs,
                dims[d].cardinality,
                nbins,
            ));
        }
        values.push(row);
    }
    Hinton {
        rows: dims.iter().map(|d| d.name.to_string()).collect(),
        cols: ds.programs.clone(),
        values,
    }
}

/// Figure 9: mutual information between each feature (binned) and the
/// best setting of each optimisation dimension, over all pairs.
pub fn fig9(ds: &Dataset) -> Hinton {
    let dims = OptSpace::dims();
    let nbins = 5;
    // Best setting per pair.
    let mut best_choice: Vec<Vec<Vec<u8>>> = Vec::new();
    for p in 0..ds.n_programs() {
        let mut row = Vec::new();
        for u in 0..ds.n_uarchs() {
            let best_c = ds.good_set(p, u, 1e-9)[0];
            row.push(ds.configs[best_c].to_choices());
        }
        best_choice.push(row);
    }
    let feature_names = FeatureVec::names();
    let nf = feature_names.len();
    let mut values = Vec::new();
    for d in 0..dims.len() {
        let mut row = Vec::new();
        for fi in 0..nf {
            let mut fvals = Vec::new();
            let mut choices = Vec::new();
            for p in 0..ds.n_programs() {
                for u in 0..ds.n_uarchs() {
                    fvals.push(ds.features[p][u].values[fi]);
                    choices.push(best_choice[p][u][d] as usize);
                }
            }
            let bins = bin_equal_frequency(&fvals, nbins);
            let pairs: Vec<(usize, usize)> = bins.into_iter().zip(choices).collect();
            row.push(normalized_mutual_information(
                &pairs,
                nbins,
                dims[d].cardinality,
            ));
        }
        values.push(row);
    }
    Hinton {
        rows: dims.iter().map(|d| d.name.to_string()).collect(),
        cols: feature_names.iter().map(|s| s.to_string()).collect(),
        values,
    }
}

/// Figure 1: best-setting segment diagrams for three programs on three
/// microarchitectures, restricted to the paper's five headline passes.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Program names (columns).
    pub programs: Vec<String>,
    /// Microarchitecture labels (rows).
    pub uarchs: Vec<String>,
    /// `enabled[u][p][k]`: whether pass `k` of [`Fig1::PASSES`] is enabled
    /// in the best setting.
    pub enabled: Vec<Vec<Vec<bool>>>,
}

impl Fig1 {
    /// The five passes of the paper's segment diagrams.
    pub const PASSES: [&'static str; 5] = [
        "freorder_blocks",
        "funroll_loops",
        "finline_functions",
        "fschedule_insns",
        "fgcse",
    ];
}

/// Computes Figure 1 from a dataset restricted to (or containing) the
/// requested programs and microarchitectures (by dataset index).
pub fn fig1(ds: &Dataset, progs: &[usize], uarchs: &[usize], labels: &[String]) -> Fig1 {
    let dims = OptSpace::dims();
    let pass_idx: Vec<usize> = Fig1::PASSES
        .iter()
        .map(|n| dims.iter().position(|d| d.name == *n).expect("known pass"))
        .collect();
    let mut enabled = Vec::new();
    for &u in uarchs {
        let mut per_prog = Vec::new();
        for &p in progs {
            let best_c = ds.good_set(p, u, 1e-9)[0];
            let choices = ds.configs[best_c].to_choices();
            per_prog.push(pass_idx.iter().map(|&k| choices[k] != 0).collect());
        }
        enabled.push(per_prog);
    }
    Fig1 {
        programs: progs.iter().map(|&p| ds.programs[p].clone()).collect(),
        uarchs: labels.to_vec(),
        enabled,
    }
}

impl std::fmt::Display for Fig1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 1: best passes per program/uarch (filled = enable)"
        )?;
        writeln!(f, "passes: {:?}", Fig1::PASSES)?;
        for (u, row) in self.enabled.iter().enumerate() {
            for (p, seg) in row.iter().enumerate() {
                let marks: String = seg.iter().map(|&e| if e { '#' } else { '.' }).collect();
                writeln!(
                    f,
                    "  {:<28} {:<12} [{}]",
                    self.uarchs[u], self.programs[p], marks
                )?;
            }
        }
        Ok(())
    }
}

/// §5.3: iterative-compilation evaluations needed to match the model.
#[derive(Debug, Clone)]
pub struct ItersToMatch {
    /// `(program, mean evaluations to reach the model's cycles)`.
    pub rows: Vec<(String, f64)>,
    /// Grand mean (paper: ≈50).
    pub average: f64,
}

/// Computes the §5.3 comparison: walking the dataset's random settings in
/// order (= random iterative search), how many evaluations until matching
/// the model's predicted performance?
pub fn iters_to_match(ds: &Dataset, loo: &LooResult) -> ItersToMatch {
    let mut rows = Vec::new();
    let mut all = Vec::new();
    for p in 0..ds.n_programs() {
        let mut per_pair = Vec::new();
        for u in 0..ds.n_uarchs() {
            let target = ds.o3_cycles[p][u] / loo.model_speedup[p][u];
            let mut best = f64::INFINITY;
            let mut hit = ds.configs.len();
            for (c, &cy) in ds.cycles[p][u].iter().enumerate() {
                best = best.min(cy);
                if best <= target {
                    hit = c + 1;
                    break;
                }
            }
            per_pair.push(hit as f64);
        }
        let m = mean(&per_pair);
        all.extend(per_pair);
        rows.push((ds.programs[p].clone(), m));
    }
    ItersToMatch {
        rows,
        average: mean(&all),
    }
}

impl std::fmt::Display for ItersToMatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Iterative compilation evaluations to match the model (§5.3)"
        )?;
        for (name, n) in &self.rows {
            writeln!(f, "  {:<12} {:>6.1}", name, n)?;
        }
        writeln!(f, "AVERAGE: {:.1} evaluations (paper: ≈50)", self.average)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_core::{generate, GenOptions, SweepScale};
    use portopt_mibench::{suite, Workload};

    fn small() -> (Dataset, Vec<portopt_ir::Module>) {
        let progs: Vec<_> = suite(Workload::default()).into_iter().take(4).collect();
        let pairs: Vec<(String, portopt_ir::Module)> = progs
            .iter()
            .map(|p| (p.name.to_string(), p.module.clone()))
            .collect();
        let ds = generate(
            &pairs,
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 3,
                    n_opts: 20,
                },
                seed: 42,
                extended_space: false,
                threads: 2,
            },
        );
        let modules = pairs.into_iter().map(|(_, m)| m).collect();
        (ds, modules)
    }

    #[test]
    fn fig4_shapes_and_sanity() {
        let (ds, _) = small();
        let f = fig4(&ds);
        assert_eq!(f.rows.len(), 4);
        assert!(f.average_best >= 1.0);
        assert!(f.average_worst <= 1.0 + 1e-9);
        assert!(f.worst_case <= f.average_worst);
        let s = f.to_string();
        assert!(s.contains("AVERAGE"));
    }

    #[test]
    fn fig8_fig9_are_normalised() {
        let (ds, _) = small();
        for h in [fig8(&ds), fig9(&ds)] {
            for row in &h.values {
                for &v in row {
                    assert!((0.0..=1.0).contains(&v), "NMI out of range: {v}");
                }
            }
            assert_eq!(h.values.len(), OptSpace::n_dims());
            let _ = h.to_string();
        }
    }

    #[test]
    fn fig1_picks_best_settings() {
        let (ds, _) = small();
        let f = fig1(&ds, &[0, 1], &[0, 1], &["A".into(), "B".into()]);
        assert_eq!(f.enabled.len(), 2);
        assert_eq!(f.enabled[0].len(), 2);
        assert_eq!(f.enabled[0][0].len(), 5);
        let _ = f.to_string();
    }

    #[test]
    fn full_figure_pipeline_runs() {
        let (ds, modules) = small();
        let loo = crate::loo::run_loo(&ds, &modules, 2);
        let f5 = fig5(&ds, &loo);
        assert!((-1.0..=1.0).contains(&f5.correlation));
        let f6 = fig6(&ds, &loo);
        assert!(f6.average_best >= 1.0);
        let f7 = fig7(&ds, &loo);
        // Sorted ascending by best.
        for w in f7.rows.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        let it = iters_to_match(&ds, &loo);
        assert!(it.average >= 1.0);
        let _ = (
            f5.to_string(),
            f6.to_string(),
            f7.to_string(),
            it.to_string(),
        );
    }
}
