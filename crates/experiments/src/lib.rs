//! # portopt-experiments
//!
//! The evaluation harness reproducing every table and figure of
//! Dubach et al. (MICRO 2009). See DESIGN.md §5 for the experiment index
//! and EXPERIMENTS.md for paper-vs-measured results.
//!
//! The intended flow:
//!
//! 1. build the suite and a [`portopt_core::Dataset`] at some
//!    [`portopt_core::SweepScale`];
//! 2. run [`loo::run_loo`] for the leave-one-out model evaluation;
//! 3. feed both to the [`figures`] generators.
//!
//! The `portopt-bench` crate wraps these as one binary per figure.

#![warn(missing_docs)]

pub mod figures;
pub mod loo;
pub mod stats;

use portopt_core::{Dataset, GenOptions, SweepReport};
use portopt_ir::Module;
use portopt_mibench::{suite, Workload};

/// Builds the benchmark suite as `(name, module)` pairs plus the module
/// list (for the LOO harness).
pub fn suite_modules(seed: u64) -> (Vec<(String, Module)>, Vec<Module>) {
    let programs = suite(Workload { seed });
    let pairs: Vec<(String, Module)> = programs
        .iter()
        .map(|p| (p.name.to_string(), p.module.clone()))
        .collect();
    let modules = pairs.iter().map(|(_, m)| m.clone()).collect();
    (pairs, modules)
}

/// Generates (or loads from `cache_path`, saving on miss) a dataset for the
/// full suite under the given options. On a fresh generation,
/// `on_generate` receives the sweep's throughput report.
pub fn dataset_cached(
    opts: &GenOptions,
    cache_path: Option<&std::path::Path>,
    on_generate: impl FnOnce(&SweepReport),
) -> Dataset {
    if let Some(path) = cache_path {
        if let Ok(bytes) = std::fs::read(path) {
            if let Ok(ds) = serde_json::from_slice::<Dataset>(&bytes) {
                return ds;
            }
        }
    }
    let (pairs, _) = suite_modules(2009);
    let (ds, report) = portopt_core::generate_with_report(&pairs, opts);
    on_generate(&report);
    if let Some(path) = cache_path {
        if let Ok(bytes) = serde_json::to_vec(&ds) {
            let _ = std::fs::write(path, bytes);
        }
    }
    ds
}
