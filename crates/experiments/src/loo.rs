//! The leave-one-out cross-validation harness of §5.1.1.
//!
//! For every (program, microarchitecture) pair, a model is assembled from
//! all *other* programs on all *other* microarchitectures (normaliser
//! included — no statistic of the test pair leaks into training), the best
//! setting is predicted from the pair's `-O3` counters, and the program is
//! recompiled with the prediction and priced on the test configuration.

use portopt_core::Dataset;
use portopt_exec::Executor;
use portopt_ir::Module;
use portopt_ml::{IidDistribution, DEFAULT_BETA, DEFAULT_K};
use portopt_passes::{compile, OptConfig, OptSpace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Leave-one-out evaluation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LooResult {
    /// `model_speedup[p][u]`: speedup over `-O3` of the predicted setting.
    pub model_speedup: Vec<Vec<f64>>,
    /// `best_speedup[p][u]`: the iterative-search upper bound.
    pub best_speedup: Vec<Vec<f64>>,
    /// `predicted[p][u]`: the predicted setting.
    pub predicted: Vec<Vec<OptConfig>>,
}

impl LooResult {
    /// Mean model speedup across the whole space.
    pub fn mean_model(&self) -> f64 {
        crate::stats::mean(
            &self
                .model_speedup
                .iter()
                .flatten()
                .copied()
                .collect::<Vec<_>>(),
        )
    }

    /// Mean best speedup across the whole space.
    pub fn mean_best(&self) -> f64 {
        crate::stats::mean(
            &self
                .best_speedup
                .iter()
                .flatten()
                .copied()
                .collect::<Vec<_>>(),
        )
    }

    /// Fraction of the available improvement captured by the model — the
    /// paper's "67 % of the maximum speedup" headline.
    pub fn fraction_of_best(&self) -> f64 {
        let m = self.mean_model() - 1.0;
        let b = self.mean_best() - 1.0;
        if b <= 0.0 {
            1.0
        } else {
            (m / b).clamp(-1.0, 1.5)
        }
    }

    /// Pearson correlation between model and best speedups over the joint
    /// space (paper: 0.93).
    pub fn correlation(&self) -> f64 {
        let xs: Vec<f64> = self.model_speedup.iter().flatten().copied().collect();
        let ys: Vec<f64> = self.best_speedup.iter().flatten().copied().collect();
        crate::stats::correlation(&xs, &ys)
    }
}

/// Running sums for the leakage-free per-fold normaliser.
struct FoldNormalizer {
    sum: Vec<f64>,
    sumsq: Vec<f64>,
    count: f64,
}

impl FoldNormalizer {
    fn over(ds: &Dataset) -> Self {
        let d = ds.features[0][0].values.len();
        let mut s = FoldNormalizer {
            sum: vec![0.0; d],
            sumsq: vec![0.0; d],
            count: 0.0,
        };
        for row in &ds.features {
            for f in row {
                for (i, v) in f.values.iter().enumerate() {
                    s.sum[i] += v;
                    s.sumsq[i] += v * v;
                }
                s.count += 1.0;
            }
        }
        s
    }

    /// Mean/std excluding program `p` and configuration `u`.
    fn excluding(&self, ds: &Dataset, p: usize, u: usize) -> (Vec<f64>, Vec<f64>) {
        let d = self.sum.len();
        let mut sum = self.sum.clone();
        let mut sumsq = self.sumsq.clone();
        let mut count = self.count;
        let mut remove = |f: &portopt_uarch::FeatureVec| {
            for (i, v) in f.values.iter().enumerate() {
                sum[i] -= v;
                sumsq[i] -= v * v;
            }
            count -= 1.0;
        };
        for uu in 0..ds.n_uarchs() {
            remove(&ds.features[p][uu]);
        }
        for pp in 0..ds.n_programs() {
            if pp != p {
                remove(&ds.features[pp][u]);
            }
        }
        let mean: Vec<f64> = sum.iter().map(|s| s / count).collect();
        let std: Vec<f64> = (0..d)
            .map(|i| {
                let v = (sumsq[i] / count - mean[i] * mean[i]).max(0.0).sqrt();
                if v < 1e-12 {
                    1.0
                } else {
                    v
                }
            })
            .collect();
        (mean, std)
    }
}

/// Runs the full leave-one-out evaluation.
///
/// `modules` must parallel `ds.programs`. `threads` parallelises the
/// compile+profile work for predicted settings (`0` = all available
/// cores).
pub fn run_loo(ds: &Dataset, modules: &[Module], threads: usize) -> LooResult {
    let np = ds.n_programs();
    let nu = ds.n_uarchs();
    assert_eq!(modules.len(), np, "modules must match dataset programs");
    let dims: Vec<usize> = OptSpace::dims().iter().map(|d| d.cardinality).collect();

    // Pre-fit the per-pair good-set distributions once.
    let dists: Vec<Vec<IidDistribution>> = (0..np)
        .map(|p| {
            (0..nu)
                .map(|u| {
                    let good: Vec<Vec<u8>> = ds
                        .good_set(p, u, portopt_core::GOOD_FRACTION)
                        .into_iter()
                        .map(|c| ds.configs[c].to_choices())
                        .collect();
                    IidDistribution::fit(&dims, &good)
                })
                .collect()
        })
        .collect();

    let norm = FoldNormalizer::over(ds);

    // Predict per test pair with an inline KNN (k nearest over the fold's
    // training points, softmax-weighted mixture, mode decode) — equivalent
    // to portopt_ml::KnnModel but without rebuilding the model 7 000 times.
    let mut predicted: Vec<Vec<OptConfig>> = vec![Vec::with_capacity(nu); np];
    for p in 0..np {
        for u in 0..nu {
            let (mean, std) = norm.excluding(ds, p, u);
            let z = |f: &portopt_uarch::FeatureVec| -> Vec<f64> {
                f.values
                    .iter()
                    .zip(&mean)
                    .zip(&std)
                    .map(|((v, m), s)| (v - m) / s)
                    .collect()
            };
            let xq = z(&ds.features[p][u]);
            let mut near: Vec<(f64, usize, usize)> = Vec::with_capacity((np - 1) * (nu - 1));
            for pp in 0..np {
                if pp == p {
                    continue;
                }
                for uu in 0..nu {
                    if uu == u {
                        continue;
                    }
                    let xt = z(&ds.features[pp][uu]);
                    let d2: f64 = xt.iter().zip(&xq).map(|(a, b)| (a - b) * (a - b)).sum();
                    near.push((d2.sqrt(), pp, uu));
                }
            }
            near.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let k = DEFAULT_K.min(near.len());
            let dmin = near[0].0;
            let parts: Vec<(f64, &IidDistribution)> = near[..k]
                .iter()
                .map(|&(d, pp, uu)| ((-DEFAULT_BETA * (d - dmin)).exp(), &dists[pp][uu]))
                .collect();
            let mode = IidDistribution::mix(&parts).mode();
            predicted[p].push(OptConfig::from_choices(&mode));
        }
    }

    // Price each predicted setting on the work-stealing executor:
    // compile+profile once per distinct (program, setting), evaluate per
    // configuration with the per-profile tables prepared once
    // (`portopt_core::dataset::price_image`, the same kernel dataset
    // generation uses).
    let model_speedup: Vec<Vec<f64>> = Executor::new(threads).map_indexed(np, |p| {
        let module = &modules[p];
        // Two-level cache, as in dataset generation: by setting (a
        // prediction repeated across configurations is compiled once) and
        // by compiled-image fingerprint (distinct predictions that lower
        // to the same binary share one profiling run).
        let mut by_cfg: HashMap<Vec<u8>, Arc<Vec<f64>>> = HashMap::new();
        let mut by_img: HashMap<u64, Arc<Vec<f64>>> = HashMap::new();
        let mut row = vec![0.0; nu];
        for u in 0..nu {
            let cfg = predicted[p][u];
            let key = cfg.to_choices();
            let per_uarch = match by_cfg.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    let img = compile(module, &cfg);
                    let fp = img.fingerprint();
                    let per_uarch = match by_img.get(&fp) {
                        Some(hit) => hit.clone(),
                        None => {
                            let shared = Arc::new(portopt_core::dataset::price_image(
                                &img, module, &ds.uarchs,
                            ));
                            by_img.insert(fp, shared.clone());
                            shared
                        }
                    };
                    by_cfg.insert(key, per_uarch.clone());
                    per_uarch
                }
            };
            row[u] = ds.o3_cycles[p][u] / per_uarch[u];
        }
        row
    });

    let best_speedup: Vec<Vec<f64>> = (0..np)
        .map(|p| (0..nu).map(|u| ds.best_speedup(p, u)).collect())
        .collect();

    LooResult {
        model_speedup,
        best_speedup,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_core::{generate, GenOptions, SweepScale};
    use portopt_mibench::{suite, Workload};

    #[test]
    fn loo_smoke_on_suite_subset() {
        // 6 programs, tiny scale: the whole pipeline must run and produce
        // sane speedups.
        let progs: Vec<_> = suite(Workload::default()).into_iter().take(6).collect();
        let pairs: Vec<(String, Module)> = progs
            .iter()
            .map(|p| (p.name.to_string(), p.module.clone()))
            .collect();
        let ds = generate(
            &pairs,
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 4,
                    n_opts: 24,
                },
                seed: 3,
                extended_space: false,
                threads: 2,
            },
        );
        let modules: Vec<Module> = pairs.iter().map(|(_, m)| m.clone()).collect();
        let r = run_loo(&ds, &modules, 2);
        let mm = r.mean_model();
        let mb = r.mean_best();
        assert!(mb >= 1.0, "best must beat or match O3: {mb}");
        assert!(mm > 0.5 && mm < mb + 0.3, "model mean {mm} vs best {mb}");
        // The matrix shape.
        assert_eq!(r.model_speedup.len(), 6);
        assert_eq!(r.model_speedup[0].len(), 4);
        // Correlation is a well-defined number.
        let c = r.correlation();
        assert!((-1.0..=1.0).contains(&c));
    }
}
