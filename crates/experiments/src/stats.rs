//! Small statistics helpers shared by the figure generators.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Pearson correlation coefficient.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let (mx, my) = (mean(xs), mean(ys));
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx <= 0.0 || dy <= 0.0 {
        return 0.0;
    }
    num / (dx * dy).sqrt()
}

/// Linear-interpolated percentile (`q` in 0..=100).
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pos = (q / 100.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    }
}

/// Five-number summary (min, q25, median, q75, max) — one Figure 4 whisker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// Lower quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the five-number summary.
pub fn five_num(xs: &[f64]) -> FiveNum {
    FiveNum {
        min: percentile(xs, 0.0),
        q25: percentile(xs, 25.0),
        median: percentile(xs, 50.0),
        q75: percentile(xs, 75.0),
        max: percentile(xs, 100.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
    }

    #[test]
    fn correlation_extremes() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&xs, &yneg) + 1.0).abs() < 1e-12);
        let konst = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(correlation(&xs, &konst), 0.0);
    }

    #[test]
    fn five_num_ordering() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let f = five_num(&xs);
        assert!(f.min <= f.q25 && f.q25 <= f.median);
        assert!(f.median <= f.q75 && f.q75 <= f.max);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 9.0);
    }
}
