//! Property-based testing of the compiler: for *any* random program and
//! *any* point of the 39-dimension optimisation space, compilation must
//! preserve semantics exactly (return value and final memory), and the
//! produced image must be structurally sane.

use portopt_ir::interp::{run_module_with, ExecLimits};
use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder, Operand, Pred};
use portopt_passes::{compile, OptConfig, OptSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random but always-terminating program from a seed: nested
/// counted loops, data-dependent branches, array reads/writes, helper
/// calls and mixed arithmetic.
fn random_program(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mb = ModuleBuilder::new("prop");
    let words = 256u32;
    let (_, base) = mb.global_init(
        "buf",
        words,
        (0..words as i64)
            .map(|i| (i * 2654435761) % 1000 - 500)
            .collect(),
    );

    // Optional helper function (calls exercise inlining/regalloc).
    let helper = {
        let mut b = FuncBuilder::new("helper", 2);
        let (x, y) = (b.param(0), b.param(1));
        let ops = [
            |b: &mut FuncBuilder, x, y| b.add(x, y),
            |b: &mut FuncBuilder, x, y| b.mul(x, y),
            |b: &mut FuncBuilder, x, y| b.xor(x, y),
        ];
        let f = ops[rng.gen_range(0..ops.len())](&mut b, x, y);
        let masked = b.and(f, 0xFFFF);
        b.ret(masked);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let p = b.iconst(base as i64);
    let acc = b.iconst(rng.gen_range(-5i64..5));
    let outer = rng.gen_range(3i64..20);
    let inner = rng.gen_range(4i64..40);
    let with_call = rng.gen_bool(0.5);
    let with_branch = rng.gen_bool(0.7);
    let with_store = rng.gen_bool(0.7);
    let stride = rng.gen_range(1i64..9);

    b.counted_loop(0, outer, 1, |b, i| {
        b.counted_loop(0, inner, 1, |b, j| {
            let mix0 = b.mul(j, stride);
            let mix = b.add(mix0, i);
            let idx = b.and(mix, (words - 1) as i64);
            let off = b.shl(idx, 2);
            let addr = b.add(p, off);
            let v = b.load(addr, 0);
            let t = if with_call {
                b.call(helper, &[v.into(), j.into()])
            } else {
                b.xor(v, j)
            };
            if with_branch {
                let c = b.cmp(Pred::Gt, t, 100);
                b.if_else(
                    c,
                    |b| {
                        let u = b.sub(acc, t);
                        b.assign(acc, u);
                    },
                    |b| {
                        let u = b.add(acc, t);
                        b.assign(acc, u);
                    },
                );
            } else {
                let u = b.add(acc, t);
                b.assign(acc, u);
            }
            if with_store {
                let w = b.and(acc, 0xFFFF);
                b.store(w, addr, 0);
            }
        });
    });
    b.ret(acc);
    let id = mb.add(b.finish());
    mb.entry(id);
    let m = mb.finish();
    verify_module(&m).expect("generator produces valid IR");
    m
}

fn random_config(seed: u64) -> OptConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    OptConfig::sample(&mut rng)
}

const LIMITS: ExecLimits = ExecLimits {
    fuel: 10_000_000,
    max_depth: 256,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental compiler property: any config on any program
    /// computes the same result as the reference interpreter.
    #[test]
    fn any_config_preserves_semantics(prog_seed in 0u64..10_000, cfg_seed in 0u64..10_000) {
        let m = random_program(prog_seed);
        let reference = run_module_with(&m, &[], LIMITS).expect("source runs");
        let cfg = random_config(cfg_seed);
        let img = compile(&m, &cfg);
        let mut m2 = m.clone();
        m2.funcs = img.funcs.iter().map(|mf| mf.func.clone()).collect();
        verify_module(&m2).expect("compiled IR verifies");
        let got = run_module_with(&m2, &[], LIMITS).expect("compiled runs");
        prop_assert_eq!(got.ret, reference.ret);
        prop_assert_eq!(got.mem_hash, reference.mem_hash);
    }

    /// Presets are semantics-preserving too, and O3 compiles never panic.
    #[test]
    fn presets_preserve_semantics(prog_seed in 0u64..10_000) {
        let m = random_program(prog_seed);
        let reference = run_module_with(&m, &[], LIMITS).expect("source runs");
        for cfg in [OptConfig::o0(), OptConfig::o1(), OptConfig::o2(), OptConfig::o3()] {
            let img = compile(&m, &cfg);
            let mut m2 = m.clone();
            m2.funcs = img.funcs.iter().map(|mf| mf.func.clone()).collect();
            let got = run_module_with(&m2, &[], LIMITS).expect("compiled runs");
            prop_assert_eq!(got.ret, reference.ret);
        }
    }

    /// Layout invariants: block addresses are disjoint, ascending in layout
    /// order, and padding respects the alignment flags.
    #[test]
    fn layout_is_wellformed(prog_seed in 0u64..10_000, cfg_seed in 0u64..10_000) {
        let m = random_program(prog_seed);
        let cfg = random_config(cfg_seed);
        let img = compile(&m, &cfg);
        for mf in &img.funcs {
            let mut prev_end = None;
            for &bid in &mf.order {
                let l = mf.layout[bid.index()];
                if let Some(pe) = prev_end {
                    prop_assert!(l.addr - l.pad >= pe, "blocks overlap");
                }
                prop_assert_eq!(l.addr % 4, 0);
                prev_end = Some(l.addr + l.bytes);
            }
        }
        prop_assert!(img.code_bytes >= img.total_insts * 4);
    }

    /// Choice-vector round trip over the whole space.
    #[test]
    fn config_roundtrip(cfg_seed in 0u64..1_000_000) {
        let cfg = random_config(cfg_seed);
        let c = cfg.to_choices();
        prop_assert_eq!(c.len(), OptSpace::n_dims());
        prop_assert_eq!(OptConfig::from_choices(&c), cfg);
    }

    /// Profile-cache soundness, half 1: structurally equal images always
    /// share a fingerprint (a recompile of the same program at the same
    /// setting — even in another process or on another rig — hits the
    /// cache entry the first compile wrote).
    #[test]
    fn equal_images_share_a_fingerprint(prog_seed in 0u64..10_000, cfg_seed in 0u64..10_000) {
        let cfg = random_config(cfg_seed);
        let img = compile(&random_program(prog_seed), &cfg);
        // An independent rebuild of the same (program, setting).
        let again = compile(&random_program(prog_seed), &cfg);
        prop_assert_eq!(&img, &again);
        prop_assert_eq!(img.fingerprint(), again.fingerprint());
        // And a deep copy, trivially.
        prop_assert_eq!(img.clone().fingerprint(), img.fingerprint());
    }

    /// Profile-cache soundness, half 2: *any* structural mutation of an
    /// image — embedded IR, layout, schedule tables, globals, metadata —
    /// changes the fingerprint, so the mutant misses rather than silently
    /// reusing the original's profile.
    #[test]
    fn any_structural_mutation_changes_the_fingerprint(
        prog_seed in 0u64..10_000,
        cfg_seed in 0u64..10_000,
        which in 0usize..8,
    ) {
        let cfg = random_config(cfg_seed);
        let img = compile(&random_program(prog_seed), &cfg);
        let mut mutant = img.clone();
        match which {
            // Metadata the simulator keys memory construction on.
            0 => mutant.name.push('x'),
            1 => mutant.code_bytes += 4,
            2 => mutant.total_insts += 1,
            3 => match mutant.globals.first_mut() {
                Some(g) => g.1 += 4,
                None => mutant.globals.push((0x2_0000, 4)),
            },
            // Block placement.
            4 => mutant.funcs[0].layout[0].addr += 4,
            // Static schedule table.
            5 => mutant.funcs[0].sched[0].alu += 1,
            // Function base address.
            6 => mutant.funcs[0].base += 32,
            // The embedded executable IR itself.
            _ => {
                let f = &mut mutant.funcs[0].func;
                f.vreg_count += 1;
            }
        }
        prop_assert!(mutant != img, "mutation {which} must change the image");
        prop_assert!(
            mutant.fingerprint() != img.fingerprint(),
            "mutation {} left the fingerprint unchanged",
            which
        );
    }
}

/// Operand conversion sanity kept out of proptest (cheap exhaustive checks).
#[test]
fn operand_from_impls() {
    assert_eq!(Operand::from(3i64), Operand::Imm(3));
}
