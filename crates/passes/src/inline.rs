//! `-finline-functions` with gcc 4.2's six inlining parameters.
//!
//! Call sites are inlined bottom-up subject to the same budget structure as
//! gcc: a per-callee size test (`max-inline-insns-auto`, offset by
//! `inline-call-cost`), a per-caller growth budget (`large-function-insns`,
//! `large-function-growth`) and a whole-module budget (`large-unit-insns`,
//! `inline-unit-growth`). The paper's crc case study — where only a large
//! growth factor lets the hot pointer-increment be inlined away — is
//! exactly the behaviour these knobs gate.

use crate::config::OptConfig;
use portopt_ir::{BlockId, FuncId, Function, Inst, Module};

/// Runs the inliner over `m`. Returns `true` if any call was inlined.
pub fn inline_functions(m: &mut Module, cfg: &OptConfig) -> bool {
    if !cfg.inline_functions {
        return false;
    }
    let unit_insns_orig: usize = m.inst_count();
    let unit_budget = (cfg.large_unit_insns_value() as usize)
        .max(unit_insns_orig * (100 + cfg.inline_unit_growth_value() as usize) / 100);
    let call_cost = cfg.inline_call_cost_value() as usize;
    let auto_limit = cfg.max_inline_insns_auto_value() as usize;

    let orig_sizes: Vec<usize> = m.funcs.iter().map(Function::inst_count).collect();
    let mut changed = false;

    // Iterate a few rounds so chains (a -> b -> c) flatten.
    for _round in 0..3 {
        let mut any = false;
        for caller_id in 0..m.funcs.len() {
            loop {
                // Find the next inlinable call site in this caller.
                let site = find_site(m, caller_id, call_cost, auto_limit);
                let Some((block, idx, callee_id)) = site else {
                    break;
                };

                // Budgets.
                let caller_size = m.funcs[caller_id].inst_count();
                let callee_size = m.funcs[callee_id.index()].inst_count();
                let caller_budget = (cfg.large_function_insns_value() as usize).max(
                    orig_sizes[caller_id] * (100 + cfg.large_function_growth_value() as usize)
                        / 100,
                );
                if caller_size + callee_size > caller_budget {
                    break;
                }
                if m.inst_count() + callee_size > unit_budget {
                    break;
                }
                inline_one(m, caller_id, block, idx, callee_id);
                changed = true;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    changed
}

/// Finds a call site in `caller` whose callee passes the per-callee test.
fn find_site(
    m: &Module,
    caller: usize,
    call_cost: usize,
    auto_limit: usize,
) -> Option<(BlockId, usize, FuncId)> {
    let f = &m.funcs[caller];
    for (bi, block) in f.iter_blocks() {
        for (k, inst) in block.insts.iter().enumerate() {
            let Inst::Call { func, .. } = inst else {
                continue;
            };
            if func.index() == caller {
                continue; // direct recursion: never inlined
            }
            let callee = &m.funcs[func.index()];
            if callee.cold {
                continue;
            }
            // Callees containing calls are only inlined after their own
            // calls flatten (bottom-up effect across rounds); recursive
            // callees never flatten so this also blocks mutual recursion.
            if callee
                .blocks
                .iter()
                .any(|b| b.insts.iter().any(Inst::is_call))
            {
                continue;
            }
            let size = callee.inst_count();
            if size.saturating_sub(call_cost) <= auto_limit {
                return Some((bi, k, *func));
            }
        }
    }
    None
}

/// Splices `callee` into `caller` at the given call site.
fn inline_one(m: &mut Module, caller_id: usize, block: BlockId, idx: usize, callee_id: FuncId) {
    let callee = m.funcs[callee_id.index()].clone();
    let caller = &mut m.funcs[caller_id];

    let Inst::Call { args, dst, .. } = caller.block(block).insts[idx].clone() else {
        panic!("call site moved");
    };

    // Remap callee registers and blocks into the caller's space.
    let reg_base = caller.vreg_count;
    caller.vreg_count += callee.vreg_count;

    // Continuation: the tail of the call block after the call. Allocated
    // first, so the callee's blocks start at `block_base`.
    let cont = caller.new_block();
    let block_base = caller.blocks.len() as u32;
    let call_block_len = caller.block(block).insts.len();
    let tail: Vec<Inst> = caller
        .block_mut(block)
        .insts
        .drain(idx + 1..call_block_len)
        .collect();
    caller.block_mut(cont).insts = tail;

    // The call itself becomes: copies of args into remapped params, then a
    // branch to the remapped callee entry.
    caller.block_mut(block).insts.truncate(idx);
    for (p, a) in callee.params.iter().zip(&args) {
        let dst = portopt_ir::VReg(p.0 + reg_base);
        caller
            .block_mut(block)
            .insts
            .push(Inst::Copy { dst, src: *a });
    }
    caller.block_mut(block).insts.push(Inst::Br {
        target: BlockId(block_base),
    });

    // Splice callee blocks, rewriting registers, targets, and returns.
    // A `ret v` becomes `dst = v; br cont` (the copy only when the caller
    // uses the result).
    for (bi, cb) in callee.blocks.iter().enumerate() {
        let nb = caller.new_block();
        debug_assert_eq!(nb.0, block_base + bi as u32);
        let mut insts = Vec::with_capacity(cb.insts.len() + 1);
        for inst in &cb.insts {
            let mut inst = inst.clone();
            inst.map_uses(|r| portopt_ir::VReg(r.0 + reg_base));
            inst.map_def(|r| portopt_ir::VReg(r.0 + reg_base));
            inst.map_targets(|t| BlockId(t.0 + block_base));
            if let Inst::Ret { val } = inst {
                if let (Some(d), Some(v)) = (dst, val) {
                    insts.push(Inst::Copy { dst: d, src: v });
                }
                insts.push(Inst::Br { target: cont });
            } else {
                insts.push(inst);
            }
        }
        caller.block_mut(nb).insts = insts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup_module;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, ModuleBuilder, Operand, Pred};

    fn leaf_add_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let leaf = {
            let mut b = FuncBuilder::new("mac", 3);
            let p = b.mul(b.param(0), b.param(1));
            let s = b.add(p, b.param(2));
            b.ret(s);
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        let acc = b.iconst(0);
        b.counted_loop(0, 10, 1, |b, i| {
            let r = b.call(leaf, &[i.into(), i.into(), acc.into()]);
            b.assign(acc, r);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    fn count_calls(m: &Module) -> usize {
        m.funcs[m.entry.index()]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| i.is_call())
            .count()
    }

    #[test]
    fn inlines_small_leaf() {
        let mut m = leaf_add_module();
        let before = run_module(&m, &[]).unwrap();
        assert!(inline_functions(&mut m, &OptConfig::o3()));
        verify_module(&m).unwrap();
        cleanup_module(&mut m);
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(count_calls(&m), 0);
        assert!(after.dyn_insts < before.dyn_insts);
    }

    #[test]
    fn flag_off_is_noop() {
        let mut m = leaf_add_module();
        assert!(!inline_functions(&mut m, &OptConfig::o0()));
        assert_eq!(count_calls(&m), 1);
    }

    #[test]
    fn cold_functions_never_inlined() {
        let mut mb = ModuleBuilder::new("t");
        let leaf = {
            let mut b = FuncBuilder::new("coldy", 1);
            b.set_cold();
            let s = b.add(b.param(0), 1);
            b.ret(s);
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        let r = b.call(leaf, &[Operand::Imm(41)]);
        b.ret(r);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        assert!(!inline_functions(&mut m, &OptConfig::o3()));
        assert_eq!(run_module(&m, &[]).unwrap().ret, 42);
    }

    #[test]
    fn size_limit_blocks_inlining() {
        let mut mb = ModuleBuilder::new("t");
        let big = {
            let mut b = FuncBuilder::new("big", 1);
            let mut t = b.param(0);
            for _ in 0..430 {
                t = b.add(t, 1);
            }
            b.ret(t);
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        let r = b.call(big, &[Operand::Imm(0)]);
        b.ret(r);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        // Tightest settings: 30-insn auto limit.
        let tight = OptConfig {
            inline_functions: true,
            max_inline_insns_auto: 0,
            inline_call_cost: 0,
            ..OptConfig::o3()
        };
        assert!(!inline_functions(&mut m, &tight));
        // Most permissive settings: 450-insn limit admits it.
        let loose = OptConfig {
            inline_functions: true,
            max_inline_insns_auto: 4,
            large_function_insns: 2,
            large_function_growth: 3,
            large_unit_insns: 2,
            inline_unit_growth: 3,
            ..OptConfig::o3()
        };
        assert!(inline_functions(&mut m, &loose));
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 430);
    }

    #[test]
    fn chains_flatten_bottom_up() {
        let mut mb = ModuleBuilder::new("t");
        let inner = {
            let mut b = FuncBuilder::new("inner", 1);
            let s = b.add(b.param(0), 1);
            b.ret(s);
            mb.add(b.finish())
        };
        let mid = {
            let mut b = FuncBuilder::new("mid", 1);
            let r = b.call(inner, &[b.param(0).into()]);
            let s = b.mul(r, 2);
            b.ret(s);
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        let r = b.call(mid, &[Operand::Imm(5)]);
        b.ret(r);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        assert!(inline_functions(&mut m, &OptConfig::o3()));
        verify_module(&m).unwrap();
        cleanup_module(&mut m);
        assert_eq!(count_calls(&m), 0, "chain fully flattened");
        assert_eq!(run_module(&m, &[]).unwrap().ret, 12);
    }

    #[test]
    fn recursion_not_inlined() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("fact", 1);
        let mut b = FuncBuilder::new("fact", 1);
        let n = b.param(0);
        let c = b.cmp(Pred::Le, n, 1);
        let out = b.fresh();
        b.if_else(
            c,
            |b| b.assign(out, 1),
            |b| {
                let n1 = b.sub(n, 1);
                let r = b.call(fid, &[n1.into()]);
                let p = b.mul(n, r);
                b.assign(out, p);
            },
        );
        b.ret(out);
        mb.define(fid, b.finish());
        let mut mb2 = mb;
        let mut mainb = FuncBuilder::new("main", 0);
        let r = mainb.call(fid, &[Operand::Imm(6)]);
        mainb.ret(r);
        let id = mb2.add(mainb.finish());
        mb2.entry(id);
        let mut m = mb2.finish();
        inline_functions(&mut m, &OptConfig::o3());
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 720);
        // fact still calls itself.
        assert!(portopt_ir::calls(&m.funcs[fid.index()], fid));
    }
}
