//! Linear-scan register allocation for the XScale-style register file,
//! with `-fcaller-saves` and `-fregmove`.
//!
//! Twelve registers are allocatable (r0–r5 caller-saved, r6–r11
//! callee-saved); r12/r13 are reserved for spill traffic. Values live
//! across calls may only sit in callee-saved registers — unless
//! `-fcaller-saves` permits caller-saved registers with an explicit
//! save/restore pair around each crossed call, exactly gcc's semantics.
//! Spills, reloads, and prologue/epilogue callee-save traffic are emitted
//! as [`Inst::FrameStore`]/[`Inst::FrameLoad`], so the simulator sees every
//! byte of stack traffic the allocation decision costs.

use portopt_ir::{Function, Inst, Liveness, Operand, VReg};

/// Number of allocatable physical registers.
pub const NUM_ALLOC: u32 = 12;
/// First callee-saved register (r6..r11 are callee-saved).
pub const FIRST_CALLEE_SAVED: u32 = 6;
/// First scratch register reserved for spill code (r12–r15 are scratch;
/// a call can need one reload per argument).
pub const SCRATCH0: u32 = 12;
/// Second scratch register (also shields return values in epilogues).
pub const SCRATCH1: u32 = 13;
/// Total physical registers (vreg_count after allocation) — 16, like ARM.
pub const NUM_PHYS: u32 = 16;

/// Returns `true` for caller-saved (call-clobbered) registers.
pub fn is_caller_saved(r: u32) -> bool {
    r < FIRST_CALLEE_SAVED
}

/// Statistics from one allocation run (used by tests and experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegAllocStats {
    /// Virtual registers that received a stack slot.
    pub spilled: u32,
    /// Coalesced copies removed by `-fregmove`.
    pub coalesced: u32,
    /// Save/restore pairs inserted around calls (`-fcaller-saves`).
    pub caller_save_pairs: u32,
    /// Callee-saved registers saved in the prologue.
    pub callee_saved_used: u32,
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    start: u32,
    end: u32,
    crosses_call: bool,
}

/// Computes live intervals over the linearised function.
///
/// Positions: instruction `i` (global linear index) reads at `2i` and
/// writes at `2i+1`; a block live-in extends to the block start, live-out
/// to the block end.
fn intervals(f: &Function) -> (Vec<Option<Interval>>, Vec<u32>) {
    let live = Liveness::compute(f);
    let nv = f.vreg_count as usize;
    let mut iv: Vec<Option<Interval>> = vec![None; nv];
    let mut call_positions: Vec<u32> = Vec::new();

    let extend = |iv: &mut Vec<Option<Interval>>, r: usize, pos: u32| {
        let e = iv[r].get_or_insert(Interval {
            start: pos,
            end: pos,
            crosses_call: false,
        });
        e.start = e.start.min(pos);
        e.end = e.end.max(pos);
    };

    // Params are defined at position 0.
    for p in &f.params {
        extend(&mut iv, p.index(), 0);
    }

    let mut idx: u32 = 0;
    for (bi, block) in f.iter_blocks() {
        let block_start = 2 * idx;
        let block_end = 2 * (idx + block.insts.len() as u32);
        for r in live.inp(bi).iter() {
            extend(&mut iv, r, block_start);
        }
        for r in live.out(bi).iter() {
            extend(&mut iv, r, block_end);
        }
        for inst in &block.insts {
            inst.for_each_use(|r| extend(&mut iv, r.index(), 2 * idx));
            if let Some(d) = inst.def() {
                extend(&mut iv, d.index(), 2 * idx + 1);
            }
            if inst.is_call() {
                call_positions.push(idx);
            }
            idx += 1;
        }
    }

    for e in iv.iter_mut().flatten() {
        e.crosses_call = call_positions
            .iter()
            .any(|&c| e.start < 2 * c && e.end > 2 * c + 1);
    }
    (iv, call_positions)
}

/// `-fregmove`: conservative copy coalescing. Returns copies removed.
pub fn regmove(f: &mut Function) -> u32 {
    let (iv, _) = intervals(f);
    let nv = f.vreg_count as usize;
    // Union-find over registers.
    let mut parent: Vec<u32> = (0..nv as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut c = x;
        while parent[c as usize] != r {
            let n = parent[c as usize];
            parent[c as usize] = r;
            c = n;
        }
        r
    }
    // Merged interval bounds per representative.
    let mut bounds: Vec<Option<(u32, u32)>> =
        iv.iter().map(|o| o.map(|i| (i.start, i.end))).collect();

    let mut merged = 0u32;
    for block in &f.blocks {
        for inst in &block.insts {
            let Inst::Copy {
                dst,
                src: Operand::Reg(src),
            } = inst
            else {
                continue;
            };
            let (rd, rs) = (find(&mut parent, dst.0), find(&mut parent, src.0));
            if rd == rs {
                continue;
            }
            let (Some((s1, e1)), Some((s2, e2))) = (bounds[rd as usize], bounds[rs as usize])
            else {
                continue;
            };
            // Intervals may touch (the copy point) but not overlap.
            let overlap = s1.max(s2) + 1 < e1.min(e2);
            if overlap {
                continue;
            }
            parent[rd as usize] = rs;
            bounds[rs as usize] = Some((s1.min(s2), e1.max(e2)));
            merged += 1;
        }
    }
    if merged > 0 {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                inst.map_uses(|r| VReg(find(&mut parent, r.0)));
                inst.map_def(|r| VReg(find(&mut parent, r.0)));
            }
        }
        for p in &mut f.params {
            *p = VReg(find(&mut parent, p.0));
        }
        crate::util::remove_self_copies(f);
    }
    merged
}

/// Runs register allocation on `f`, rewriting it in place to use physical
/// registers (`vreg_count` becomes [`NUM_PHYS`]) and stack slots.
pub fn allocate(f: &mut Function, caller_saves: bool, use_regmove: bool) -> RegAllocStats {
    let mut stats = RegAllocStats::default();

    // Shield parameters behind entry copies so their intervals stay short
    // and are never spill candidates (a spilled parameter has no register
    // to be stored from).
    shield_params(f);

    if use_regmove {
        stats.coalesced = regmove(f);
    }

    let (iv, call_positions) = intervals(f);
    let nv = f.vreg_count as usize;

    // Sort interval indices by start position.
    let mut order: Vec<usize> = (0..nv).filter(|&r| iv[r].is_some()).collect();
    order.sort_by_key(|&r| iv[r].unwrap().start);

    #[derive(Clone, Copy)]
    enum Loc {
        Reg(u32),
        Slot(u32),
    }
    let mut loc: Vec<Option<Loc>> = vec![None; nv];
    let mut next_slot: u32 = 0;
    let mut active: Vec<usize> = Vec::new(); // registers currently live, by vreg

    let mut free: Vec<bool> = vec![true; NUM_ALLOC as usize];

    for &r in &order {
        let cur = iv[r].unwrap();
        // Expire (strictly before: two intervals meeting at a position,
        // e.g. two parameters both defined at 0, must not share a register).
        active.retain(|&a| {
            if iv[a].unwrap().end < cur.start {
                if let Some(Loc::Reg(p)) = loc[a] {
                    free[p as usize] = true;
                }
                false
            } else {
                true
            }
        });
        // Pick a register honouring the call-crossing rule.
        let allowed = |p: u32| -> bool {
            if cur.crosses_call {
                !is_caller_saved(p) || caller_saves
            } else {
                true
            }
        };
        // Preference: non-crossing values take caller-saved first (keeping
        // callee-saved free avoids prologue cost); crossing values take
        // callee-saved first (avoiding save/restore pairs).
        let pref: Vec<u32> = if cur.crosses_call {
            (FIRST_CALLEE_SAVED..NUM_ALLOC)
                .chain(0..FIRST_CALLEE_SAVED)
                .collect()
        } else {
            (0..NUM_ALLOC).collect()
        };
        let chosen = pref
            .iter()
            .copied()
            .find(|&p| free[p as usize] && allowed(p));
        match chosen {
            Some(p) => {
                free[p as usize] = false;
                loc[r] = Some(Loc::Reg(p));
                active.push(r);
            }
            None => {
                // Spill the allowed active interval with the furthest end if
                // it outlives the current one; otherwise spill current.
                let victim = active
                    .iter()
                    .copied()
                    .filter(|&a| {
                        matches!(loc[a], Some(Loc::Reg(p))
                            if allowed(p) && !is_param_shield(f, a))
                    })
                    .max_by_key(|&a| iv[a].unwrap().end);
                match victim {
                    Some(v) if iv[v].unwrap().end > cur.end => {
                        let Some(Loc::Reg(p)) = loc[v] else {
                            unreachable!()
                        };
                        loc[v] = Some(Loc::Slot(next_slot));
                        next_slot += 1;
                        stats.spilled += 1;
                        active.retain(|&a| a != v);
                        loc[r] = Some(Loc::Reg(p));
                        active.push(r);
                    }
                    _ => {
                        loc[r] = Some(Loc::Slot(next_slot));
                        next_slot += 1;
                        stats.spilled += 1;
                    }
                }
            }
        }
    }

    // --- rewrite ----------------------------------------------------------
    let phys = |r: VReg, loc: &[Option<Loc>]| -> Option<u32> {
        match loc[r.index()] {
            Some(Loc::Reg(p)) => Some(p),
            _ => None,
        }
    };
    let slot_of = |r: VReg, loc: &[Option<Loc>]| -> Option<u32> {
        match loc[r.index()] {
            Some(Loc::Slot(s)) => Some(s),
            _ => None,
        }
    };

    // Caller-save pairs around calls: find (interval in caller-saved reg)
    // × (call position inside it).
    let mut call_saves: Vec<(u32, u32, u32)> = Vec::new(); // (call idx, phys, slot)
    if caller_saves {
        for &r in &order {
            let cur = iv[r].unwrap();
            if !cur.crosses_call {
                continue;
            }
            if let Some(Loc::Reg(p)) = loc[r] {
                if is_caller_saved(p) {
                    let slot = next_slot;
                    next_slot += 1;
                    for &c in &call_positions {
                        if cur.start < 2 * c && cur.end > 2 * c + 1 {
                            call_saves.push((c, p, slot));
                            stats.caller_save_pairs += 1;
                        }
                    }
                }
            }
        }
    }

    // Callee-saved registers actually used.
    let mut callee_used: Vec<u32> = loc
        .iter()
        .filter_map(|l| match l {
            Some(Loc::Reg(p)) if !is_caller_saved(*p) => Some(*p),
            _ => None,
        })
        .collect();
    callee_used.sort_unstable();
    callee_used.dedup();
    stats.callee_saved_used = callee_used.len() as u32;
    let callee_slots: Vec<(u32, u32)> = callee_used
        .iter()
        .map(|&p| {
            let s = next_slot;
            next_slot += 1;
            (p, s)
        })
        .collect();

    // Rewrite instructions block by block, tracking the global index for
    // caller-save insertion.
    let mut idx: u32 = 0;
    for bi in 0..f.blocks.len() {
        let old = std::mem::take(&mut f.blocks[bi].insts);
        let mut new: Vec<Inst> = Vec::with_capacity(old.len() + 4);
        for mut inst in old {
            // Reloads for spilled uses.
            let mut scratch_next = SCRATCH0;
            let mut reload_map: Vec<(VReg, u32)> = Vec::new();
            inst.for_each_use(|r| {
                if slot_of(r, &loc).is_some() && !reload_map.iter().any(|(v, _)| *v == r) {
                    let s = scratch_next;
                    scratch_next += 1;
                    reload_map.push((r, s));
                }
            });
            assert!(
                scratch_next <= NUM_PHYS,
                "more than four spilled uses in one instruction (max call arity exceeded)"
            );
            for (v, s) in &reload_map {
                new.push(Inst::FrameLoad {
                    dst: VReg(*s),
                    slot: slot_of(*v, &loc).unwrap(),
                });
            }
            // Caller-saves: stores before the call. A pair is skipped when
            // the call's own destination is that register — the call kills
            // it, and restoring would clobber the return value (this arises
            // when loop unrolling merges the per-copy call results into one
            // multi-definition interval).
            let is_call = inst.is_call();
            let call_dst_phys = if is_call {
                inst.def().and_then(|d| phys(d, &loc))
            } else {
                None
            };
            if is_call {
                for &(c, p, slot) in &call_saves {
                    if c == idx && Some(p) != call_dst_phys {
                        new.push(Inst::FrameStore {
                            src: Operand::Reg(VReg(p)),
                            slot,
                        });
                    }
                }
            }
            // Rename uses.
            inst.map_uses(|r| {
                if let Some((_, s)) = reload_map.iter().find(|(v, _)| *v == r) {
                    VReg(*s)
                } else {
                    VReg(phys(r, &loc).expect("use of unallocated register"))
                }
            });
            // Rename or spill the def.
            let def_spill = inst.def().and_then(|d| slot_of(d, &loc));
            inst.map_def(|r| match loc[r.index()] {
                Some(Loc::Reg(p)) => VReg(p),
                Some(Loc::Slot(_)) => VReg(SCRATCH0),
                None => VReg(SCRATCH0), // dead def
            });
            // Epilogue on returns: restore callee-saved registers; shield
            // the return value if it sits in one of them.
            if let Inst::Ret { val } = &mut inst {
                if let Some(Operand::Reg(rv)) = val {
                    if callee_slots.iter().any(|(p, _)| *p == rv.0) {
                        new.push(Inst::Copy {
                            dst: VReg(SCRATCH1),
                            src: Operand::Reg(*rv),
                        });
                        *rv = VReg(SCRATCH1);
                    }
                }
                for &(p, s) in &callee_slots {
                    new.push(Inst::FrameLoad {
                        dst: VReg(p),
                        slot: s,
                    });
                }
            }
            new.push(inst);
            if let Some(slot) = def_spill {
                new.push(Inst::FrameStore {
                    src: Operand::Reg(VReg(SCRATCH0)),
                    slot,
                });
            }
            // Caller-saves: reloads after the call.
            if is_call {
                for &(c, p, slot) in &call_saves {
                    if c == idx && Some(p) != call_dst_phys {
                        new.push(Inst::FrameLoad { dst: VReg(p), slot });
                    }
                }
            }
            idx += 1;
        }
        f.blocks[bi].insts = new;
    }

    // Prologue: save used callee-saved registers at the entry.
    for (k, &(p, s)) in callee_slots.iter().enumerate() {
        f.blocks[0].insts.insert(
            k,
            Inst::FrameStore {
                src: Operand::Reg(VReg(p)),
                slot: s,
            },
        );
    }

    // Params now live in their allocated registers.
    for p in &mut f.params {
        *p = VReg(phys(*p, &loc).expect("parameter allocated"));
    }
    f.vreg_count = NUM_PHYS;
    f.frame_slots = next_slot;
    stats
}

/// Inserts `v' = copy param` at the entry and rewrites all uses, keeping
/// parameter intervals minimal.
fn shield_params(f: &mut Function) {
    if f.params.is_empty() {
        return;
    }
    let params = f.params.clone();
    let mut shields = Vec::with_capacity(params.len());
    for _ in &params {
        shields.push(f.new_vreg());
    }
    // Rewrite every use (and def!) of a param to its shield, then add the
    // copies at the entry. Defs of params (loop updates of a param) also
    // move to the shield so the original param register has exactly one
    // definition: function entry.
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            inst.map_uses(|r| {
                params
                    .iter()
                    .position(|p| *p == r)
                    .map_or(r, |i| shields[i])
            });
            inst.map_def(|r| {
                params
                    .iter()
                    .position(|p| *p == r)
                    .map_or(r, |i| shields[i])
            });
        }
    }
    for (i, (&p, &s)) in params.iter().zip(&shields).enumerate() {
        f.blocks[0].insts.insert(
            i,
            Inst::Copy {
                dst: s,
                src: Operand::Reg(p),
            },
        );
    }
}

/// `true` when `r` is one of the original parameter registers after
/// [`shield_params`] — these must never be spilled.
fn is_param_shield(f: &Function, r: usize) -> bool {
    f.params.iter().any(|p| p.index() == r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder, Pred};

    fn close(m: &Module) {
        verify_module(m).unwrap();
    }

    fn check_phys(f: &Function) {
        assert_eq!(f.vreg_count, NUM_PHYS);
        for b in &f.blocks {
            for i in &b.insts {
                i.for_each_use(|r| assert!(r.0 < NUM_PHYS, "use of {r}"));
                if let Some(d) = i.def() {
                    assert!(d.0 < NUM_PHYS, "def of {d}");
                }
            }
        }
    }

    #[test]
    fn simple_function_allocates_without_spills() {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 2);
        let s = b.add(b.param(0), b.param(1));
        let t = b.mul(s, 3);
        b.ret(t);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[4, 5]).unwrap();
        let stats = allocate(&mut m.funcs[0], false, false);
        close(&m);
        check_phys(&m.funcs[0]);
        assert_eq!(stats.spilled, 0);
        assert_eq!(run_module(&m, &[4, 5]).unwrap().ret, before.ret);
    }

    #[test]
    fn high_pressure_spills_and_stays_correct() {
        // 30 simultaneously-live values force spills with 12 registers.
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let vals: Vec<_> = (0..30).map(|k| b.add(x, k)).collect();
        // Use them all after all are live.
        let mut acc = b.iconst(0);
        for v in &vals {
            acc = b.add(acc, *v);
        }
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[100]).unwrap();
        let stats = allocate(&mut m.funcs[0], false, false);
        close(&m);
        check_phys(&m.funcs[0]);
        assert!(stats.spilled > 0, "expected spills under pressure");
        assert!(m.funcs[0].frame_slots > 0);
        let after = run_module(&m, &[100]).unwrap();
        assert_eq!(after.ret, before.ret);
        assert!(after.dyn_insts > before.dyn_insts, "spill code executes");
    }

    #[test]
    fn loops_with_calls_preserve_semantics() {
        let mut mb = ModuleBuilder::new("t");
        let leaf = {
            let mut b = FuncBuilder::new("leaf", 1);
            let t = b.mul(b.param(0), 3);
            b.ret(t);
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        let inv = b.mul(n, 7); // lives across the call
        b.counted_loop(0, n, 1, |b, i| {
            let r = b.call(leaf, &[i.into()]);
            let t = b.add(acc, r);
            let t2 = b.add(t, inv);
            b.assign(acc, t2);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[10]).unwrap();
        for f in &mut m.funcs {
            allocate(f, false, false);
        }
        close(&m);
        let after = run_module(&m, &[10]).unwrap();
        assert_eq!(after.ret, before.ret);
    }

    #[test]
    fn caller_saves_changes_spill_strategy() {
        // Many values live across many calls: without caller-saves, only 6
        // callee-saved registers can hold them.
        let build = || {
            let mut mb = ModuleBuilder::new("t");
            let leaf = {
                let mut b = FuncBuilder::new("leaf", 1);
                let t = b.add(b.param(0), 1);
                b.ret(t);
                mb.add(b.finish())
            };
            let mut b = FuncBuilder::new("main", 1);
            let x = b.param(0);
            let vals: Vec<_> = (0..9).map(|k| b.mul(x, k + 2)).collect();
            let mut acc = b.iconst(0);
            for v in &vals {
                let r = b.call(leaf, &[(*v).into()]);
                acc = b.add(acc, r);
            }
            for v in &vals {
                acc = b.add(acc, *v); // keep them live across all calls
            }
            b.ret(acc);
            let id = mb.add(b.finish());
            mb.entry(id);
            mb.finish()
        };
        let mut without = build();
        let s1 = allocate(&mut without.funcs[1], false, false);
        let mut with = build();
        let s2 = allocate(&mut with.funcs[1], true, false);
        close(&without);
        close(&with);
        let r1 = run_module(&without, &[3]).unwrap();
        let r2 = run_module(&with, &[3]).unwrap();
        assert_eq!(r1.ret, r2.ret);
        assert!(s1.spilled > 0, "pressure without caller-saves");
        assert!(
            s2.caller_save_pairs > 0 || s2.spilled < s1.spilled,
            "caller-saves must change the allocation: {s2:?} vs {s1:?}"
        );
    }

    #[test]
    fn regmove_removes_copies() {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let t = b.add(x, 1);
        let u = b.fresh();
        b.assign(u, t); // coalescable copy
        let v = b.mul(u, 2);
        b.ret(v);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[5]).unwrap();
        let merged = regmove(&mut m.funcs[0]);
        assert!(merged >= 1);
        close(&m);
        assert_eq!(run_module(&m, &[5]).unwrap().ret, before.ret);
    }

    #[test]
    fn regmove_keeps_overlapping_copies() {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let t = b.add(x, 1);
        let u = b.fresh();
        b.assign(u, t);
        let t2 = b.add(t, 10); // t still live after the copy: overlap
        let s = b.add(u, t2);
        b.ret(s);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[5]).unwrap();
        regmove(&mut m.funcs[0]);
        close(&m);
        assert_eq!(run_module(&m, &[5]).unwrap().ret, before.ret);
    }

    #[test]
    fn recursion_allocates_and_runs() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("fib", 1);
        let mut b = FuncBuilder::new("fib", 1);
        let n = b.param(0);
        let c = b.cmp(Pred::Lt, n, 2);
        let out = b.fresh();
        b.if_else(
            c,
            |b| b.assign(out, n),
            |b| {
                let n1 = b.sub(n, 1);
                let a = b.call(fid, &[n1.into()]);
                let n2 = b.sub(n, 2);
                let c2 = b.call(fid, &[n2.into()]);
                let s = b.add(a, c2);
                b.assign(out, s);
            },
        );
        b.ret(out);
        mb.define(fid, b.finish());
        mb.entry(fid);
        let mut m = mb.finish();
        let before = run_module(&m, &[12]).unwrap();
        allocate(&mut m.funcs[0], true, true);
        close(&m);
        check_phys(&m.funcs[0]);
        assert_eq!(run_module(&m, &[12]).unwrap().ret, before.ret);
        assert_eq!(before.ret, 144);
    }
}
