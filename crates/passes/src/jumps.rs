//! Jump-level passes: `-fthread-jumps` and `-fcrossjumping`.

use portopt_ir::{BlockId, Cfg, Function, Inst};

/// `-fthread-jumps`: retarget branches that land on trivial forwarding
/// blocks, and thread conditional branches through blocks that immediately
/// re-test the same condition. Returns `true` if anything changed.
pub fn thread_jumps(f: &mut Function) -> bool {
    let mut changed = false;

    // Resolve chains of blocks containing only `br x`, with cycle detection.
    let n = f.blocks.len();
    let forward: Vec<Option<BlockId>> = (0..n)
        .map(|i| match f.blocks[i].insts.as_slice() {
            [Inst::Br { target }] => Some(*target),
            _ => None,
        })
        .collect();
    let resolve = |mut b: BlockId| -> BlockId {
        let mut hops = 0;
        while let Some(next) = forward[b.index()] {
            if next == b || hops > n {
                break;
            }
            b = next;
            hops += 1;
        }
        b
    };

    for bi in 0..n {
        // Work on a copy of the terminator to appease the borrow checker.
        let Some(mut term) = f.blocks[bi].insts.last().cloned() else {
            continue;
        };
        let before = term.clone();
        term.map_targets(resolve);
        // Thread `condbr c, T, E` where T itself is just `condbr c, T2, E2`:
        // along the taken edge `c != 0`, so the re-test must take T2.
        if let Inst::CondBr { cond, then_, else_ } = term {
            let thread = |target: BlockId, take_then: bool| -> BlockId {
                match f.blocks[target.index()].insts.as_slice() {
                    [Inst::CondBr {
                        cond: c2,
                        then_: t2,
                        else_: e2,
                    }] if *c2 == cond => {
                        if take_then {
                            *t2
                        } else {
                            *e2
                        }
                    }
                    _ => target,
                }
            };
            let nt = thread(then_, true);
            let ne = thread(else_, false);
            term = Inst::CondBr {
                cond,
                then_: nt,
                else_: ne,
            };
        }
        if term != before {
            *f.blocks[bi].insts.last_mut().unwrap() = term;
            changed = true;
        }
    }
    changed
}

/// `-fcrossjumping`: merge identical instruction tails of two unconditional
/// predecessors of a join block into the join block (a pure code-size
/// optimisation). Returns `true` if anything changed.
pub fn crossjumping(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let cfg = Cfg::compute(f);
        let mut done_one = false;
        for j in 0..f.blocks.len() {
            let join = BlockId(j as u32);
            let preds = cfg.preds(join);
            if preds.len() != 2 || preds[0] == preds[1] || join == f.entry() {
                continue;
            }
            let (p1, p2) = (preds[0], preds[1]);
            // Both predecessors must end with an unconditional branch to join.
            let uncond = |b: BlockId| {
                matches!(
                    f.block(b).insts.last(),
                    Some(Inst::Br { target }) if *target == join
                )
            };
            if !uncond(p1) || !uncond(p2) || p1 == join || p2 == join {
                continue;
            }
            // Longest common suffix of the bodies (excluding terminators).
            let b1 = f.block(p1).body();
            let b2 = f.block(p2).body();
            let mut k = 0;
            while k < b1.len() && k < b2.len() && b1[b1.len() - 1 - k] == b2[b2.len() - 1 - k] {
                k += 1;
            }
            if k == 0 {
                continue;
            }
            // Move the common tail to the head of the join block.
            let tail: Vec<Inst> = b1[b1.len() - k..].to_vec();
            for p in [p1, p2] {
                let blk = f.block_mut(p);
                let keep = blk.insts.len() - 1 - k;
                blk.insts.drain(keep..blk.insts.len() - 1);
            }
            let jb = f.block_mut(join);
            for (i, inst) in tail.into_iter().enumerate() {
                jb.insts.insert(i, inst);
            }
            changed = true;
            done_one = true;
            break;
        }
        if !done_one {
            return changed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder, Pred};

    fn finish(f: portopt_ir::Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn threads_through_forwarding_block() {
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let fwd = b.block();
        let real = b.block();
        let other = b.block();
        b.cond_br(c, fwd, other);
        b.switch_to(fwd);
        b.br(real); // forwarding-only block
        b.switch_to(real);
        b.ret(1);
        b.switch_to(other);
        b.ret(0);
        let mut f = b.finish();
        assert!(thread_jumps(&mut f));
        // The entry's condbr must now target `real` directly.
        match f.block(portopt_ir::BlockId(0)).insts.last().unwrap() {
            Inst::CondBr { then_, .. } => assert_eq!(*then_, real),
            other => panic!("unexpected terminator {other}"),
        }
        let m = finish(f);
        assert_eq!(run_module(&m, &[5]).unwrap().ret, 1);
        assert_eq!(run_module(&m, &[-5]).unwrap().ret, 0);
    }

    #[test]
    fn threads_repeated_condition() {
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let retest = b.block();
        let t2 = b.block();
        let e2 = b.block();
        let other = b.block();
        b.cond_br(c, retest, other);
        b.switch_to(retest);
        b.cond_br(c, t2, e2); // same condition re-tested
        b.switch_to(t2);
        b.ret(10);
        b.switch_to(e2);
        b.ret(20);
        b.switch_to(other);
        b.ret(30);
        let mut f = b.finish();
        let before_pos = run_module(&finish(f.clone()), &[1]).unwrap();
        let before_neg = run_module(&finish(f.clone()), &[-1]).unwrap();
        assert!(thread_jumps(&mut f));
        match f.block(portopt_ir::BlockId(0)).insts.last().unwrap() {
            Inst::CondBr { then_, .. } => assert_eq!(*then_, t2),
            other => panic!("unexpected terminator {other}"),
        }
        let m = finish(f);
        assert_eq!(run_module(&m, &[1]).unwrap().ret, before_pos.ret);
        assert_eq!(run_module(&m, &[-1]).unwrap().ret, before_neg.ret);
        // The threaded path executes fewer dynamic instructions.
        assert!(run_module(&m, &[1]).unwrap().dyn_insts < before_pos.dyn_insts);
    }

    #[test]
    fn crossjump_merges_common_tail() {
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.fresh();
        let t = b.fresh();
        // Both arms end with the same two instructions (same registers).
        let tail = |b: &mut FuncBuilder| {
            b.push(Inst::Bin {
                op: portopt_ir::BinOp::Mul,
                dst: t,
                a: out.into(),
                b: 7i64.into(),
            });
            b.assign(out, t);
        };
        b.if_else(
            c,
            |b| {
                b.assign(out, 1);
                tail(b);
            },
            |b| {
                b.assign(out, 2);
                tail(b);
            },
        );
        b.ret(out);
        let mut f = b.finish();
        let size_before = f.inst_count();
        let before = run_module(&finish(f.clone()), &[3]).unwrap();
        assert!(crossjumping(&mut f));
        let m = finish(f.clone());
        assert!(f.inst_count() < size_before, "code must shrink");
        assert_eq!(run_module(&m, &[3]).unwrap().ret, before.ret);
        assert_eq!(run_module(&m, &[-3]).unwrap().ret, 14);
    }

    #[test]
    fn crossjump_noop_when_tails_differ() {
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.fresh();
        b.if_else(c, |b| b.assign(out, 1), |b| b.assign(out, 2));
        b.ret(out);
        let mut f = b.finish();
        // Different constants: only the Copy differs, no common suffix.
        assert!(!crossjumping(&mut f));
    }
}
