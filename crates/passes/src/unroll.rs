//! `-funroll-loops` with `--param max-unroll-times` and
//! `--param max-unrolled-insns`.
//!
//! Counted loops in the canonical `i < end, i += step` shape are unrolled
//! by replicating the body; a guarded main loop runs `u` iterations per
//! bound check and the original loop remains as the remainder. Works for
//! runtime trip counts, exactly like gcc's RTL unroller.

use crate::analysis::clone_blocks;
use crate::config::OptConfig;
use crate::strength::find_basic_ivs;
use portopt_ir::{BinOp, BlockId, Cfg, Function, Inst, LoopForest, Operand, Pred, VReg};

/// A counted loop in canonical shape, ready to unroll.
#[derive(Debug, Clone)]
struct CountedLoop {
    header: BlockId,
    body_entry: BlockId,
    exit: BlockId,
    /// Non-header loop blocks.
    body_blocks: Vec<BlockId>,
    iv: VReg,
    step: i64,
    end: Operand,
    latch: BlockId,
}

/// Recognises the canonical counted-loop shape produced by the builder and
/// preserved by the other passes:
/// header = `[c = cmp.lt i, end; condbr c, body, exit]`, one latch ending
/// `br header`, positive immediate step, `end` loop-invariant.
fn recognise(f: &Function, l: &portopt_ir::Loop) -> Option<CountedLoop> {
    let h = f.block(l.header);
    if h.insts.len() != 2 {
        return None;
    }
    let (
        Inst::Cmp {
            pred: Pred::Lt,
            dst: c,
            a: Operand::Reg(iv),
            b: end,
        },
        Inst::CondBr { cond, then_, else_ },
    ) = (&h.insts[0], &h.insts[1])
    else {
        return None;
    };
    if cond != c || !l.contains(*then_) || l.contains(*else_) {
        return None;
    }
    // Single latch ending in an unconditional branch to the header.
    if l.latches.len() != 1 {
        return None;
    }
    let latch = l.latches[0];
    if !matches!(f.block(latch).insts.last(), Some(Inst::Br { target }) if *target == l.header) {
        return None;
    }
    // `end` must be invariant: an immediate, or a register not defined in-loop.
    if let Operand::Reg(e) = end {
        for &b in &l.blocks {
            if f.block(b).insts.iter().any(|i| i.def() == Some(*e)) {
                return None;
            }
        }
    }
    // The IV must be a recognised basic IV with positive step.
    let ivs = find_basic_ivs(f, l);
    let biv = ivs.iter().find(|b| b.reg == *iv)?;
    if biv.step <= 0 {
        return None;
    }
    let body_blocks: Vec<BlockId> = l
        .blocks
        .iter()
        .copied()
        .filter(|b| *b != l.header)
        .collect();
    Some(CountedLoop {
        header: l.header,
        body_entry: *then_,
        exit: *else_,
        body_blocks,
        iv: *iv,
        step: biv.step,
        end: *end,
        latch,
    })
}

/// Runs loop unrolling on `f`. Returns `true` if any loop was unrolled.
pub fn unroll_loops(f: &mut Function, cfg: &OptConfig) -> bool {
    if !cfg.unroll_loops {
        return false;
    }
    let max_times = cfg.max_unroll_times_value();
    let max_insns = cfg.max_unrolled_insns_value();
    let mut changed = false;
    // Unroll innermost loops once each (no re-unrolling of the product).
    let candidates: Vec<CountedLoop> = {
        let forest = LoopForest::compute(f);
        forest
            .loops
            .iter()
            .rev()
            .filter(|l| {
                // Innermost only: no other loop header inside.
                !forest
                    .loops
                    .iter()
                    .any(|o| o.header != l.header && l.contains(o.header))
            })
            .filter_map(|l| recognise(f, l))
            .collect()
    };
    for cl in candidates {
        let body_size: usize = cl.body_blocks.iter().map(|&b| f.block(b).insts.len()).sum();
        let mut u = max_times;
        while u > 1 && body_size as u32 * u > max_insns {
            u /= 2;
        }
        if u < 2 {
            continue;
        }
        apply_unroll(f, &cl, u);
        changed = true;
    }
    changed
}

/// Builds the guarded main loop with `u` body copies; the original loop
/// stays as the remainder.
fn apply_unroll(f: &mut Function, cl: &CountedLoop, u: u32) {
    // limit = end - (u-1)*step, computed in a new guard/preheader block.
    let pre = f.new_block();
    let slack = (u as i64 - 1) * cl.step;
    let limit: Operand = match cl.end {
        Operand::Imm(e) => Operand::Imm(e - slack),
        Operand::Reg(e) => {
            let lim = f.new_vreg();
            f.block_mut(pre).insts.push(Inst::Bin {
                op: BinOp::Sub,
                dst: lim,
                a: Operand::Reg(e),
                b: Operand::Imm(slack),
            });
            Operand::Reg(lim)
        }
    };

    // New main-loop header: `c = cmp.lt i, limit; condbr c, first_copy, rem`.
    let main_h = f.new_block();
    let c = f.new_vreg();

    // Retarget all entries into the original header from outside the loop
    // (and not from our own new blocks) to the guard block.
    let loop_blocks: Vec<BlockId> = std::iter::once(cl.header)
        .chain(cl.body_blocks.iter().copied())
        .collect();
    for bi in 0..f.blocks.len() {
        let b = BlockId(bi as u32);
        if b == pre || b == main_h || loop_blocks.contains(&b) {
            continue;
        }
        if let Some(t) = f.block_mut(b).insts.last_mut() {
            t.map_targets(|old| if old == cl.header { pre } else { old });
        }
    }
    f.block_mut(pre).insts.push(Inst::Br { target: main_h });

    // u copies of the body. Copy k's back-branch goes to copy k+1's entry;
    // the last copy branches back to the main header.
    let mut entries: Vec<BlockId> = Vec::with_capacity(u as usize);
    let mut all_copy_latches: Vec<(BlockId, usize)> = Vec::new();
    for _k in 0..u {
        let map = clone_blocks(f, &cl.body_blocks);
        let entry = map
            .iter()
            .find(|(o, _)| *o == cl.body_entry)
            .map(|(_, n)| *n)
            .expect("body entry cloned");
        let latch = map
            .iter()
            .find(|(o, _)| *o == cl.latch)
            .map(|(_, n)| *n)
            .expect("latch cloned");
        entries.push(entry);
        all_copy_latches.push((latch, 0));
    }
    // Wire copy latches: copy k -> entry of copy k+1; last -> main_h.
    for k in 0..u as usize {
        let next = if k + 1 < u as usize {
            entries[k + 1]
        } else {
            main_h
        };
        let (latch, _) = all_copy_latches[k];
        if let Some(t) = f.block_mut(latch).insts.last_mut() {
            t.map_targets(|old| if old == cl.header { next } else { old });
        }
    }

    // Main header: test against the slack-adjusted limit.
    f.block_mut(main_h).insts.push(Inst::Cmp {
        pred: Pred::Lt,
        dst: c,
        a: Operand::Reg(cl.iv),
        b: limit,
    });
    f.block_mut(main_h).insts.push(Inst::CondBr {
        cond: c,
        then_: entries[0],
        else_: cl.header, // fall into the remainder loop
    });
    let _ = Cfg::compute(f); // analyses remain computable (debug aid)
    let _ = cl.exit;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    fn sum_squares(n_is_param: bool, n: i64) -> Function {
        let mut b = FuncBuilder::new("main", if n_is_param { 1 } else { 0 });
        let end: Operand = if n_is_param {
            b.param(0).into()
        } else {
            n.into()
        };
        let acc = b.iconst(0);
        b.counted_loop(0, end, 1, |b, i| {
            let sq = b.mul(i, i);
            let t = b.add(acc, sq);
            b.assign(acc, t);
        });
        b.ret(acc);
        b.finish()
    }

    fn cfg_unroll(times_idx: u8) -> OptConfig {
        OptConfig {
            unroll_loops: true,
            max_unroll_times: times_idx,
            max_unrolled_insns: 3, // 400
            ..OptConfig::o0()
        }
    }

    #[test]
    fn unrolls_runtime_trip_count() {
        for n in [0i64, 1, 2, 3, 7, 8, 9, 100] {
            let mut f = sum_squares(true, 0);
            let before = run_module(&close(f.clone()), &[n]).unwrap();
            assert!(unroll_loops(&mut f, &cfg_unroll(1))); // 4x
            cleanup(&mut f);
            let m = close(f);
            let after = run_module(&m, &[n]).unwrap();
            assert_eq!(after.ret, before.ret, "n={n}");
            if n >= 32 {
                // Fewer bound checks -> fewer dynamic instructions.
                assert!(after.dyn_insts < before.dyn_insts, "n={n}");
            }
        }
    }

    #[test]
    fn unrolls_constant_trip_count() {
        let mut f = sum_squares(false, 64);
        let before = run_module(&close(f.clone()), &[]).unwrap();
        assert!(unroll_loops(&mut f, &cfg_unroll(3))); // 16x
        cleanup(&mut f);
        let m = close(f);
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(after.ret, before.ret);
        assert!(after.dyn_insts < before.dyn_insts);
    }

    #[test]
    fn code_growth_bounded_by_max_unrolled_insns() {
        let mut f = sum_squares(true, 0);
        let small_budget = OptConfig {
            unroll_loops: true,
            max_unroll_times: 3,   // wants 16x
            max_unrolled_insns: 0, // but only 50 insts allowed
            ..OptConfig::o0()
        };
        let before_size = f.inst_count();
        assert!(unroll_loops(&mut f, &small_budget));
        // Body is 6 insts; 16x would need 96 > 50, halved to 8x = 48 <= 50.
        let growth = f.inst_count() - before_size;
        assert!(growth < 6 * 9, "unroll factor not clamped: {growth}");
        let m = close(f);
        assert_eq!(
            run_module(&m, &[10]).unwrap().ret,
            (0..10).map(|i| i * i).sum::<i64>()
        );
    }

    #[test]
    fn flag_off_is_noop() {
        let mut f = sum_squares(true, 0);
        assert!(!unroll_loops(&mut f, &OptConfig::o0()));
    }

    #[test]
    fn hand_unrolled_source_yields_no_candidate() {
        // A loop with step 4 and four statements (rijndael-style source):
        // still recognised, but with a tiny insn budget the factor clamps
        // below 2 and nothing happens.
        let mut b = FuncBuilder::new("main", 0);
        let acc = b.iconst(0);
        b.counted_loop(0, 64, 4, |b, i| {
            for k in 0..4 {
                let t = b.add(i, k);
                let sq = b.mul(t, t);
                let s = b.add(acc, sq);
                b.assign(acc, s);
            }
        });
        b.ret(acc);
        let mut f = b.finish();
        let tiny = OptConfig {
            unroll_loops: true,
            max_unroll_times: 0,   // 2x
            max_unrolled_insns: 0, // 50 insts; body is ~18 insts => 2x=36 ok
            ..OptConfig::o0()
        };
        let before = run_module(&close(f.clone()), &[]).unwrap();
        unroll_loops(&mut f, &tiny);
        let m = close(f);
        assert_eq!(run_module(&m, &[]).unwrap().ret, before.ret);
    }

    #[test]
    fn nested_loops_unroll_innermost_only() {
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            b.counted_loop(0, n, 1, |b, j| {
                let p = b.mul(i, j);
                let t = b.add(acc, p);
                b.assign(acc, t);
            });
        });
        b.ret(acc);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[9]).unwrap();
        assert!(unroll_loops(&mut f, &cfg_unroll(1)));
        cleanup(&mut f);
        let m = close(f);
        let after = run_module(&m, &[9]).unwrap();
        assert_eq!(after.ret, before.ret);
        assert!(after.dyn_insts < before.dyn_insts);
    }

    #[test]
    fn early_exit_loops_are_rejected() {
        // A while-style search loop with a break is not canonical.
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global_init("a", 8, vec![5, 9, 2, 42, 7, 1, 0, 3]);
        let mut b = FuncBuilder::new("main", 1);
        let needle = b.param(0);
        let p = b.iconst(base as i64);
        let found = b.iconst(-1);
        b.counted_loop(0, 8, 1, |b, i| {
            let off = b.shl(i, 2);
            let addr = b.add(p, off);
            let v = b.load(addr, 0);
            let hit = b.cmp(Pred::Eq, v, needle);
            b.if_then(hit, |b| b.assign(found, i));
        });
        b.ret(found);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        // This one IS canonical (if_then, no break) — it unrolls fine.
        let before = run_module(&m, &[42]).unwrap();
        unroll_loops(&mut m.funcs[0], &cfg_unroll(1));
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[42]).unwrap().ret, before.ret);
        assert_eq!(before.ret, 3);
    }
}
