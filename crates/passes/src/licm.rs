//! Loop-invariant code motion.
//!
//! Always on (the paper notes "moving loop-invariant code out of the loops"
//! happens even in the best configurations that disable everything else);
//! `-frerun-loop-opt` re-runs it after the CSE/GCSE reruns, catching
//! invariants those passes expose.

use crate::analysis::{ensure_preheader, single_defs};
use portopt_ir::{Function, LoopForest};

/// Hoists loop-invariant pure, non-memory instructions to loop preheaders.
/// Returns `true` if anything moved.
///
/// An instruction is hoisted when:
/// * it is pure and not a load (loads are `-fgcse-lm`'s job, with alias
///   checks);
/// * its destination is defined exactly once in the whole function (so
///   speculative execution in the preheader cannot clash with another def);
/// * every register operand is defined outside the loop.
///
/// Pure instructions cannot trap (division by zero is total in this IR), so
/// hoisting out of a conditionally-executed block is safe.
pub fn licm(f: &mut Function) -> bool {
    let mut changed = false;
    // Iterate: hoisting one instruction can make another invariant.
    loop {
        let forest = LoopForest::compute(f);
        let sd = single_defs(f);
        let mut moved = false;

        // Innermost loops first: an instruction escapes one level per round.
        'outer: for l in forest.loops.iter().rev() {
            // Registers defined anywhere in the loop.
            let mut defined_in: Vec<bool> = vec![false; f.vreg_count as usize];
            for &b in &l.blocks {
                for i in &f.block(b).insts {
                    if let Some(d) = i.def() {
                        defined_in[d.index()] = true;
                    }
                }
            }
            for &b in &l.blocks {
                for k in 0..f.block(b).insts.len() {
                    let inst = &f.block(b).insts[k];
                    if !inst.is_pure() || inst.is_memory() || inst.is_terminator() {
                        continue;
                    }
                    let Some(dst) = inst.def() else { continue };
                    if !sd[dst.index()] {
                        continue;
                    }
                    let mut invariant = true;
                    inst.for_each_use(|r| {
                        if defined_in[r.index()] {
                            invariant = false;
                        }
                    });
                    if !invariant {
                        continue;
                    }
                    // Hoist: remove from the block, insert before the
                    // preheader's terminator.
                    let inst = f.block_mut(b).insts.remove(k);
                    let pre = ensure_preheader(f, l);
                    let pi = f.block_mut(pre).insts.len() - 1;
                    f.block_mut(pre).insts.insert(pi, inst);
                    moved = true;
                    changed = true;
                    break 'outer; // analyses are stale; restart
                }
            }
        }
        if !moved {
            return changed;
        }
    }
}

/// Helper for tests and experiments: counts instructions inside loops.
pub fn insts_in_loops(f: &Function) -> usize {
    let forest = LoopForest::compute(f);
    let mut in_loop = vec![false; f.blocks.len()];
    for l in &forest.loops {
        for &b in &l.blocks {
            in_loop[b.index()] = true;
        }
    }
    f.iter_blocks()
        .filter(|(b, _)| in_loop[b.index()])
        .map(|(_, blk)| blk.insts.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Inst, Module, ModuleBuilder};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn hoists_invariant_expression() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let acc = b.iconst(0);
        b.counted_loop(0, 100, 1, |b, _i| {
            let inv = b.mul(x, y); // invariant
            let t = b.add(acc, inv);
            b.assign(acc, t);
        });
        b.ret(acc);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[3, 4]).unwrap();
        assert!(licm(&mut f));
        cleanup(&mut f);
        let m = close(f.clone());
        let after = run_module(&m, &[3, 4]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret, 1200);
        assert!(after.dyn_insts < before.dyn_insts);
        // The mul must no longer be inside any loop.
        let forest = LoopForest::compute(&f);
        for l in &forest.loops {
            for &bk in &l.blocks {
                for i in &f.block(bk).insts {
                    assert!(
                        !matches!(
                            i,
                            Inst::Bin {
                                op: portopt_ir::BinOp::Mul,
                                ..
                            }
                        ),
                        "mul still in loop"
                    );
                }
            }
        }
    }

    #[test]
    fn does_not_hoist_variant_code() {
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let sq = b.mul(i, i); // depends on i: variant
            let t = b.add(acc, sq);
            b.assign(acc, t);
        });
        b.ret(acc);
        let mut f = b.finish();
        assert!(!licm(&mut f));
        let m = close(f);
        assert_eq!(run_module(&m, &[4]).unwrap().ret, 1 + 4 + 9);
    }

    #[test]
    fn hoists_chains_transitively() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let acc = b.iconst(0);
        b.counted_loop(0, 10, 1, |b, _i| {
            let a = b.mul(x, y);
            let c = b.add(a, 5); // invariant once `a` is hoisted
            let t = b.add(acc, c);
            b.assign(acc, t);
        });
        b.ret(acc);
        let mut f = b.finish();
        assert!(licm(&mut f));
        let remaining = insts_in_loops(&f);
        // Loop should contain only: cmp+condbr (header), add/assign/iv
        // update/branch in the body — both invariant ops hoisted.
        assert!(remaining <= 8, "still {remaining} insts in loop");
        let m = close(f);
        assert_eq!(run_module(&m, &[2, 3]).unwrap().ret, 110);
    }

    #[test]
    fn nested_loops_hoist_to_correct_level() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let acc = b.iconst(0);
        b.counted_loop(0, 5, 1, |b, i| {
            let mid = b.mul(i, x); // invariant for the inner loop only
            b.counted_loop(0, 5, 1, |b, _j| {
                let inv = b.mul(x, y); // invariant everywhere
                let t1 = b.add(mid, inv);
                let t2 = b.add(acc, t1);
                b.assign(acc, t2);
            });
        });
        b.ret(acc);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[2, 3]).unwrap();
        assert!(licm(&mut f));
        cleanup(&mut f);
        let m = close(f);
        let after = run_module(&m, &[2, 3]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert!(after.dyn_insts < before.dyn_insts);
    }
}
