//! Post-register-allocation cleanups: `-fpeephole2` and
//! `-fgcse-after-reload`.
//!
//! Both run on physical-register code where spill traffic is explicit, so
//! their wins are measured in removed `FrameLoad`/`FrameStore` traffic and
//! fused ALU operations — precisely the code the scheduler/allocator
//! interplay generates more or less of under different flag settings.

use portopt_ir::{BinOp, Function, Inst, Operand, VReg};

/// `-fpeephole2`: small-window cleanups. Returns `true` on change.
///
/// Patterns (adjacent or near-adjacent within a block):
/// * `frame[s] = r` immediately followed by `r' = frame[s]` → `r' = r`;
/// * `r = r + c1; r = r + c2` → `r = r + (c1+c2)` (also `sub` via negation);
/// * `r = copy r` — removed;
/// * a `frame[s] = _` overwritten by another store to `s` with no
///   intervening read of `s` within the window → first store removed.
pub fn peephole2(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        let insts = &mut block.insts;
        // Self-copies first.
        let before = insts.len();
        insts.retain(|i| !matches!(i, Inst::Copy { dst, src: Operand::Reg(s) } if dst == s));
        changed |= insts.len() != before;

        // Window rewrites; restart the scan after each change.
        let mut k = 0;
        while k + 1 < insts.len() {
            let (a, b) = (insts[k].clone(), insts[k + 1].clone());
            // store-to-load forwarding.
            if let (Inst::FrameStore { src, slot: s1 }, Inst::FrameLoad { dst, slot: s2 }) =
                (&a, &b)
            {
                if s1 == s2 {
                    insts[k + 1] = Inst::Copy {
                        dst: *dst,
                        src: *src,
                    };
                    changed = true;
                    k += 1;
                    continue;
                }
            }
            // increment fusion: r = r op c1 ; r = r op c2.
            if let (
                Inst::Bin {
                    op: BinOp::Add,
                    dst: d1,
                    a: Operand::Reg(a1),
                    b: Operand::Imm(c1),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    dst: d2,
                    a: Operand::Reg(a2),
                    b: Operand::Imm(c2),
                },
            ) = (&a, &b)
            {
                if d1 == a1 && d2 == a2 && d1 == d2 {
                    insts[k] = Inst::Bin {
                        op: BinOp::Add,
                        dst: *d1,
                        a: Operand::Reg(*a1),
                        b: Operand::Imm(c1.wrapping_add(*c2)),
                    };
                    insts.remove(k + 1);
                    changed = true;
                    continue;
                }
            }
            // dead frame store: overwritten before any read.
            if let Inst::FrameStore { slot: s1, .. } = &a {
                let mut dead = false;
                for later in insts[k + 1..].iter() {
                    match later {
                        Inst::FrameLoad { slot, .. } if slot == s1 => break,
                        Inst::Call { .. } => break, // callee frames are separate, but stay conservative
                        Inst::FrameStore { slot, .. } if slot == s1 => {
                            dead = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if dead {
                    insts.remove(k);
                    changed = true;
                    continue;
                }
            }
            k += 1;
        }
    }
    changed
}

/// `-fgcse-after-reload`: block-wide redundant reload elimination.
///
/// Tracks which register holds each frame slot's current value; a
/// `FrameLoad` whose slot value is already in a register becomes a copy.
/// Returns `true` on change.
pub fn gcse_after_reload(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // slot -> register currently holding its value
        let mut holder: Vec<(u32, VReg)> = Vec::new();
        for inst in &mut block.insts {
            match inst.clone() {
                Inst::FrameStore {
                    src: Operand::Reg(r),
                    slot,
                } => {
                    holder.retain(|(s, _)| *s != slot);
                    holder.push((slot, r));
                }
                Inst::FrameStore { slot, .. } => {
                    holder.retain(|(s, _)| *s != slot);
                }
                Inst::FrameLoad { dst, slot } => {
                    if let Some((_, r)) = holder.iter().find(|(s, _)| *s == slot) {
                        if *r != dst {
                            *inst = Inst::Copy {
                                dst,
                                src: Operand::Reg(*r),
                            };
                            changed = true;
                        }
                        let r = *r;
                        holder.retain(|(_, h)| *h != dst);
                        if r != dst {
                            holder.push((slot, dst));
                        }
                    } else {
                        holder.retain(|(_, h)| *h != dst);
                        holder.push((slot, dst));
                    }
                }
                // Calls execute in their own frame; slots survive, but any
                // register holding a slot value may be reused by spills in
                // the callee's caller-save code? No — registers are per-
                // frame in this machine, so only local defs invalidate.
                _ => {
                    if let Some(d) = inst.def() {
                        holder.retain(|(_, h)| *h != d);
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder};

    fn frame_module(build: impl FnOnce(&mut FuncBuilder)) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 1);
        build(&mut b);
        let mut f = b.finish();
        f.frame_slots = 8;
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    fn count_frame_ops(m: &Module) -> usize {
        m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::FrameLoad { .. } | Inst::FrameStore { .. }))
            .count()
    }

    #[test]
    fn forwards_store_to_adjacent_load() {
        let mut m = frame_module(|b| {
            let x = b.param(0);
            b.push(Inst::FrameStore {
                src: x.into(),
                slot: 0,
            });
            let y = b.fresh();
            b.push(Inst::FrameLoad { dst: y, slot: 0 });
            let z = b.add(y, 1);
            b.ret(z);
        });
        let before = run_module(&m, &[9]).unwrap();
        assert!(peephole2(&mut m.funcs[0]));
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[9]).unwrap().ret, before.ret);
        // The load became a copy.
        assert_eq!(
            m.funcs[0]
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| matches!(i, Inst::FrameLoad { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn fuses_adjacent_increments() {
        let mut m = frame_module(|b| {
            let x = b.param(0);
            b.push(Inst::Bin {
                op: BinOp::Add,
                dst: x,
                a: x.into(),
                b: 4.into(),
            });
            b.push(Inst::Bin {
                op: BinOp::Add,
                dst: x,
                a: x.into(),
                b: 8.into(),
            });
            b.ret(x);
        });
        assert!(peephole2(&mut m.funcs[0]));
        assert_eq!(m.funcs[0].inst_count(), 2); // fused add + ret
        assert_eq!(run_module(&m, &[1]).unwrap().ret, 13);
    }

    #[test]
    fn removes_dead_frame_store() {
        let mut m = frame_module(|b| {
            let x = b.param(0);
            b.push(Inst::FrameStore {
                src: x.into(),
                slot: 3,
            }); // dead
            b.push(Inst::FrameStore {
                src: Operand::Imm(5),
                slot: 3,
            });
            let y = b.fresh();
            b.push(Inst::FrameLoad { dst: y, slot: 3 });
            b.ret(y);
        });
        assert!(peephole2(&mut m.funcs[0]));
        assert_eq!(run_module(&m, &[1]).unwrap().ret, 5);
    }

    #[test]
    fn after_reload_kills_distant_reload() {
        let mut m = frame_module(|b| {
            let x = b.param(0);
            b.push(Inst::FrameStore {
                src: x.into(),
                slot: 2,
            });
            // Unrelated work in between.
            let a = b.mul(x, 3);
            let c = b.add(a, 7);
            let y = b.fresh();
            b.push(Inst::FrameLoad { dst: y, slot: 2 }); // redundant
            let z = b.add(c, y);
            b.ret(z);
        });
        let before = run_module(&m, &[4]).unwrap();
        let frames_before = count_frame_ops(&m);
        assert!(gcse_after_reload(&mut m.funcs[0]));
        // peephole2's window is too small for this; after-reload catches it.
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[4]).unwrap().ret, before.ret);
        assert!(
            m.funcs[0]
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| matches!(i, Inst::FrameLoad { .. }))
                .count()
                < frames_before
        );
    }

    #[test]
    fn after_reload_respects_holder_clobber() {
        let mut m = frame_module(|b| {
            let x = b.param(0);
            b.push(Inst::FrameStore {
                src: x.into(),
                slot: 2,
            });
            // x is redefined: it no longer holds slot 2's value.
            b.assign(x, 1000);
            let y = b.fresh();
            b.push(Inst::FrameLoad { dst: y, slot: 2 });
            b.ret(y);
        });
        let before = run_module(&m, &[4]).unwrap();
        gcse_after_reload(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[4]).unwrap().ret, before.ret);
        assert_eq!(before.ret, 4);
    }
}
