//! The `-fgcse` family: global common-subexpression elimination over memory.
//!
//! * `gcse` — the GVN engine of [`crate::pre`] with loads enabled, repeated
//!   `--param max-gcse-passes` times;
//! * `gcse-lm` — load motion: hoist loop-invariant loads to the preheader;
//! * `gcse-sm` — store motion: with `lm`, promote a loop-carried
//!   load/store memory cell to a register, storing back at the exits;
//! * `gcse-las` — load-after-store forwarding within a block;
//! * `gcse-after-reload` — post-register-allocation removal of redundant
//!   frame reloads (in [`crate::peephole`], run after allocation).

use crate::analysis::{ensure_preheader, single_defs, AliasAnalysis};
use crate::config::OptConfig;
use crate::pre::{global_value_number, GvnOptions};
use portopt_ir::{Function, Inst, Liveness, LoopForest, Operand, VReg};

/// Runs the configured gcse sub-passes on `f`. Returns `true` on change.
pub fn gcse(f: &mut Function, globals: &[(u32, u32)], cfg: &OptConfig) -> bool {
    if !cfg.gcse {
        return false;
    }
    let mut changed = false;
    for _ in 0..cfg.max_gcse_passes_value() {
        let mut pass_changed = false;
        if cfg.gcse_las {
            pass_changed |= load_after_store(f);
        }
        pass_changed |= global_value_number(
            f,
            GvnOptions {
                include_loads: true,
                globals: globals.to_vec(),
            },
        );
        if cfg.gcse_lm {
            pass_changed |= loop_load_motion(f, globals, cfg.gcse_sm);
        }
        crate::util::cleanup(f);
        changed |= pass_changed;
        if !pass_changed {
            break;
        }
    }
    changed
}

/// `-fgcse-las`: within a block, a load that follows a store to the same
/// address reads the stored value; forward it. Also forwards load-to-load.
pub fn load_after_store(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // Track the most recent store/load per (base, offset).
        let mut avail: Vec<(VReg, i64, Operand)> = Vec::new();
        for inst in &mut block.insts {
            match inst {
                Inst::Store { src, addr, offset } => {
                    let (addr, offset, src) = (*addr, *offset, *src);
                    // Invalidate entries that may alias this store.
                    avail.retain(|(a, o, _)| *a == addr && *o != offset);
                    avail.push((addr, offset, src));
                }
                Inst::Load { dst, addr, offset } => {
                    if let Some((_, _, val)) =
                        avail.iter().find(|(a, o, _)| a == addr && o == offset)
                    {
                        let (dst, val) = (*dst, *val);
                        *inst = Inst::Copy { dst, src: val };
                        changed = true;
                    } else {
                        let (dst, addr, offset) = (*dst, *addr, *offset);
                        avail.retain(|(a, o, _)| *a == addr && *o != offset);
                        avail.push((addr, offset, Operand::Reg(dst)));
                    }
                }
                Inst::Call { .. } => avail.clear(),
                _ => {
                    // A forwarded operand register may be redefined: drop
                    // entries whose value or base register is clobbered.
                    if let Some(d) = inst.def() {
                        avail.retain(|(a, _, v)| {
                            *a != d && !matches!(v, Operand::Reg(r) if *r == d)
                        });
                    }
                }
            }
        }
    }
    changed
}

/// `-fgcse-lm` (+ optional `-fgcse-sm`): loop-level load/store motion.
///
/// For each innermost loop and each memory cell `(base, offset)` with a
/// loop-invariant single-def base register:
/// * loads only, no may-aliasing stores/calls in the loop → hoist one load
///   to the preheader and rewrite in-loop loads as copies (`lm`);
/// * loads *and* stores to exactly that cell, no other aliasing accesses →
///   promote to a register: load in the preheader, copies inside, store at
///   each exit edge (`lm` + `sm`).
pub fn loop_load_motion(f: &mut Function, globals: &[(u32, u32)], enable_sm: bool) -> bool {
    let mut changed = false;
    // One promotion per call keeps analyses fresh; iterate to a fixpoint.
    loop {
        let forest = LoopForest::compute(f);
        let sd = single_defs(f);
        let aa = AliasAnalysis::compute(f, globals);
        let mut applied = false;

        'loops: for l in forest.loops.iter().rev() {
            // innermost first
            // Collect memory operations in the loop.
            let mut cells: Vec<(VReg, i64, usize, usize)> = Vec::new(); // base, off, #loads, #stores
            let mut barrier = false;
            for &b in &l.blocks {
                for inst in &f.block(b).insts {
                    match inst {
                        Inst::Load { addr, offset, .. } => {
                            if let Some(c) =
                                cells.iter_mut().find(|(a, o, ..)| a == addr && o == offset)
                            {
                                c.2 += 1;
                            } else {
                                cells.push((*addr, *offset, 1, 0));
                            }
                        }
                        Inst::Store { addr, offset, .. } => {
                            if let Some(c) =
                                cells.iter_mut().find(|(a, o, ..)| a == addr && o == offset)
                            {
                                c.3 += 1;
                            } else {
                                cells.push((*addr, *offset, 0, 1));
                            }
                        }
                        Inst::Call { .. } => barrier = true,
                        _ => {}
                    }
                }
            }
            if barrier {
                continue;
            }
            for &(base, off, nloads, nstores) in &cells {
                if !sd[base.index()] || nloads == 0 {
                    continue;
                }
                // The base must be defined outside the loop.
                let defined_in_loop = l
                    .blocks
                    .iter()
                    .any(|&b| f.block(b).insts.iter().any(|i| i.def() == Some(base)));
                if defined_in_loop {
                    continue;
                }
                // Every other memory op in the loop must be provably disjoint.
                let probe = Inst::Load {
                    dst: VReg(0),
                    addr: base,
                    offset: off,
                };
                let mut safe = true;
                for &b in &l.blocks {
                    for inst in &f.block(b).insts {
                        if let Inst::Load { addr, offset, .. } | Inst::Store { addr, offset, .. } =
                            inst
                        {
                            if (*addr, *offset) == (base, off) {
                                continue;
                            }
                            let other = inst.clone();
                            if aa.may_alias(&probe, &other) {
                                safe = false;
                            }
                        }
                    }
                }
                if !safe {
                    continue;
                }
                if nstores > 0 && !enable_sm {
                    continue; // promotion needs store motion too
                }
                // For promotion with stores, every in-loop path must keep the
                // register and the cell coherent; we ensure this by rewriting
                // *all* accesses and storing back on every exit edge.
                apply_promotion(f, l, base, off, nstores > 0);
                changed = true;
                applied = true;
                break 'loops;
            }
        }
        if !applied {
            return changed;
        }
    }
}

/// Rewrites all `(base, off)` accesses in loop `l` through a fresh register.
fn apply_promotion(f: &mut Function, l: &portopt_ir::Loop, base: VReg, off: i64, has_stores: bool) {
    let pre = ensure_preheader(f, l);
    let reg = f.new_vreg();

    // Preheader: initial load before the branch into the loop.
    let pre_insts = &mut f.block_mut(pre).insts;
    let at = pre_insts.len() - 1;
    pre_insts.insert(
        at,
        Inst::Load {
            dst: reg,
            addr: base,
            offset: off,
        },
    );

    // Rewrite in-loop accesses.
    for &b in &l.blocks {
        for inst in &mut f.block_mut(b).insts {
            match inst.clone() {
                Inst::Load { dst, addr, offset } if (addr, offset) == (base, off) => {
                    *inst = Inst::Copy {
                        dst,
                        src: Operand::Reg(reg),
                    };
                }
                Inst::Store { src, addr, offset } if (addr, offset) == (base, off) => {
                    *inst = Inst::Copy { dst: reg, src };
                }
                _ => {}
            }
        }
    }

    if has_stores {
        // Store back on every loop-exit edge: split each exiting edge with a
        // flush block. Exits are successors of loop blocks outside the loop.
        let loop_blocks = l.blocks.clone();
        for &b in &loop_blocks {
            let succs = f.block(b).successors();
            for s in succs {
                if loop_blocks.contains(&s) {
                    continue;
                }
                let flush = f.new_block();
                f.block_mut(flush).insts.push(Inst::Store {
                    src: Operand::Reg(reg),
                    addr: base,
                    offset: off,
                });
                f.block_mut(flush).insts.push(Inst::Br { target: s });
                if let Some(t) = f.block_mut(b).insts.last_mut() {
                    t.map_targets(|old| if old == s { flush } else { old });
                }
            }
        }
    }
    let _ = Liveness::compute(f); // cheap sanity: analyses still computable
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder};

    fn close(m: &Module) {
        verify_module(m).unwrap();
    }

    /// acc-in-memory loop: the canonical lm+sm promotion target.
    fn acc_in_memory() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("acc", 1);
        let (_, data) = mb.global("data", 64);
        let mut b = FuncBuilder::new("main", 0);
        let pa = b.iconst(base as i64);
        let pd = b.iconst(data as i64);
        b.counted_loop(0, 64, 1, |b, i| {
            let off = b.shl(i, 2);
            let addr = b.add(pd, off);
            let v = b.load(addr, 0);
            let acc = b.load(pa, 0); // load-add-store accumulate
            let t = b.add(acc, v);
            b.store(t, pa, 0);
        });
        let r = b.load(pa, 0);
        b.ret(r);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    fn count_mem(m: &Module) -> usize {
        m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. } | Inst::Store { .. }))
            .count()
    }

    #[test]
    fn promotion_removes_in_loop_traffic() {
        let mut m = acc_in_memory();
        // Seed the data array.
        for (i, w) in (0..64).zip(m.globals[1].init.iter_mut()) {
            *w = i;
        }
        m.globals[1].init = (0..64).collect();
        let before = run_module(&m, &[]).unwrap();
        let mem_before = count_mem(&m);
        let globals = crate::analysis::global_ranges(&m);
        assert!(loop_load_motion(&mut m.funcs[0], &globals, true));
        crate::util::cleanup(&mut m.funcs[0]);
        close(&m);
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(before.mem_hash, after.mem_hash);
        // Static count stays flat (preheader load + exit store appear) but
        // the in-loop acc load/store are gone: dynamic traffic collapses.
        assert!(count_mem(&m) <= mem_before);
        assert!(after.dyn_insts < before.dyn_insts);
    }

    #[test]
    fn promotion_requires_sm_for_stores() {
        let mut m = acc_in_memory();
        // lm only: the accumulate cell has stores, must be left alone.
        let globals = crate::analysis::global_ranges(&m);
        assert!(!loop_load_motion(&mut m.funcs[0], &globals, false));
    }

    #[test]
    fn hoists_read_only_loop_invariant_load() {
        let mut mb = ModuleBuilder::new("t");
        let (_, kbase) = mb.global_init("k", 1, vec![21]);
        let mut b = FuncBuilder::new("main", 0);
        let pk = b.iconst(kbase as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 50, 1, |b, _i| {
            let k = b.load(pk, 0); // invariant, read-only
            let t = b.add(acc, k);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[]).unwrap();
        let globals = crate::analysis::global_ranges(&m);
        assert!(loop_load_motion(&mut m.funcs[0], &globals, false));
        crate::util::cleanup(&mut m.funcs[0]);
        close(&m);
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret, 21 * 50);
        assert!(after.dyn_insts < before.dyn_insts);
        // No loads remain inside the loop body.
        let lf = portopt_ir::LoopForest::compute(&m.funcs[0]);
        for l in &lf.loops {
            for &bk in &l.blocks {
                for i in &m.funcs[0].block(bk).insts {
                    assert!(!matches!(i, Inst::Load { .. }), "load left in loop: {i}");
                }
            }
        }
    }

    #[test]
    fn aliasing_store_blocks_motion() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("buf", 8);
        let mut b = FuncBuilder::new("main", 1);
        let idx = b.param(0);
        let p = b.iconst(base as i64);
        let q = b.add(p, idx); // unknown address
        let acc = b.iconst(0);
        b.counted_loop(0, 8, 1, |b, _i| {
            let v = b.load(p, 0);
            b.store(0, q, 0); // may alias p+0
            let t = b.add(acc, v);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let globals = crate::analysis::global_ranges(&m);
        assert!(!loop_load_motion(&mut m.funcs[0], &globals, true));
    }

    #[test]
    fn las_forwards_stored_value() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 2);
        let mut b = FuncBuilder::new("main", 1);
        let p = b.iconst(base as i64);
        b.store(b.param(0), p, 0);
        let v = b.load(p, 0); // forwarded from the store
        let w = b.add(v, 1);
        b.ret(w);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        assert!(load_after_store(&mut m.funcs[0]));
        close(&m);
        assert_eq!(run_module(&m, &[9]).unwrap().ret, 10);
        assert_eq!(count_mem(&m), 1); // only the store remains
    }

    #[test]
    fn las_respects_clobbered_base() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 4);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.fresh();
        b.assign(p, base as i64);
        b.store(1, p, 0);
        b.assign(p, base as i64 + 4); // base register redefined
        let v = b.load(p, 0); // different cell: must NOT forward
        b.ret(v);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[]).unwrap();
        load_after_store(&mut m.funcs[0]);
        close(&m);
        assert_eq!(run_module(&m, &[]).unwrap().ret, before.ret);
        assert_eq!(before.ret, 0);
    }

    #[test]
    fn full_gcse_pipeline_preserves_semantics() {
        let mut m = acc_in_memory();
        m.globals[1].init = (0..64).map(|i| i * 3).collect();
        let before = run_module(&m, &[]).unwrap();
        let cfg = OptConfig::o3();
        let globals = crate::analysis::global_ranges(&m);
        gcse(&mut m.funcs[0], &globals, &cfg);
        close(&m);
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(before.mem_hash, after.mem_hash);
        assert!(after.dyn_insts <= before.dyn_insts);
    }
}
