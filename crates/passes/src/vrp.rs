//! `-ftree-vrp`: predicate-based value-range propagation.
//!
//! A lightweight take on gcc's VRP: facts of the form `a pred b` are derived
//! from conditional branch edges and used to fold comparisons that are
//! implied (or contradicted) by a dominating fact. This is the pass that
//! removes redundant bound re-checks inside loops — the `if (i < n)` guards
//! that source code (and our benchmark suite) is full of.

use crate::analysis::single_defs;
use portopt_ir::{BlockId, Cfg, DomTree, Function, Inst, Operand, Pred};

/// A known predicate fact about two operands, valid within some blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    pred: Pred,
    a: Operand,
    b: Operand,
}

/// Does `have` imply `want` is true, or imply it is false?
/// Returns `Some(true)` / `Some(false)` / `None` (no implication).
fn implies(have: Pred, want: Pred) -> Option<bool> {
    use Pred::*;
    // Implication table over identical operand pairs (a ? b).
    let t: &[Pred] = match have {
        Eq => &[Eq, Le, Ge, UGe],
        Ne => &[Ne],
        Lt => &[Lt, Le, Ne],
        Le => &[Le],
        Gt => &[Gt, Ge, Ne],
        Ge => &[Ge],
        ULt => &[ULt, Ne],
        UGe => &[UGe],
    };
    if t.contains(&want) {
        return Some(true);
    }
    // have implies !want  <=>  have implies want.negated() is true.
    let tneg: &[Pred] = match have {
        Eq => &[Ne, Lt, Gt, ULt],
        Ne => &[Eq],
        Lt => &[Ge, Gt, Eq],
        Le => &[Gt],
        Gt => &[Le, Lt, Eq],
        Ge => &[Lt],
        ULt => &[UGe, Eq],
        UGe => &[ULt],
    };
    if tneg.contains(&want) {
        return Some(false);
    }
    None
}

/// Runs VRP on `f`. Returns `true` if any comparison was folded.
pub fn tree_vrp(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute_with_cfg(f, &cfg);
    let sd = single_defs(f);

    // Collect facts: for `condbr c, T, E` where `c = cmp pred a b` is the
    // single def of c and a, b are stable (single-def regs or immediates),
    // the fact `a pred b` holds in T (if T's only pred is this block) and
    // its negation holds in E likewise.
    let mut facts: Vec<(BlockId, Fact)> = Vec::new();
    for (bi, block) in f.iter_blocks() {
        let Some(Inst::CondBr { cond, then_, else_ }) = block.insts.last() else {
            continue;
        };
        if !sd[cond.index()] {
            continue;
        }
        // Find the defining compare.
        let mut def: Option<(Pred, Operand, Operand)> = None;
        for fb in &f.blocks {
            for i in &fb.insts {
                if let Inst::Cmp { pred, dst, a, b } = i {
                    if dst == cond {
                        def = Some((*pred, *a, *b));
                    }
                }
            }
        }
        let Some((pred, a, b)) = def else { continue };
        let stable = |o: Operand| match o {
            Operand::Imm(_) => true,
            Operand::Reg(r) => sd[r.index()],
        };
        if !stable(a) || !stable(b) {
            continue;
        }
        if cfg.preds(*then_).len() == 1 && *then_ != *else_ {
            facts.push((*then_, Fact { pred, a, b }));
        }
        if cfg.preds(*else_).len() == 1 && *then_ != *else_ {
            facts.push((
                *else_,
                Fact {
                    pred: pred.negated(),
                    a,
                    b,
                },
            ));
        }
        let _ = bi;
    }

    // Fold any compare implied by a fact whose scope block dominates it.
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let here = BlockId(bi as u32);
        for k in 0..f.blocks[bi].insts.len() {
            let Inst::Cmp { pred, dst, a, b } = f.blocks[bi].insts[k] else {
                continue;
            };
            let mut fold: Option<i64> = None;
            for (scope, fact) in &facts {
                if !dt.dominates(*scope, here) {
                    continue;
                }
                // The fact's compare must not be the one being folded in the
                // same block where the fact originates: dominance of the
                // scope block already ensures the edge was taken.
                if fact.a == a && fact.b == b {
                    if let Some(v) = implies(fact.pred, pred) {
                        fold = Some(v as i64);
                        break;
                    }
                }
                // Swapped operands: a pred b == b pred.swapped a (signed only).
                if fact.a == b && fact.b == a && !matches!(fact.pred, Pred::ULt | Pred::UGe) {
                    if let Some(v) = implies(fact.pred.swapped(), pred) {
                        fold = Some(v as i64);
                        break;
                    }
                }
            }
            if let Some(v) = fold {
                f.blocks[bi].insts[k] = Inst::Copy {
                    dst,
                    src: Operand::Imm(v),
                };
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn implication_table_is_sound() {
        // Exhaustively check implications against concrete evaluation.
        for have in Pred::ALL {
            for want in Pred::ALL {
                if let Some(v) = implies(have, want) {
                    for a in [-3i64, -1, 0, 1, 2, 100] {
                        for b in [-3i64, -1, 0, 1, 2, 100] {
                            if have.eval(a, b) == 1 {
                                assert_eq!(
                                    want.eval(a, b),
                                    v as i64,
                                    "{have} => {want}={v} fails on ({a},{b})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn folds_redundant_guard_in_branch_arm() {
        // if (x < 10) { y = (x < 10) ? 1 : 0; ... } — inner test folds.
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Lt, x, 10);
        let out = b.fresh();
        b.if_else(
            c,
            |b| {
                let c2 = b.cmp(Pred::Lt, x, 10); // implied true
                b.assign(out, c2);
            },
            |b| {
                let c3 = b.cmp(Pred::Ge, x, 10); // implied true here
                b.assign(out, c3);
            },
        );
        b.ret(out);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[5]).unwrap();
        assert!(tree_vrp(&mut f));
        cleanup(&mut f);
        let m = close(f.clone());
        assert_eq!(run_module(&m, &[5]).unwrap().ret, before.ret);
        assert_eq!(run_module(&m, &[50]).unwrap().ret, 1);
        // Both inner compares must be gone.
        let cmps = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Cmp { .. }))
            .count();
        assert_eq!(cmps, 1, "only the guard compare remains");
    }

    #[test]
    fn folds_contradicted_compare() {
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.fresh();
        b.if_else(
            c,
            |b| {
                let c2 = b.cmp(Pred::Eq, x, 0); // contradicted: x > 0
                b.assign(out, c2);
            },
            |b| b.assign(out, 9),
        );
        b.ret(out);
        let mut f = b.finish();
        assert!(tree_vrp(&mut f));
        let m = close(f);
        assert_eq!(run_module(&m, &[3]).unwrap().ret, 0);
        assert_eq!(run_module(&m, &[-3]).unwrap().ret, 9);
    }

    #[test]
    fn does_not_fold_without_dominating_fact() {
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let c1 = b.cmp(Pred::Lt, x, 10);
        let c2 = b.cmp(Pred::Lt, x, 10); // same block as the guard: no fact
        let s = b.add(c1, c2);
        b.ret(s);
        let mut f = b.finish();
        assert!(!tree_vrp(&mut f));
    }

    #[test]
    fn handles_loop_header_facts() {
        // In a counted loop body, i < n holds — a redundant re-check folds.
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let guard = b.cmp(Pred::Lt, i, n); // always true in body
            b.if_then(guard, |b| {
                let t = b.add(acc, i);
                b.assign(acc, t);
            });
        });
        b.ret(acc);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[10]).unwrap();
        // i is multi-def (loop update), so the fact uses the *compare's*
        // operands; i being multi-def blocks the fact. This documents the
        // conservative behaviour: no fold, semantics preserved.
        let changed = tree_vrp(&mut f);
        cleanup(&mut f);
        let m = close(f);
        let after = run_module(&m, &[10]).unwrap();
        assert_eq!(before.ret, after.ret);
        let _ = changed;
    }
}
