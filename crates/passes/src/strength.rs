//! `-fstrength-reduce`: induction-variable strength reduction.
//!
//! Multiplications (and shifts) of a basic induction variable by a
//! loop-invariant constant are replaced by an additive recurrence: the
//! classic `a[i]` addressing pattern `off = i << 2` becomes an address
//! register bumped by 4 each iteration. This trades MAC/shifter work for
//! ALU adds and shortens the dependence chain feeding loads.

use crate::analysis::single_defs;
use portopt_ir::{BinOp, BlockId, Function, Inst, Loop, LoopForest, Operand, VReg};

/// A recognised basic induction variable.
#[derive(Debug, Clone, Copy)]
pub struct BasicIv {
    /// The IV register.
    pub reg: VReg,
    /// Per-iteration increment (always an immediate).
    pub step: i64,
    /// Location of the in-loop update instruction (block, index of the
    /// instruction that writes `reg`).
    pub update_at: (BlockId, usize),
}

/// Finds the basic induction variables of loop `l`: registers with exactly
/// one in-loop definition of the form `i = i + imm` or the two-instruction
/// builder pattern `next = add i, imm; i = next`.
pub fn find_basic_ivs(f: &Function, l: &Loop) -> Vec<BasicIv> {
    let mut out = Vec::new();
    // Count in-loop defs per register.
    let mut defs: Vec<u32> = vec![0; f.vreg_count as usize];
    for &b in &l.blocks {
        for i in &f.block(b).insts {
            if let Some(d) = i.def() {
                defs[d.index()] += 1;
            }
        }
    }
    for &b in &l.blocks {
        let insts = &f.block(b).insts;
        for (k, inst) in insts.iter().enumerate() {
            // Direct form: i = add i, imm.
            if let Inst::Bin {
                op: BinOp::Add,
                dst,
                a: Operand::Reg(a),
                b: Operand::Imm(s),
            } = inst
            {
                if dst == a && defs[dst.index()] == 1 {
                    out.push(BasicIv {
                        reg: *dst,
                        step: *s,
                        update_at: (b, k),
                    });
                }
            }
            // Builder form: i = copy next, where next = add i, imm.
            if let Inst::Copy {
                dst,
                src: Operand::Reg(next),
            } = inst
            {
                if defs[dst.index()] != 1 {
                    continue;
                }
                // `next` must be single-def in the loop and defined as
                // add(dst, imm) earlier in this block.
                let def = insts[..k].iter().rev().find(|i| i.def() == Some(*next));
                if let Some(Inst::Bin {
                    op: BinOp::Add,
                    a: Operand::Reg(base),
                    b: Operand::Imm(s),
                    ..
                }) = def
                {
                    if base == dst && defs[next.index()] == 1 {
                        out.push(BasicIv {
                            reg: *dst,
                            step: *s,
                            update_at: (b, k),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Maximum derived IVs introduced per loop (register-pressure guard, like
/// gcc's internal limits).
const MAX_DERIVED_PER_LOOP: usize = 6;

/// Runs strength reduction on `f`. Returns `true` if anything changed.
pub fn strength_reduce(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let forest = LoopForest::compute(f);
        let sd = single_defs(f);
        let mut applied = false;

        'outer: for l in forest.loops.iter().rev() {
            let ivs = find_basic_ivs(f, l);
            let introduced = 0usize;
            for iv in &ivs {
                if introduced >= MAX_DERIVED_PER_LOOP {
                    break;
                }
                // Find a derived computation t = i * k or t = i << c in-loop.
                for &b in &l.blocks {
                    for k in 0..f.block(b).insts.len() {
                        let inst = &f.block(b).insts[k];
                        let derived = match *inst {
                            Inst::Bin {
                                op: BinOp::Mul,
                                dst,
                                a: Operand::Reg(r),
                                b: Operand::Imm(c),
                            }
                            | Inst::Bin {
                                op: BinOp::Mul,
                                dst,
                                a: Operand::Imm(c),
                                b: Operand::Reg(r),
                            } if r == iv.reg => Some((dst, BinOp::Mul, c)),
                            Inst::Bin {
                                op: BinOp::Shl,
                                dst,
                                a: Operand::Reg(r),
                                b: Operand::Imm(c),
                            } if r == iv.reg && (0..32).contains(&c) => Some((dst, BinOp::Shl, c)),
                            _ => None,
                        };
                        let Some((t, op, c)) = derived else { continue };
                        if !sd[t.index()] {
                            continue;
                        }
                        apply_reduction(f, l, *iv, (b, k), t, op, c);
                        changed = true;
                        applied = true;
                        let _ = introduced; // one reduction per round
                        break 'outer; // analyses stale: restart
                    }
                }
            }
        }
        if !applied {
            return changed;
        }
    }
}

/// Rewires `t = op(iv, c)` at `site` into an additive recurrence.
fn apply_reduction(
    f: &mut Function,
    l: &Loop,
    iv: BasicIv,
    site: (BlockId, usize),
    t: VReg,
    op: BinOp,
    c: i64,
) {
    let u = f.new_vreg();
    let u_next = f.new_vreg();
    let delta = match op {
        BinOp::Mul => iv.step.wrapping_mul(c),
        BinOp::Shl => iv.step.wrapping_shl((c & 63) as u32),
        _ => unreachable!("only mul/shl are reduced"),
    };

    // Preheader: u = op(iv, c) with the IV's entry value.
    let pre = crate::analysis::ensure_preheader(f, l);
    let at = f.block(pre).insts.len() - 1;
    f.block_mut(pre).insts.insert(
        at,
        Inst::Bin {
            op,
            dst: u,
            a: Operand::Reg(iv.reg),
            b: Operand::Imm(c),
        },
    );

    // Replace the derived computation with a copy.
    f.block_mut(site.0).insts[site.1] = Inst::Copy {
        dst: t,
        src: Operand::Reg(u),
    };

    // Insert the recurrence right after the IV update.
    let (ub, uk) = iv.update_at;
    let insts = &mut f.block_mut(ub).insts;
    insts.insert(
        uk + 1,
        Inst::Bin {
            op: BinOp::Add,
            dst: u_next,
            a: Operand::Reg(u),
            b: Operand::Imm(delta),
        },
    );
    insts.insert(
        uk + 2,
        Inst::Copy {
            dst: u,
            src: Operand::Reg(u_next),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    fn count_op(m: &Module, op: BinOp) -> usize {
        m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: o, .. } if *o == op))
            .count()
    }

    #[test]
    fn finds_builder_pattern_iv() {
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let f = b.finish();
        let forest = LoopForest::compute(&f);
        let ivs = find_basic_ivs(&f, &forest.loops[0]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 1);
    }

    #[test]
    fn reduces_multiplication_to_addition() {
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.mul(i, 12); // derived IV
            let s = b.add(acc, t);
            b.assign(acc, s);
        });
        b.ret(acc);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[50]).unwrap();
        assert!(strength_reduce(&mut f));
        cleanup(&mut f);
        let m = close(f);
        let after = run_module(&m, &[50]).unwrap();
        assert_eq!(before.ret, after.ret);
        // The loop-carried mul is gone (one mul may remain in the preheader,
        // and cleanup folds it since i=0 there).
        assert_eq!(count_op(&m, BinOp::Mul), 0);
    }

    #[test]
    fn reduces_shift_addressing() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("a", 64);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        b.counted_loop(0, 64, 1, |b, i| {
            let off = b.shl(i, 2); // reduced to +4 recurrence
            let addr = b.add(p, off);
            b.store(i, addr, 0);
        });
        let v = b.load(p, 4 * 63);
        b.ret(v);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[]).unwrap();
        assert!(strength_reduce(&mut m.funcs[0]));
        cleanup(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret, 63);
        assert_eq!(before.mem_hash, after.mem_hash);
        assert_eq!(count_op(&m, BinOp::Shl), 0, "shift reduced away");
    }

    #[test]
    fn non_constant_multiplier_untouched() {
        let mut b = FuncBuilder::new("main", 2);
        let n = b.param(0);
        let k = b.param(1);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.mul(i, k); // k is a register: LICM/linear but not SR
            let s = b.add(acc, t);
            b.assign(acc, s);
        });
        b.ret(acc);
        let mut f = b.finish();
        assert!(!strength_reduce(&mut f));
    }

    #[test]
    fn preserves_semantics_with_step_and_large_constants() {
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(3, n, 5, |b, i| {
            let t = b.mul(i, -7);
            let s = b.add(acc, t);
            b.assign(acc, s);
        });
        b.ret(acc);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[101]).unwrap();
        strength_reduce(&mut f);
        cleanup(&mut f);
        let m = close(f);
        assert_eq!(run_module(&m, &[101]).unwrap().ret, before.ret);
    }
}
