//! `-fschedule-insns` (pre-allocation list scheduling) with
//! `-fsched-interblock` and `-fsched-spec`.
//!
//! The intra-block scheduler reorders instructions to hide load and multiply
//! latency on the in-order XScale-style pipeline. Interblock scheduling
//! hoists work from a single-predecessor successor into the branch shadow;
//! speculative scheduling additionally hoists *loads* above conditional
//! branches (safe here — loads cannot trap — but it lengthens live ranges
//! and wastes issue slots on the other path: the classic reason the paper's
//! model learns to turn it off on small-cache machines).

use crate::analysis::AliasAnalysis;
use portopt_ir::{BlockId, Cfg, Function, Inst, Liveness};

/// Issue latencies used for scheduling priorities (cycles).
pub fn latency(inst: &Inst) -> u32 {
    match inst {
        Inst::Load { .. } | Inst::FrameLoad { .. } => 3,
        Inst::Bin { op, .. } if op.is_long_latency() => 16,
        Inst::Bin { op, .. } if op.uses_mac() => 2,
        _ => 1,
    }
}

/// Schedules every block of `f`; `interblock`/`spec` enable the extended
/// modes. Returns `true` if any instruction moved.
pub fn schedule_insns(
    f: &mut Function,
    globals: &[(u32, u32)],
    interblock: bool,
    spec: bool,
) -> bool {
    let aa = AliasAnalysis::compute(f, globals);
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        changed |= schedule_block(f, BlockId(bi as u32), &aa);
    }
    if interblock {
        changed |= interblock_hoist(f, globals, spec);
        // Hoisting exposes new intra-block opportunities.
        let aa = AliasAnalysis::compute(f, globals);
        for bi in 0..f.blocks.len() {
            changed |= schedule_block(f, BlockId(bi as u32), &aa);
        }
    }
    changed
}

/// Dependence-respecting list scheduling of one block. Returns `true` if
/// the order changed.
fn schedule_block(f: &mut Function, bi: BlockId, aa: &AliasAnalysis) -> bool {
    let body_len = f.block(bi).body().len();
    if body_len < 3 {
        return false;
    }
    let insts: Vec<Inst> = f.block(bi).body().to_vec();
    let n = insts.len();

    // Build the dependence DAG.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let edge =
        |from: usize, to: usize, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
            if !succs[from].contains(&to) {
                succs[from].push(to);
                preds[to].push(from);
            }
        };
    for j in 0..n {
        for i in 0..j {
            let (a, b) = (&insts[i], &insts[j]);
            let mut dep = false;
            // RAW: j reads something i defines.
            if let Some(d) = a.def() {
                b.for_each_use(|r| {
                    if r == d {
                        dep = true;
                    }
                });
            }
            // WAR: j defines something i reads.
            if let Some(d) = b.def() {
                a.for_each_use(|r| {
                    if r == d {
                        dep = true;
                    }
                });
            }
            // WAW.
            if a.def().is_some() && a.def() == b.def() {
                dep = true;
            }
            // Memory and call ordering.
            let mem_a = a.is_memory() || a.is_call();
            let mem_b = b.is_memory() || b.is_call();
            if mem_a && mem_b {
                let store_like = |i: &Inst| {
                    matches!(i, Inst::Store { .. } | Inst::FrameStore { .. }) || i.is_call()
                };
                if store_like(a) || store_like(b) {
                    // Loads may pass each other; anything involving a store
                    // or call is ordered unless provably disjoint.
                    if a.is_call() || b.is_call() || aa.may_alias(a, b) {
                        dep = true;
                    }
                }
            }
            if dep {
                edge(i, j, &mut preds, &mut succs);
            }
        }
    }

    // Priority: longest latency-weighted path to the end of the block.
    let mut prio = vec![0u32; n];
    for i in (0..n).rev() {
        let tail = succs[i].iter().map(|&s| prio[s]).max().unwrap_or(0);
        prio[i] = latency(&insts[i]) + tail;
    }

    // Greedy list scheduling; ties broken by original position (stability).
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .max_by_key(|(_, &i)| (prio[i], std::cmp::Reverse(i)))
        .map(|(p, _)| p)
    {
        let i = ready.swap_remove(pos);
        order.push(i);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n);

    if order.iter().enumerate().all(|(k, &i)| k == i) {
        return false;
    }
    let terminator = f.block(bi).insts[body_len..].to_vec();
    let mut new_insts: Vec<Inst> = order.into_iter().map(|i| insts[i].clone()).collect();
    new_insts.extend(terminator);
    f.block_mut(bi).insts = new_insts;
    true
}

/// Maximum instructions hoisted across one edge.
const MAX_HOIST: usize = 3;

/// Hoists instructions from single-predecessor successors into the branch
/// shadow of their predecessor.
fn interblock_hoist(f: &mut Function, globals: &[(u32, u32)], spec: bool) -> bool {
    let mut changed = false;
    loop {
        let cfg = Cfg::compute(f);
        let live = Liveness::compute_with_cfg(f, &cfg);
        let mut moved = false;

        'outer: for bi in 0..f.blocks.len() {
            let b = BlockId(bi as u32);
            let Some(Inst::CondBr { cond, then_, else_ }) = f.block(b).insts.last().cloned() else {
                continue;
            };
            if then_ == else_ {
                continue;
            }
            for (s, other) in [(then_, else_), (else_, then_)] {
                if cfg.preds(s).len() != 1 || s == b {
                    continue;
                }
                // Candidate: an instruction of `s` that is pure (a load only
                // when speculation is on), whose operands are not defined
                // earlier in `s`, whose dst is not read earlier in `s` (WAR),
                // is not the branch condition, and is not live into the
                // other arm (executing it there must be harmless).
                let mut defined_in_s: Vec<bool> = vec![false; f.vreg_count as usize];
                let mut read_in_s: Vec<bool> = vec![false; f.vreg_count as usize];
                let hoisted = 0usize;
                for k in 0..f.block(s).body().len() {
                    if hoisted >= MAX_HOIST {
                        break;
                    }
                    let inst = f.block(s).insts[k].clone();
                    if let Some(d) = inst.def() {
                        if defined_in_s[d.index()] {
                            break;
                        }
                    }
                    let is_load = matches!(inst, Inst::Load { .. } | Inst::FrameLoad { .. });
                    let eligible = inst.is_pure() && (!is_load || spec) && !inst.is_terminator();
                    if !eligible {
                        // Stop extending the window past non-hoistable
                        // instructions.
                        break;
                    }
                    let mut operands_ok = true;
                    inst.for_each_use(|r| {
                        if defined_in_s[r.index()] {
                            operands_ok = false;
                        }
                    });
                    let Some(d) = inst.def() else { break };
                    let dst_safe =
                        !live.inp(other).contains(d.index()) && d != cond && !read_in_s[d.index()];
                    if !operands_ok || !dst_safe {
                        defined_in_s[d.index()] = true;
                        inst.for_each_use(|r| read_in_s[r.index()] = true);
                        continue;
                    }
                    // Hoist: remove from s, insert before b's terminator.
                    let inst = f.block_mut(s).insts.remove(k);
                    let at = f.block(b).insts.len() - 1;
                    f.block_mut(b).insts.insert(at, inst);
                    moved = true;
                    changed = true;
                    let _ = hoisted; // one hoist per round: liveness is stale
                    break 'outer;
                }
            }
        }
        if !moved {
            let _ = globals;
            return changed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder, Operand, Pred, VReg};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    /// Position of the first load and its first consumer in a block.
    fn load_use_gap(f: &Function, b: BlockId) -> Option<usize> {
        let insts = f.block(b).body();
        let (li, ld) = insts.iter().enumerate().find_map(|(k, i)| match i {
            Inst::Load { dst, .. } => Some((k, *dst)),
            _ => None,
        })?;
        let use_at = insts.iter().enumerate().skip(li + 1).find_map(|(k, i)| {
            let mut hit = false;
            i.for_each_use(|r| {
                if r == ld {
                    hit = true;
                }
            });
            hit.then_some(k)
        })?;
        Some(use_at - li)
    }

    #[test]
    fn separates_load_from_consumer() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global_init("g", 4, vec![11, 22, 33, 44]);
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let p = b.iconst(base as i64);
        let v = b.load(p, 0);
        let w = b.add(v, 1); // consumer right after the load
        let a1 = b.mul(x, y); // independent work that can fill the gap
        let a2 = b.add(a1, x);
        let a3 = b.xor(a2, y);
        let s1 = b.add(w, a3);
        b.ret(s1);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[3, 4]).unwrap();
        let gap_before = load_use_gap(&f, BlockId(0)).unwrap();
        assert!(schedule_insns(&mut f, &[], false, false));
        let m = close(f.clone());
        assert_eq!(run_module(&m, &[3, 4]).unwrap().ret, before.ret);
        let gap_after = load_use_gap(&f, BlockId(0)).unwrap();
        assert!(gap_after > gap_before, "{gap_before} -> {gap_after}");
    }

    #[test]
    fn respects_store_load_order() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 4);
        let mut b = FuncBuilder::new("main", 1);
        let p = b.iconst(base as i64);
        b.store(b.param(0), p, 0);
        let v = b.load(p, 0); // must stay after the store
        let q = b.fresh();
        b.assign(q, p); // may-alias base
        b.store(99, q, 0);
        let v2 = b.load(p, 0); // must stay after the second store
        let s = b.add(v, v2);
        b.ret(s);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[5]).unwrap();
        schedule_insns(&mut f, &[], false, false);
        let m = close(f);
        assert_eq!(run_module(&m, &[5]).unwrap().ret, before.ret);
        assert_eq!(before.ret, 5 + 99);
    }

    #[test]
    fn interblock_hoists_pure_work() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let c = b.cmp(Pred::Gt, x, 0);
        let t = b.block();
        let e = b.block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        let m1 = b.mul(x, y);
        let m2 = b.mul(m1, y);
        b.ret(m2);
        b.switch_to(e);
        b.ret(0);
        let mut f = b.finish();
        let entry_len_before = f.block(BlockId(0)).insts.len();
        assert!(schedule_insns(&mut f, &[], true, false));
        // The first mul moved into the entry block.
        assert!(f.block(BlockId(0)).insts.len() > entry_len_before);
        let m = close(f);
        assert_eq!(run_module(&m, &[2, 3]).unwrap().ret, 18);
        assert_eq!(run_module(&m, &[-2, 3]).unwrap().ret, 0);
    }

    #[test]
    fn speculative_load_hoist_requires_spec_flag() {
        let build = || {
            let mut mb = ModuleBuilder::new("t");
            let (_, base) = mb.global_init("g", 2, vec![7, 8]);
            let mut b = FuncBuilder::new("main", 1);
            let x = b.param(0);
            let p = b.iconst(base as i64);
            let c = b.cmp(Pred::Gt, x, 0);
            let t = b.block();
            let e = b.block();
            b.cond_br(c, t, e);
            b.switch_to(t);
            let v = b.load(p, 0);
            let w = b.add(v, x);
            b.ret(w);
            b.switch_to(e);
            b.ret(0);
            let id = mb.add(b.finish());
            mb.entry(id);
            mb.finish()
        };

        let in_entry = |f: &Function| {
            f.block(BlockId(0))
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Load { .. }))
        };
        let mut m_nospec = build();
        schedule_insns(&mut m_nospec.funcs[0], &[], true, false);
        assert!(
            !in_entry(&m_nospec.funcs[0]),
            "load hoisted without -fsched-spec"
        );

        let mut m_spec = build();
        schedule_insns(&mut m_spec.funcs[0], &[], true, true);
        assert!(
            in_entry(&m_spec.funcs[0]),
            "load not hoisted with -fsched-spec"
        );
        verify_module(&m_spec).unwrap();
        assert_eq!(run_module(&m_spec, &[1]).unwrap().ret, 8);
        assert_eq!(run_module(&m_spec, &[-1]).unwrap().ret, 0);
    }

    #[test]
    fn does_not_hoist_when_dst_live_on_other_path() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let shared = b.fresh();
        b.assign(shared, y);
        let c = b.cmp(Pred::Gt, x, 0);
        let t = b.block();
        let e = b.block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        // Redefines `shared`, which the other path returns.
        b.push(Inst::Bin {
            op: portopt_ir::BinOp::Mul,
            dst: shared,
            a: Operand::Reg(x),
            b: Operand::Reg(y),
        });
        let r = b.add(shared, 1);
        b.ret(r);
        b.switch_to(e);
        b.ret(shared);
        let mut f = b.finish();
        schedule_insns(&mut f, &[], true, true);
        let m = close(f);
        // If the mul were hoisted, the else path would return x*y.
        assert_eq!(run_module(&m, &[-1, 9]).unwrap().ret, 9);
        assert_eq!(run_module(&m, &[2, 9]).unwrap().ret, 19);
        let _ = VReg(0);
    }
}
