//! RTL-level common-subexpression elimination (`cse1` in gcc).
//!
//! The base pass is always on (as in gcc at `-O1` and above) and works on
//! one basic block at a time with a value table keyed on operand *values*
//! (not just register names): copies are tracked, so `b = a; c = b + 1;
//! d = a + 1` eliminates `d`. The two Figure-3 flags extend its scope:
//!
//! * `-fcse-follow-jumps` — the value table is carried into a successor
//!   that has exactly one predecessor (following the jump);
//! * `-fcse-skip-blocks` — while following, a conditional branch may be
//!   "skipped": the table is carried into a successor with a single
//!   predecessor even when the path passes a side-effect-free diamond arm.
//!   We implement the practically-relevant case: carrying the table into
//!   both arms of a conditional branch when each arm has one predecessor.

use portopt_ir::{BinOp, BlockId, Cfg, Function, Inst, Operand, Pred, VReg};
use std::collections::HashMap;

/// Value-number table for one CSE walk.
#[derive(Debug, Clone, Default)]
struct Table {
    /// Register → value number.
    reg_vn: HashMap<VReg, u32>,
    /// Constant → value number. Must live *inside* the table: value numbers
    /// are only meaningful against this table's counter.
    consts: HashMap<i64, u32>,
    /// Expression (op, vn, vn) → (value number, defining register).
    expr: HashMap<(ExprOp, u32, u32), (u32, VReg)>,
    /// Memory: (base vn, offset) → (value vn, register holding it).
    mem: HashMap<(u32, i64), (u32, VReg)>,
    next_vn: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExprOp {
    Bin(BinOp),
    Cmp(Pred),
}

impl Table {
    fn fresh(&mut self) -> u32 {
        self.next_vn += 1;
        self.next_vn
    }

    fn vn_of_reg(&mut self, r: VReg) -> u32 {
        if let Some(&v) = self.reg_vn.get(&r) {
            return v;
        }
        let v = self.fresh();
        self.reg_vn.insert(r, v);
        v
    }

    fn vn_of_operand(&mut self, o: &Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.vn_of_reg(*r),
            Operand::Imm(v) => {
                if let Some(&vn) = self.consts.get(v) {
                    vn
                } else {
                    let vn = self.fresh();
                    self.consts.insert(*v, vn);
                    vn
                }
            }
        }
    }

    /// Invalidate expression/memory entries whose *holder register* is `r`.
    fn clobber_holder(&mut self, r: VReg) {
        self.expr.retain(|_, (_, h)| *h != r);
        self.mem.retain(|_, (_, h)| *h != r);
    }
}

/// Runs CSE over `f` with the given scope extensions. Returns `true` if
/// anything changed.
pub fn cse(f: &mut Function, follow_jumps: bool, skip_blocks: bool) -> bool {
    let cfg = Cfg::compute(f);
    let n = f.blocks.len();
    let mut changed = false;

    // Process extended regions starting from blocks that are not extended
    // into (i.e. blocks whose table cannot be inherited), walking forward.
    let mut inherits: Vec<bool> = vec![false; n];
    if follow_jumps {
        for bi in 0..n {
            // A block inherits when it has exactly one predecessor.
            inherits[bi] = cfg.preds(BlockId(bi as u32)).len() == 1;
        }
    }

    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] || inherits[start] {
            continue;
        }
        // Walk the extended region from `start`.
        let mut table;
        let mut queue: Vec<(BlockId, Table)> = vec![(BlockId(start as u32), Table::default())];
        while let Some((bi, t)) = queue.pop() {
            if visited[bi.index()] {
                continue;
            }
            visited[bi.index()] = true;
            table = t;
            changed |= cse_block(f, bi, &mut table);
            // Extend into successors.
            let succs = f.block(bi).successors();
            let single_succ = succs.len() == 1;
            for s in succs {
                if visited[s.index()] || !inherits[s.index()] {
                    continue;
                }
                // follow-jumps alone only follows unconditional edges;
                // skip-blocks also pushes through conditional branches.
                if single_succ || skip_blocks {
                    queue.push((s, table.clone()));
                }
            }
        }
    }
    // Any block not yet visited (inherits but its pred was in another
    // region) still gets local CSE.
    for bi in 0..n {
        if !visited[bi] {
            let mut t = Table::default();
            changed |= cse_block(f, BlockId(bi as u32), &mut t);
        }
    }
    changed
}

fn cse_block(f: &mut Function, bi: BlockId, t: &mut Table) -> bool {
    let mut changed = false;
    let insts = &mut f.blocks[bi.index()].insts;
    for inst in insts.iter_mut() {
        match inst.clone() {
            Inst::Bin { op, dst, a, b } => {
                let mut va = t.vn_of_operand(&a);
                let mut vb = t.vn_of_operand(&b);
                if op.is_commutative() && vb < va {
                    std::mem::swap(&mut va, &mut vb);
                }
                let key = (ExprOp::Bin(op), va, vb);
                if let Some(&(vn, holder)) = t.expr.get(&key) {
                    *inst = Inst::Copy {
                        dst,
                        src: Operand::Reg(holder),
                    };
                    changed = true;
                    t.clobber_holder(dst);
                    t.reg_vn.insert(dst, vn);
                } else {
                    let vn = t.fresh();
                    t.clobber_holder(dst);
                    t.reg_vn.insert(dst, vn);
                    t.expr.insert(key, (vn, dst));
                }
            }
            Inst::Cmp { pred, dst, a, b } => {
                let va = t.vn_of_operand(&a);
                let vb = t.vn_of_operand(&b);
                let key = (ExprOp::Cmp(pred), va, vb);
                if let Some(&(vn, holder)) = t.expr.get(&key) {
                    *inst = Inst::Copy {
                        dst,
                        src: Operand::Reg(holder),
                    };
                    changed = true;
                    t.clobber_holder(dst);
                    t.reg_vn.insert(dst, vn);
                } else {
                    let vn = t.fresh();
                    t.clobber_holder(dst);
                    t.reg_vn.insert(dst, vn);
                    t.expr.insert(key, (vn, dst));
                }
            }
            Inst::Copy { dst, src } => {
                let v = t.vn_of_operand(&src);
                t.clobber_holder(dst);
                t.reg_vn.insert(dst, v);
            }
            Inst::Load { dst, addr, offset } => {
                let va = t.vn_of_reg(addr);
                if let Some(&(vn, holder)) = t.mem.get(&(va, offset)) {
                    if holder != dst {
                        *inst = Inst::Copy {
                            dst,
                            src: Operand::Reg(holder),
                        };
                        changed = true;
                    }
                    t.clobber_holder(dst);
                    t.reg_vn.insert(dst, vn);
                } else {
                    let vn = t.fresh();
                    t.clobber_holder(dst);
                    t.reg_vn.insert(dst, vn);
                    t.mem.insert((va, offset), (vn, dst));
                }
            }
            Inst::Store { src, addr, offset } => {
                let va = t.vn_of_reg(addr);
                let vs = t.vn_of_operand(&src);
                // Conservative: drop all memory facts except provably-disjoint
                // same-base entries, then record the stored value.
                t.mem.retain(|(b, o), _| *b == va && *o != offset);
                if let Operand::Reg(r) = src {
                    t.mem.insert((va, offset), (vs, r));
                }
            }
            Inst::Call { dst, .. } => {
                t.mem.clear();
                if let Some(d) = dst {
                    let vn = t.fresh();
                    t.clobber_holder(d);
                    t.reg_vn.insert(d, vn);
                }
            }
            Inst::FrameLoad { dst, .. } => {
                let vn = t.fresh();
                t.clobber_holder(dst);
                t.reg_vn.insert(dst, vn);
            }
            _ => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    fn count_op(m: &Module, op: BinOp) -> usize {
        m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: o, .. } if *o == op))
            .count()
    }

    #[test]
    fn local_cse_through_copies() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t1 = b.mul(x, y);
        let x2 = b.fresh();
        b.assign(x2, x); // copy of x
        let t2 = b.mul(x2, y); // same value as t1
        let s = b.add(t1, t2);
        b.ret(s);
        let mut f = b.finish();
        assert!(cse(&mut f, false, false));
        cleanup(&mut f);
        let m = close(f);
        assert_eq!(count_op(&m, BinOp::Mul), 1);
        assert_eq!(run_module(&m, &[3, 5]).unwrap().ret, 30);
    }

    #[test]
    fn redefinition_invalidates() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t1 = b.mul(x, y);
        b.assign(x, 100); // x redefined
        let t2 = b.mul(x, y); // NOT the same value
        let s = b.add(t1, t2);
        b.ret(s);
        let mut f = b.finish();
        let before = run_module(&close(f.clone()), &[3, 5]).unwrap();
        cse(&mut f, false, false);
        cleanup(&mut f);
        let m = close(f);
        assert_eq!(run_module(&m, &[3, 5]).unwrap().ret, before.ret);
        assert_eq!(before.ret, 3 * 5 + 100 * 5);
        assert_eq!(count_op(&m, BinOp::Mul), 2);
    }

    #[test]
    fn follow_jumps_extends_across_single_pred_edge() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t1 = b.mul(x, y);
        let nxt = b.block();
        b.br(nxt);
        b.switch_to(nxt);
        let t2 = b.mul(x, y); // redundant across the jump
        let s = b.add(t1, t2);
        b.ret(s);
        let mut f = b.finish();
        // Without follow-jumps the redundancy survives CSE (GVN would catch
        // it, but this pass must not).
        let mut f2 = f.clone();
        cse(&mut f2, false, false);
        cleanup(&mut f2);
        assert_eq!(count_op(&close(f2), BinOp::Mul), 2);
        // With follow-jumps it is eliminated.
        assert!(cse(&mut f, true, false));
        cleanup(&mut f);
        let m = close(f);
        assert_eq!(count_op(&m, BinOp::Mul), 1);
        assert_eq!(run_module(&m, &[6, 7]).unwrap().ret, 84);
    }

    #[test]
    fn skip_blocks_extends_into_branch_arms() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let t1 = b.mul(x, y);
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.fresh();
        b.if_else(
            c,
            |b| {
                let t2 = b.mul(x, y); // redundant, reachable via cond edge
                b.assign(out, t2);
            },
            |b| b.assign(out, t1), // keeps t1 live on the other path
        );
        b.ret(out);
        let mut f = b.finish();
        // follow-jumps alone does not push through the conditional.
        let mut f2 = f.clone();
        cse(&mut f2, true, false);
        cleanup(&mut f2);
        assert_eq!(count_op(&close(f2), BinOp::Mul), 2);
        // skip-blocks does.
        assert!(cse(&mut f, true, true));
        cleanup(&mut f);
        let m = close(f);
        assert_eq!(count_op(&m, BinOp::Mul), 1);
        assert_eq!(run_module(&m, &[6, 7]).unwrap().ret, 42);
    }

    #[test]
    fn store_forward_and_clobber() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 4);
        let mut b = FuncBuilder::new("main", 1);
        let p = b.iconst(base as i64);
        let v = b.param(0);
        b.store(v, p, 0);
        let l1 = b.load(p, 0); // forwarded value of v
        b.store(99, p, 0); // clobbers
        let l2 = b.load(p, 0); // NOT forwardable to l1
        let s = b.add(l1, l2);
        b.ret(s);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        cse(&mut m.funcs[0], false, false);
        cleanup(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[1]).unwrap().ret, 100);
    }
}
