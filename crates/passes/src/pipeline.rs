//! The full compilation pipeline: source module + [`OptConfig`] →
//! [`CodeImage`], in gcc 4.2's pass order.

use crate::analysis::global_ranges;
use crate::config::OptConfig;
use crate::layout::{layout_module, CodeImage};
use portopt_ir::{FuncId, Module};

/// Summary of what the pipeline did (for experiments and debugging).
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Static instruction count after optimisation, before lowering.
    pub insts_after_opt: usize,
    /// Total spilled virtual registers across functions.
    pub spills: u32,
    /// Copies coalesced by regmove.
    pub coalesced: u32,
    /// Caller-save pairs inserted.
    pub caller_save_pairs: u32,
}

/// Compiles `module` under the given optimisation configuration.
///
/// The pass order mirrors gcc 4.2: tree-level passes (vrp, pre), inlining,
/// RTL scalar passes (cse, gcse family, loop optimisations, unrolling),
/// jump optimisations, scheduling, register allocation, post-reload
/// cleanups, then layout.
pub fn compile(module: &Module, cfg: &OptConfig) -> CodeImage {
    compile_with_stats(module, cfg).0
}

/// [`compile`] that also returns pipeline statistics.
pub fn compile_with_stats(module: &Module, cfg: &OptConfig) -> (CodeImage, CompileStats) {
    let mut m = module.clone();
    let globals = global_ranges(&m);
    let mut stats = CompileStats::default();

    // --- tree level --------------------------------------------------------
    for f in &mut m.funcs {
        crate::util::cleanup(f);
        if cfg.tree_vrp {
            crate::vrp::tree_vrp(f);
        }
        if cfg.tree_pre {
            crate::pre::tree_pre(f);
        }
        crate::util::cleanup(f);
    }

    // --- inlining (interprocedural) ----------------------------------------
    crate::inline::inline_functions(&mut m, cfg);
    for f in &mut m.funcs {
        crate::util::cleanup(f);
    }

    // --- sibling calls ------------------------------------------------------
    if cfg.optimize_sibling_calls {
        for i in 0..m.funcs.len() {
            crate::tailcall::optimize_sibling_calls(&mut m.funcs[i], FuncId(i as u32));
            crate::util::cleanup(&mut m.funcs[i]);
        }
    }

    // --- RTL scalar + loop passes -------------------------------------------
    for f in &mut m.funcs {
        // cse1 (always on at O1+ in gcc; here always on, flags extend scope).
        crate::cse::cse(f, cfg.cse_follow_jumps, cfg.cse_skip_blocks);
        crate::util::cleanup(f);

        crate::gcse::gcse(f, &globals, cfg);

        // Loop optimisations. LICM is the always-on part.
        crate::licm::licm(f);
        if cfg.strength_reduce {
            crate::strength::strength_reduce(f);
        }
        if cfg.unswitch_loops {
            crate::unswitch::unswitch_loops(f);
        }
        crate::util::cleanup(f);
        if cfg.unroll_loops {
            crate::unroll::unroll_loops(f, cfg);
            crate::util::cleanup(f);
        }

        // Expensive reruns.
        if cfg.expensive_optimizations && cfg.rerun_cse_after_loop {
            crate::cse::cse(f, cfg.cse_follow_jumps, cfg.cse_skip_blocks);
            crate::util::cleanup(f);
        }
        if cfg.expensive_optimizations && cfg.rerun_loop_opt {
            crate::licm::licm(f);
            crate::util::cleanup(f);
        }

        // Jump-level passes.
        if cfg.thread_jumps {
            crate::jumps::thread_jumps(f);
        }
        if cfg.crossjumping {
            crate::jumps::crossjumping(f);
        }
        crate::util::cleanup(f);
    }
    stats.insts_after_opt = m.inst_count();

    // --- scheduling, allocation, post-reload --------------------------------
    for f in &mut m.funcs {
        if cfg.schedule_insns {
            crate::sched::schedule_insns(f, &globals, cfg.sched_interblock, cfg.sched_spec);
        }
        let ra = crate::regalloc::allocate(f, cfg.caller_saves, cfg.regmove);
        stats.spills += ra.spilled;
        stats.coalesced += ra.coalesced;
        stats.caller_save_pairs += ra.caller_save_pairs;

        if cfg.gcse && cfg.gcse_after_reload {
            crate::peephole::gcse_after_reload(f);
        }
        if cfg.peephole2 {
            crate::peephole::peephole2(f);
        }
    }

    debug_assert!(portopt_ir::verify_module(&m).is_ok(), "pipeline broke IR");

    // --- layout --------------------------------------------------------------
    (layout_module(&m, cfg), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, ModuleBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A program with a bit of everything: loops, calls, memory, branches.
    fn kitchen_sink() -> Module {
        let mut mb = ModuleBuilder::new("sink");
        let (_, tab) = mb.global_init("tab", 32, (0..32).map(|i| (i * 7) % 13).collect());
        let (_, out) = mb.global("out", 32);
        let helper = {
            let mut b = FuncBuilder::new("clamp", 2);
            let (x, hi) = (b.param(0), b.param(1));
            let c = b.cmp(portopt_ir::Pred::Gt, x, hi);
            let r = b.fresh();
            b.if_else(c, |b| b.assign(r, hi), |b| b.assign(r, x));
            b.ret(r);
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        let pt = b.iconst(tab as i64);
        let po = b.iconst(out as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 32, 1, |b, i| {
            let off = b.shl(i, 2);
            let a1 = b.add(pt, off);
            let v = b.load(a1, 0);
            let sq = b.mul(v, v);
            let cl = b.call(helper, &[sq.into(), 100i64.into()]);
            let a2 = b.add(po, off);
            b.store(cl, a2, 0);
            let t = b.add(acc, cl);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn o0_through_o3_all_compile_and_agree() {
        let m = kitchen_sink();
        let reference = run_module(&m, &[]).unwrap();
        for cfg in [
            OptConfig::o0(),
            OptConfig::o1(),
            OptConfig::o2(),
            OptConfig::o3(),
        ] {
            let (img, _) = compile_with_stats(&m, &cfg);
            // The compiled image embeds runnable IR; execute each function
            // image directly.
            let mut m2 = m.clone();
            m2.funcs = img.funcs.iter().map(|mf| mf.func.clone()).collect();
            verify_module(&m2).unwrap();
            let r = run_module(&m2, &[]).unwrap();
            assert_eq!(r.ret, reference.ret, "wrong result under {cfg:?}");
            assert_eq!(r.mem_hash, reference.mem_hash);
        }
    }

    #[test]
    fn random_configs_preserve_semantics() {
        let m = kitchen_sink();
        let reference = run_module(&m, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(2009);
        for k in 0..60 {
            let cfg = OptConfig::sample(&mut rng);
            let img = compile(&m, &cfg);
            let mut m2 = m.clone();
            m2.funcs = img.funcs.iter().map(|mf| mf.func.clone()).collect();
            verify_module(&m2).expect("verifier");
            let r = run_module(&m2, &[]).unwrap();
            assert_eq!(r.ret, reference.ret, "config #{k} ({cfg:?}) broke output");
            assert_eq!(r.mem_hash, reference.mem_hash, "config #{k} broke memory");
        }
    }

    #[test]
    fn o3_is_smaller_or_faster_than_o0() {
        let m = kitchen_sink();
        let img0 = compile(&m, &OptConfig::o0());
        let img3 = compile(&m, &OptConfig::o3());
        let run = |img: &CodeImage| {
            let mut m2 = m.clone();
            m2.funcs = img.funcs.iter().map(|mf| mf.func.clone()).collect();
            run_module(&m2, &[]).unwrap().dyn_insts
        };
        // O3 executes strictly fewer dynamic instructions on this program.
        assert!(run(&img3) < run(&img0));
    }

    #[test]
    fn deterministic_compilation() {
        let m = kitchen_sink();
        let a = compile(&m, &OptConfig::o3());
        let b = compile(&m, &OptConfig::o3());
        assert_eq!(a.code_bytes, b.code_bytes);
        assert_eq!(a.total_insts, b.total_insts);
        for (fa, fb) in a.funcs.iter().zip(&b.funcs) {
            assert_eq!(fa.func, fb.func);
            assert_eq!(fa.order, fb.order);
        }
    }
}
