//! Code layout and lowering: `-freorder-blocks` and the four `-falign-*`
//! flags, plus address assignment and per-block schedule tables.
//!
//! The output, a [`CodeImage`], is the "binary" the simulator executes:
//! every block has a byte address and size (so the instruction cache sees
//! real layout effects from alignment, inlining, unrolling and unswitching),
//! a lowered terminator kind (so taken-branch and BTB behaviour depend on
//! block ordering), and a static scoreboard table giving its issue cycles
//! for each (load-use latency, issue width) pair.

use crate::config::OptConfig;
use portopt_ir::{BinOp, BlockId, Cfg, FuncId, Function, Inst, LoopForest, Module};
use serde::{Deserialize, Serialize};

/// Base address of the code segment.
pub const CODE_BASE: u32 = 0x1000;
/// Bytes per machine instruction (fixed-width, ARM-style).
pub const INST_BYTES: u32 = 4;
/// Load-use latencies covered by the static schedule table (1..=MAX_LAT).
pub const MAX_LAT: usize = 6;

/// How a block's terminator was lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TermKind {
    /// Unconditional fall-through: no branch instruction emitted.
    Fall,
    /// Unconditional jump (1 instruction, always taken).
    Jump,
    /// Conditional branch to `then_`; `else_` is the fall-through.
    CondFall,
    /// Inverted conditional branch to `else_`; `then_` is the fall-through.
    CondFlip,
    /// Conditional branch to `then_` plus unconditional jump to `else_`.
    CondTwoJumps,
    /// Function return (1 instruction).
    Ret,
}

/// Placement and lowering of one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockLayout {
    /// Byte address of the first instruction.
    pub addr: u32,
    /// Emitted code bytes (body + lowered terminator, no padding).
    pub bytes: u32,
    /// Alignment padding inserted before this block.
    pub pad: u32,
    /// Successor reached without taking a branch, if any.
    pub fallthrough: Option<BlockId>,
    /// Lowered terminator.
    pub term: TermKind,
}

/// Static execution profile of one block: issue cycles on the in-order
/// pipeline for each (width, load-use latency) pair, plus operation counts
/// for the performance-counter model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockSched {
    /// `cycles[w-1][lat-1]`: block issue cycles at width `w`, load-use
    /// latency `lat` (assuming all cache hits).
    pub cycles: [[u16; MAX_LAT]; 2],
    /// Emitted instructions (decode slots).
    pub insts: u16,
    /// Plain ALU operations (incl. compares and copies).
    pub alu: u16,
    /// Multiply (MAC-unit) operations.
    pub mac: u16,
    /// Shifter operations.
    pub shift: u16,
    /// Long-latency ALU sequences (div/rem).
    pub div: u16,
    /// Memory loads (global + frame).
    pub loads: u16,
    /// Memory stores (global + frame).
    pub stores: u16,
    /// Conditional branches (branch-predictor accesses).
    pub cond_branches: u16,
    /// Unconditional jumps emitted.
    pub jumps: u16,
    /// Calls.
    pub calls: u16,
    /// Returns.
    pub rets: u16,
    /// Register-file read accesses.
    pub reg_reads: u16,
    /// Register-file write accesses.
    pub reg_writes: u16,
}

/// A laid-out, lowered function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineFunc {
    /// The executable (post-allocation) IR.
    pub func: Function,
    /// Blocks in layout order.
    pub order: Vec<BlockId>,
    /// Per-block placement, indexed by block id.
    pub layout: Vec<BlockLayout>,
    /// Per-block static schedule, indexed by block id.
    pub sched: Vec<BlockSched>,
    /// Function base address.
    pub base: u32,
}

/// A compiled program image.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeImage {
    /// Program name.
    pub name: String,
    /// Per-function code, indexed by [`FuncId`].
    pub funcs: Vec<MachineFunc>,
    /// Entry function.
    pub entry: FuncId,
    /// Total code size in bytes (including padding).
    pub code_bytes: u32,
    /// Total emitted instructions.
    pub total_insts: u32,
    /// Global layout `(base, bytes)`, copied from the module for the
    /// simulator's memory construction.
    pub globals: Vec<(u32, u32)>,
}

impl CodeImage {
    /// The layout of `(func, block)`.
    pub fn block_layout(&self, f: FuncId, b: BlockId) -> &BlockLayout {
        &self.funcs[f.index()].layout[b.index()]
    }

    /// A structural fingerprint of the image: equal exactly when every
    /// field (code, layout, schedules, globals) is equal.
    ///
    /// Distinct optimisation settings frequently lower a small program to
    /// the *same* machine code; since profiling and timing depend only on
    /// the image (and the module's globals), sweeps key their
    /// profile/evaluation caches on this value to run each distinct binary
    /// once — in memory within one sweep, and on disk across sweeps via
    /// `portopt_exec::cache`.
    ///
    /// Two properties make that sound:
    ///
    /// * **Structural coverage is type-checked.** The value is the derived
    ///   [`Hash`] of the image streamed into a fixed-seed hasher, so the
    ///   compiler enumerates every field (recursively, through the embedded
    ///   IR tree); a new field extends the fingerprint automatically, and a
    ///   field that cannot be hashed fails to compile instead of silently
    ///   narrowing the cache key.
    /// * **Stable across processes.** [`portopt_ir::StableHasher`] is
    ///   seed-free FNV-1a with canonical little-endian writes, so the same
    ///   image fingerprints identically in every run on every host — the
    ///   contract an on-disk cache key needs (the standard library's
    ///   `DefaultHasher` promises neither).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = portopt_ir::StableHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Computes the block order for a function.
///
/// With `-freorder-blocks`, a greedy trace-growing pass places each block's
/// most likely successor next (back edges and loop-internal edges are
/// considered likely, loop exits unlikely), maximising fall-through on hot
/// edges. Without it, blocks stay in creation order — after inlining,
/// unrolling and unswitching have appended their clones at the end, that
/// order is littered with unconditional jumps.
pub fn block_order(f: &Function, reorder: bool) -> Vec<BlockId> {
    let n = f.blocks.len();
    if !reorder {
        return (0..n as u32).map(BlockId).collect();
    }
    let forest = LoopForest::compute(f);
    let prob = |from: BlockId, to: BlockId| -> u32 {
        // Higher is more likely.
        let d_from = forest.block_depth(from);
        let d_to = forest.block_depth(to);
        if forest
            .loops
            .iter()
            .any(|l| l.header == to && l.contains(from))
        {
            90 // back edge
        } else if d_to < d_from {
            10 // loop exit
        } else if d_to > d_from {
            80 // loop entry
        } else {
            50
        }
    };
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = Some(f.entry());
    loop {
        let b = match cur {
            Some(b) if !placed[b.index()] => b,
            _ => {
                // Next trace seed: first unplaced block in id order.
                match (0..n).find(|&i| !placed[i]) {
                    Some(i) => BlockId(i as u32),
                    None => break,
                }
            }
        };
        placed[b.index()] = true;
        order.push(b);
        cur = f
            .block(b)
            .successors()
            .into_iter()
            .filter(|s| !placed[s.index()])
            .max_by_key(|&s| prob(b, s));
    }
    order
}

/// Lowers the terminator of `b` given the block laid out after it.
fn lower_term(
    block: &portopt_ir::Block,
    next: Option<BlockId>,
) -> (TermKind, Option<BlockId>, u32) {
    match block.insts.last() {
        Some(Inst::Br { target }) => {
            if next == Some(*target) {
                (TermKind::Fall, Some(*target), 0)
            } else {
                (TermKind::Jump, None, 1)
            }
        }
        Some(Inst::CondBr { then_, else_, .. }) => {
            if next == Some(*else_) {
                (TermKind::CondFall, Some(*else_), 1)
            } else if next == Some(*then_) {
                (TermKind::CondFlip, Some(*then_), 1)
            } else {
                (TermKind::CondTwoJumps, None, 2)
            }
        }
        Some(Inst::Ret { .. }) => (TermKind::Ret, None, 1),
        _ => (TermKind::Fall, next, 0),
    }
}

/// Operation latency on the pipeline, parameterised by load-use latency.
fn op_latency(inst: &Inst, load_lat: u32) -> u32 {
    match inst {
        Inst::Load { .. } | Inst::FrameLoad { .. } => load_lat,
        Inst::Bin { op, .. } if op.is_long_latency() => 16,
        Inst::Bin { op, .. } if op.uses_mac() => 2,
        _ => 1,
    }
}

/// Static scoreboard simulation of one block at the given width and
/// load-use latency: in-order issue, `width` slots per cycle, one memory
/// port, one MAC unit.
fn scoreboard(insts: &[Inst], width: u32, load_lat: u32, nregs: usize) -> u32 {
    let mut ready = vec![0u32; nregs.max(1)];
    let mut cycle: u32 = 0;
    let mut slots = 0u32;
    let mut mem_used = false;
    let mut mac_used = false;
    for inst in insts {
        let mut start = cycle;
        inst.for_each_use(|r| {
            start = start.max(ready[r.index()]);
        });
        let needs_mem = inst.is_memory();
        let needs_mac = matches!(inst, Inst::Bin { op, .. } if op.uses_mac());
        // Advance to a cycle with a free slot and free resources.
        loop {
            if start > cycle {
                cycle = start;
                slots = 0;
                mem_used = false;
                mac_used = false;
            }
            if slots >= width || (needs_mem && mem_used) || (needs_mac && mac_used) {
                cycle += 1;
                slots = 0;
                mem_used = false;
                mac_used = false;
                continue;
            }
            break;
        }
        slots += 1;
        mem_used |= needs_mem;
        mac_used |= needs_mac;
        if let Some(d) = inst.def() {
            ready[d.index()] = cycle + op_latency(inst, load_lat);
        }
    }
    cycle + 1
}

/// Builds the per-block operation counts and schedule table.
fn block_sched(block: &portopt_ir::Block, term: TermKind, nregs: usize) -> BlockSched {
    let mut s = BlockSched::default();
    for inst in &block.insts {
        let mut reads = 0u16;
        inst.for_each_use(|_| reads += 1);
        s.reg_reads += reads;
        if inst.def().is_some() {
            s.reg_writes += 1;
        }
        match inst {
            Inst::Bin { op, .. } => {
                if op.is_long_latency() {
                    s.div += 1;
                } else if op.uses_mac() {
                    s.mac += 1;
                } else if op.uses_shifter() {
                    s.shift += 1;
                } else {
                    s.alu += 1;
                }
            }
            Inst::Cmp { .. } | Inst::Copy { .. } => s.alu += 1,
            Inst::Load { .. } | Inst::FrameLoad { .. } => s.loads += 1,
            Inst::Store { .. } | Inst::FrameStore { .. } => s.stores += 1,
            Inst::Call { .. } => s.calls += 1,
            Inst::Ret { .. } => s.rets += 1,
            Inst::Br { .. } | Inst::CondBr { .. } => {}
        }
    }
    match term {
        TermKind::Fall => {}
        TermKind::Jump => s.jumps += 1,
        TermKind::CondFall | TermKind::CondFlip => s.cond_branches += 1,
        TermKind::CondTwoJumps => {
            s.cond_branches += 1;
            s.jumps += 1;
        }
        TermKind::Ret => {}
    }
    // Emitted instructions: body plus lowered terminator.
    let body = block.body().len() as u16;
    let term_insts = match term {
        TermKind::Fall => 0,
        TermKind::Jump | TermKind::CondFall | TermKind::CondFlip | TermKind::Ret => 1,
        TermKind::CondTwoJumps => 2,
    };
    s.insts = body + term_insts;
    for w in 1..=2u32 {
        for lat in 1..=MAX_LAT as u32 {
            s.cycles[(w - 1) as usize][(lat - 1) as usize] =
                scoreboard(&block.insts, w, lat, nregs).min(u16::MAX as u32) as u16;
        }
    }
    s
}

/// Lays out and lowers a whole module into a [`CodeImage`].
pub fn layout_module(m: &Module, cfg: &OptConfig) -> CodeImage {
    let mut funcs = Vec::with_capacity(m.funcs.len());
    let mut addr = CODE_BASE;
    let mut total_insts = 0u32;

    for f in &m.funcs {
        // Function alignment.
        let fn_align = if cfg.align_functions { 32 } else { 4 };
        addr = (addr + fn_align - 1) & !(fn_align - 1);
        let base = addr;

        let order = block_order(f, cfg.reorder_blocks);
        let forest = LoopForest::compute(f);
        let cfg_graph = Cfg::compute(f);
        let nregs = f.vreg_count as usize;

        let n = f.blocks.len();
        let mut layout = vec![
            BlockLayout {
                addr: 0,
                bytes: 0,
                pad: 0,
                fallthrough: None,
                term: TermKind::Fall,
            };
            n
        ];
        let mut sched = vec![BlockSched::default(); n];

        for (k, &b) in order.iter().enumerate() {
            let next = order.get(k + 1).copied();
            let block = f.block(b);
            let (term, fallthrough, term_insts) = lower_term(block, next);

            // Alignment rules (max of the applicable ones).
            let mut align = 4u32;
            if cfg.align_labels {
                align = align.max(8);
            }
            if cfg.align_jumps && cfg_graph.preds(b).len() >= 2 {
                align = align.max(8);
            }
            if cfg.align_loops && forest.loops.iter().any(|l| l.header == b) {
                align = align.max(16);
            }
            let aligned = (addr + align - 1) & !(align - 1);
            let pad = aligned - addr;
            addr = aligned;

            let body_insts = block.body().len() as u32;
            let bytes = (body_insts + term_insts) * INST_BYTES;
            layout[b.index()] = BlockLayout {
                addr,
                bytes,
                pad,
                fallthrough,
                term,
            };
            sched[b.index()] = block_sched(block, term, nregs);
            total_insts += body_insts + term_insts;
            addr += bytes;
        }

        funcs.push(MachineFunc {
            func: f.clone(),
            order,
            layout,
            sched,
            base,
        });
    }

    CodeImage {
        name: m.name.clone(),
        funcs,
        entry: m.entry,
        code_bytes: addr - CODE_BASE,
        total_insts,
        globals: m.global_addrs().iter().map(|a| (a.base, a.bytes)).collect(),
    }
}

/// Convenience: does this op use the shifter? (re-exported logic for sim)
pub fn uses_shifter(op: BinOp) -> bool {
    op.uses_shifter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::{FuncBuilder, ModuleBuilder, Pred};

    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn layout_assigns_increasing_addresses() {
        let m = loop_module();
        let img = layout_module(&m, &OptConfig::o0());
        let mf = &img.funcs[0];
        let mut addrs: Vec<u32> = mf.order.iter().map(|b| mf.layout[b.index()].addr).collect();
        let sorted = {
            let mut a = addrs.clone();
            a.sort_unstable();
            a
        };
        assert_eq!(addrs, sorted);
        addrs.dedup();
        assert_eq!(addrs.len(), mf.order.len(), "blocks overlap");
        assert!(img.code_bytes > 0);
        assert!(img.total_insts > 0);
    }

    #[test]
    fn fallthrough_detected_in_natural_order() {
        let m = loop_module();
        let img = layout_module(&m, &OptConfig::o0());
        let mf = &img.funcs[0];
        // Block 0 (entry) ends `br header(1)` and 1 follows it: fall-through.
        assert_eq!(mf.layout[0].term, TermKind::Fall);
        assert_eq!(mf.layout[0].fallthrough, Some(BlockId(1)));
        // Header’s CondBr: body (2) follows, so the branch is flipped and
        // taken only on exit.
        assert_eq!(mf.layout[1].term, TermKind::CondFlip);
    }

    #[test]
    fn alignment_pads_loop_headers() {
        let m = loop_module();
        let aligned_cfg = OptConfig {
            align_loops: true,
            ..OptConfig::o0()
        };
        let img = layout_module(&m, &aligned_cfg);
        let header = &img.funcs[0].layout[1];
        assert_eq!(header.addr % 16, 0, "loop header must be 16-aligned");
        // Padding costs code bytes.
        let img0 = layout_module(&m, &OptConfig::o0());
        assert!(img.code_bytes >= img0.code_bytes);
    }

    #[test]
    fn scoreboard_width_and_latency_monotone() {
        let m = loop_module();
        let img = layout_module(&m, &OptConfig::o0());
        for mf in &img.funcs {
            for s in &mf.sched {
                for lat in 0..MAX_LAT {
                    // Wider never slower.
                    assert!(s.cycles[1][lat] <= s.cycles[0][lat]);
                    if lat > 0 {
                        // Higher latency never faster.
                        assert!(s.cycles[0][lat] >= s.cycles[0][lat - 1]);
                        assert!(s.cycles[1][lat] >= s.cycles[1][lat - 1]);
                    }
                }
            }
        }
    }

    #[test]
    fn scoreboard_counts_load_use_stall() {
        // load; use — at lat L the block takes at least L+1 cycles.
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 2);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let v = b.load(p, 0);
        let w = b.add(v, 1);
        b.ret(w);
        let id = mb.add(b.finish());
        mb.entry(id);
        let m = mb.finish();
        let img = layout_module(&m, &OptConfig::o0());
        let s = &img.funcs[0].sched[0];
        assert!(s.cycles[0][3] > s.cycles[0][0], "latency must show");
        assert_eq!(s.loads, 1);
        assert_eq!(s.alu >= 2, true); // iconst + add
        assert_eq!(s.rets, 1);
    }

    #[test]
    fn reorder_blocks_changes_layout_after_cloning() {
        // Unswitching appends clones; reorder should reduce taken jumps.
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 1);
        let mode = b.param(0);
        let acc = b.iconst(0);
        let c = b.cmp(Pred::Ne, mode, 0);
        b.counted_loop(0, 50, 1, |b, i| {
            b.if_else(
                c,
                |b| {
                    let t = b.add(acc, i);
                    b.assign(acc, t);
                },
                |b| {
                    let t = b.sub(acc, i);
                    b.assign(acc, t);
                },
            );
        });
        b.ret(acc);
        let mut f = b.finish();
        crate::unswitch::unswitch_loops(&mut f);
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();

        let count_jumps = |img: &CodeImage| {
            img.funcs[0]
                .layout
                .iter()
                .filter(|l| matches!(l.term, TermKind::Jump | TermKind::CondTwoJumps))
                .count()
        };
        let img_plain = layout_module(&m, &OptConfig::o0());
        let img_reord = layout_module(
            &m,
            &OptConfig {
                reorder_blocks: true,
                ..OptConfig::o0()
            },
        );
        assert!(
            count_jumps(&img_reord) <= count_jumps(&img_plain),
            "reordering should not add jumps"
        );
    }
}
