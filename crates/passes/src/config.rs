//! The compiler optimisation space of the paper (Figure 3).
//!
//! 39 dimensions: 30 on/off pass flags plus 9 integer parameters, matching
//! the gcc 4.2 flags listed in Figures 3, 8 and 9 of Dubach et al. Each
//! dimension is independently selectable, exactly as in the paper's
//! uniform-random sampling of the space.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Menu of values for each integer parameter. Index 0 is the most
/// conservative setting; the gcc 4.2 default is marked in each doc line.
pub mod menus {
    /// `--param max-unrolled-insns` (gcc default 200).
    pub const MAX_UNROLLED_INSNS: [u32; 4] = [50, 100, 200, 400];
    /// `--param max-unroll-times` (gcc default 8).
    pub const MAX_UNROLL_TIMES: [u32; 4] = [2, 4, 8, 16];
    /// `--param inline-call-cost` (gcc default 16).
    pub const INLINE_CALL_COST: [u32; 4] = [12, 16, 24, 32];
    /// `--param inline-unit-growth` (gcc default 50, in percent).
    pub const INLINE_UNIT_GROWTH: [u32; 4] = [25, 50, 100, 200];
    /// `--param large-unit-insns` (gcc default 10000).
    pub const LARGE_UNIT_INSNS: [u32; 3] = [5000, 10000, 20000];
    /// `--param large-function-growth` (gcc default 100, in percent).
    pub const LARGE_FUNCTION_GROWTH: [u32; 4] = [50, 100, 200, 400];
    /// `--param large-function-insns` (gcc default 2700).
    pub const LARGE_FUNCTION_INSNS: [u32; 3] = [1350, 2700, 5400];
    /// `--param max-inline-insns-auto` (gcc default 90).
    pub const MAX_INLINE_INSNS_AUTO: [u32; 5] = [30, 60, 90, 180, 450];
    /// `--param max-gcse-passes` (gcc 4.2 default 1).
    pub const MAX_GCSE_PASSES: [u32; 4] = [1, 2, 3, 4];
}

/// One point in the optimisation space: every flag and parameter of Figure 3.
///
/// Boolean fields mirror gcc's positive flag sense: `gcse_lm: false`
/// corresponds to `-fno-gcse-lm`, `sched_spec: false` to `-fno-sched-spec`,
/// and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are the gcc flag names; documented above
pub struct OptConfig {
    // --- jump/branch level -------------------------------------------------
    pub thread_jumps: bool,
    pub crossjumping: bool,
    pub optimize_sibling_calls: bool,
    // --- CSE family ---------------------------------------------------------
    pub cse_follow_jumps: bool,
    pub cse_skip_blocks: bool,
    pub expensive_optimizations: bool,
    pub strength_reduce: bool,
    pub rerun_cse_after_loop: bool,
    pub rerun_loop_opt: bool,
    // --- register level ------------------------------------------------------
    pub caller_saves: bool,
    pub peephole2: bool,
    pub regmove: bool,
    // --- layout --------------------------------------------------------------
    pub reorder_blocks: bool,
    pub align_functions: bool,
    pub align_jumps: bool,
    pub align_loops: bool,
    pub align_labels: bool,
    // --- tree level ----------------------------------------------------------
    pub tree_vrp: bool,
    pub tree_pre: bool,
    // --- loop level ----------------------------------------------------------
    pub unswitch_loops: bool,
    // --- GCSE family ---------------------------------------------------------
    pub gcse: bool,
    pub gcse_lm: bool,
    pub gcse_sm: bool,
    pub gcse_las: bool,
    pub gcse_after_reload: bool,
    /// Index into [`menus::MAX_GCSE_PASSES`].
    pub max_gcse_passes: u8,
    // --- scheduling ----------------------------------------------------------
    pub schedule_insns: bool,
    pub sched_interblock: bool,
    pub sched_spec: bool,
    // --- inlining ------------------------------------------------------------
    pub inline_functions: bool,
    /// Index into [`menus::MAX_INLINE_INSNS_AUTO`].
    pub max_inline_insns_auto: u8,
    /// Index into [`menus::LARGE_FUNCTION_INSNS`].
    pub large_function_insns: u8,
    /// Index into [`menus::LARGE_FUNCTION_GROWTH`].
    pub large_function_growth: u8,
    /// Index into [`menus::LARGE_UNIT_INSNS`].
    pub large_unit_insns: u8,
    /// Index into [`menus::INLINE_UNIT_GROWTH`].
    pub inline_unit_growth: u8,
    /// Index into [`menus::INLINE_CALL_COST`].
    pub inline_call_cost: u8,
    // --- unrolling -----------------------------------------------------------
    pub unroll_loops: bool,
    /// Index into [`menus::MAX_UNROLL_TIMES`].
    pub max_unroll_times: u8,
    /// Index into [`menus::MAX_UNROLLED_INSNS`].
    pub max_unrolled_insns: u8,
}

impl OptConfig {
    /// `-O0`: everything off, conservative parameters.
    pub fn o0() -> Self {
        OptConfig {
            thread_jumps: false,
            crossjumping: false,
            optimize_sibling_calls: false,
            cse_follow_jumps: false,
            cse_skip_blocks: false,
            expensive_optimizations: false,
            strength_reduce: false,
            rerun_cse_after_loop: false,
            rerun_loop_opt: false,
            caller_saves: false,
            peephole2: false,
            regmove: false,
            reorder_blocks: false,
            align_functions: false,
            align_jumps: false,
            align_loops: false,
            align_labels: false,
            tree_vrp: false,
            tree_pre: false,
            unswitch_loops: false,
            gcse: false,
            gcse_lm: false,
            gcse_sm: false,
            gcse_las: false,
            gcse_after_reload: false,
            max_gcse_passes: 0,
            schedule_insns: false,
            sched_interblock: false,
            sched_spec: false,
            inline_functions: false,
            max_inline_insns_auto: 2,
            large_function_insns: 1,
            large_function_growth: 1,
            large_unit_insns: 1,
            inline_unit_growth: 1,
            inline_call_cost: 1,
            unroll_loops: false,
            max_unroll_times: 2,
            max_unrolled_insns: 2,
        }
    }

    /// `-O1`: cheap scalar cleanups.
    pub fn o1() -> Self {
        OptConfig {
            thread_jumps: true,
            crossjumping: true,
            ..Self::o0()
        }
    }

    /// `-O2`: the full pass set except unrolling and aggressive inlining.
    pub fn o2() -> Self {
        OptConfig {
            optimize_sibling_calls: true,
            cse_follow_jumps: true,
            cse_skip_blocks: true,
            expensive_optimizations: true,
            strength_reduce: true,
            rerun_cse_after_loop: true,
            rerun_loop_opt: true,
            caller_saves: true,
            peephole2: true,
            regmove: true,
            reorder_blocks: true,
            align_functions: true,
            align_jumps: true,
            align_loops: true,
            align_labels: true,
            tree_vrp: true,
            tree_pre: true,
            gcse: true,
            gcse_lm: true,
            schedule_insns: true,
            sched_interblock: true,
            sched_spec: true,
            ..Self::o1()
        }
    }

    /// `-O3`: the paper's baseline — `-O2` plus function inlining,
    /// loop unswitching and the gcse extensions.
    ///
    /// Faithful to gcc: `-O3` does *not* enable `-funroll-loops`, which is
    /// precisely why per-program flag selection can beat it.
    pub fn o3() -> Self {
        OptConfig {
            inline_functions: true,
            unswitch_loops: true,
            gcse_sm: true,
            gcse_las: true,
            gcse_after_reload: true,
            ..Self::o2()
        }
    }

    /// Draws a uniform-random point from the full space (paper §4.3).
    pub fn sample(rng: &mut impl Rng) -> Self {
        let dims = OptSpace::dims();
        let choices: Vec<u8> = dims
            .iter()
            .map(|d| rng.gen_range(0..d.cardinality) as u8)
            .collect();
        Self::from_choices(&choices)
    }

    /// Encodes the configuration as one choice index per dimension, in
    /// [`OptSpace::dims`] order. This is the representation the IID
    /// multinomial model in `portopt-ml` is fitted over.
    pub fn to_choices(&self) -> Vec<u8> {
        vec![
            self.thread_jumps as u8,
            self.crossjumping as u8,
            self.optimize_sibling_calls as u8,
            self.cse_follow_jumps as u8,
            self.cse_skip_blocks as u8,
            self.expensive_optimizations as u8,
            self.strength_reduce as u8,
            self.rerun_cse_after_loop as u8,
            self.rerun_loop_opt as u8,
            self.caller_saves as u8,
            self.peephole2 as u8,
            self.regmove as u8,
            self.reorder_blocks as u8,
            self.align_functions as u8,
            self.align_jumps as u8,
            self.align_loops as u8,
            self.align_labels as u8,
            self.tree_vrp as u8,
            self.tree_pre as u8,
            self.unswitch_loops as u8,
            self.gcse as u8,
            self.gcse_lm as u8,
            self.gcse_sm as u8,
            self.gcse_las as u8,
            self.gcse_after_reload as u8,
            self.max_gcse_passes,
            self.schedule_insns as u8,
            self.sched_interblock as u8,
            self.sched_spec as u8,
            self.inline_functions as u8,
            self.max_inline_insns_auto,
            self.large_function_insns,
            self.large_function_growth,
            self.large_unit_insns,
            self.inline_unit_growth,
            self.inline_call_cost,
            self.unroll_loops as u8,
            self.max_unroll_times,
            self.max_unrolled_insns,
        ]
    }

    /// Decodes a choice vector produced by [`OptConfig::to_choices`].
    ///
    /// # Panics
    /// Panics if `choices` has the wrong length or an out-of-range index.
    pub fn from_choices(choices: &[u8]) -> Self {
        // Validate against the static cardinality table — the serving hot
        // path decodes one config per prediction, and `OptSpace::dims()`
        // would allocate a fresh 39-entry Vec per call. The descriptive
        // per-dimension panic only pays for `dims()` on the failure path.
        assert_eq!(
            choices.len(),
            OptSpace::CARDINALITIES.len(),
            "choice vector length"
        );
        for (i, (c, card)) in choices.iter().zip(&OptSpace::CARDINALITIES).enumerate() {
            assert!(
                (*c as usize) < *card,
                "choice {c} out of range for {}",
                OptSpace::dims()[i].name
            );
        }
        let b = |i: usize| choices[i] != 0;
        OptConfig {
            thread_jumps: b(0),
            crossjumping: b(1),
            optimize_sibling_calls: b(2),
            cse_follow_jumps: b(3),
            cse_skip_blocks: b(4),
            expensive_optimizations: b(5),
            strength_reduce: b(6),
            rerun_cse_after_loop: b(7),
            rerun_loop_opt: b(8),
            caller_saves: b(9),
            peephole2: b(10),
            regmove: b(11),
            reorder_blocks: b(12),
            align_functions: b(13),
            align_jumps: b(14),
            align_loops: b(15),
            align_labels: b(16),
            tree_vrp: b(17),
            tree_pre: b(18),
            unswitch_loops: b(19),
            gcse: b(20),
            gcse_lm: b(21),
            gcse_sm: b(22),
            gcse_las: b(23),
            gcse_after_reload: b(24),
            max_gcse_passes: choices[25],
            schedule_insns: b(26),
            sched_interblock: b(27),
            sched_spec: b(28),
            inline_functions: b(29),
            max_inline_insns_auto: choices[30],
            large_function_insns: choices[31],
            large_function_growth: choices[32],
            large_unit_insns: choices[33],
            inline_unit_growth: choices[34],
            inline_call_cost: choices[35],
            unroll_loops: b(36),
            max_unroll_times: choices[37],
            max_unrolled_insns: choices[38],
        }
    }

    // --- parameter accessors (resolved through the menus) -------------------

    /// Resolved `max-unrolled-insns` value.
    pub fn max_unrolled_insns_value(&self) -> u32 {
        menus::MAX_UNROLLED_INSNS[self.max_unrolled_insns as usize]
    }
    /// Resolved `max-unroll-times` value.
    pub fn max_unroll_times_value(&self) -> u32 {
        menus::MAX_UNROLL_TIMES[self.max_unroll_times as usize]
    }
    /// Resolved `inline-call-cost` value.
    pub fn inline_call_cost_value(&self) -> u32 {
        menus::INLINE_CALL_COST[self.inline_call_cost as usize]
    }
    /// Resolved `inline-unit-growth` value (percent).
    pub fn inline_unit_growth_value(&self) -> u32 {
        menus::INLINE_UNIT_GROWTH[self.inline_unit_growth as usize]
    }
    /// Resolved `large-unit-insns` value.
    pub fn large_unit_insns_value(&self) -> u32 {
        menus::LARGE_UNIT_INSNS[self.large_unit_insns as usize]
    }
    /// Resolved `large-function-growth` value (percent).
    pub fn large_function_growth_value(&self) -> u32 {
        menus::LARGE_FUNCTION_GROWTH[self.large_function_growth as usize]
    }
    /// Resolved `large-function-insns` value.
    pub fn large_function_insns_value(&self) -> u32 {
        menus::LARGE_FUNCTION_INSNS[self.large_function_insns as usize]
    }
    /// Resolved `max-inline-insns-auto` value.
    pub fn max_inline_insns_auto_value(&self) -> u32 {
        menus::MAX_INLINE_INSNS_AUTO[self.max_inline_insns_auto as usize]
    }
    /// Resolved `max-gcse-passes` value.
    pub fn max_gcse_passes_value(&self) -> u32 {
        menus::MAX_GCSE_PASSES[self.max_gcse_passes as usize]
    }
}

impl Default for OptConfig {
    /// The paper's baseline: `-O3`.
    fn default() -> Self {
        Self::o3()
    }
}

/// A dimension of the optimisation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptDim {
    /// gcc-style name, as printed in the paper's figures.
    pub name: &'static str,
    /// Number of selectable values (2 for on/off flags).
    pub cardinality: usize,
}

/// Static description of the whole space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptSpace;

impl OptSpace {
    /// Per-dimension cardinalities in canonical order — the static,
    /// allocation-free mirror of [`dims`](Self::dims) for hot-path
    /// validation (`dims_cardinalities_match_static_table` pins the two
    /// in sync).
    pub const CARDINALITIES: [usize; 39] = [
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        2,
        menus::MAX_GCSE_PASSES.len(),
        2,
        2,
        2,
        2,
        menus::MAX_INLINE_INSNS_AUTO.len(),
        menus::LARGE_FUNCTION_INSNS.len(),
        menus::LARGE_FUNCTION_GROWTH.len(),
        menus::LARGE_UNIT_INSNS.len(),
        menus::INLINE_UNIT_GROWTH.len(),
        menus::INLINE_CALL_COST.len(),
        2,
        menus::MAX_UNROLL_TIMES.len(),
        menus::MAX_UNROLLED_INSNS.len(),
    ];

    /// The 39 dimensions in canonical ([`OptConfig::to_choices`]) order,
    /// named exactly as in Figure 8 of the paper.
    pub fn dims() -> Vec<OptDim> {
        use menus::*;
        vec![
            OptDim {
                name: "fthread_jumps",
                cardinality: 2,
            },
            OptDim {
                name: "fcrossjumping",
                cardinality: 2,
            },
            OptDim {
                name: "foptimize_sibling_calls",
                cardinality: 2,
            },
            OptDim {
                name: "fcse_follow_jumps",
                cardinality: 2,
            },
            OptDim {
                name: "fcse_skip_blocks",
                cardinality: 2,
            },
            OptDim {
                name: "fexpensive_optimizations",
                cardinality: 2,
            },
            OptDim {
                name: "fstrength_reduce",
                cardinality: 2,
            },
            OptDim {
                name: "fre_run_cse_after_loop",
                cardinality: 2,
            },
            OptDim {
                name: "frerun_loop_opt",
                cardinality: 2,
            },
            OptDim {
                name: "fcaller_saves",
                cardinality: 2,
            },
            OptDim {
                name: "fpeephole2",
                cardinality: 2,
            },
            OptDim {
                name: "fregmove",
                cardinality: 2,
            },
            OptDim {
                name: "freorder_blocks",
                cardinality: 2,
            },
            OptDim {
                name: "falign_functions",
                cardinality: 2,
            },
            OptDim {
                name: "falign_jumps",
                cardinality: 2,
            },
            OptDim {
                name: "falign_loops",
                cardinality: 2,
            },
            OptDim {
                name: "falign_labels",
                cardinality: 2,
            },
            OptDim {
                name: "ftree_vrp",
                cardinality: 2,
            },
            OptDim {
                name: "ftree_pre",
                cardinality: 2,
            },
            OptDim {
                name: "funswitch_loops",
                cardinality: 2,
            },
            OptDim {
                name: "fgcse",
                cardinality: 2,
            },
            OptDim {
                name: "fno_gcse_lm",
                cardinality: 2,
            },
            OptDim {
                name: "fgcse_sm",
                cardinality: 2,
            },
            OptDim {
                name: "fgcse_las",
                cardinality: 2,
            },
            OptDim {
                name: "fgcse_after_reload",
                cardinality: 2,
            },
            OptDim {
                name: "param_max_gcse_passes",
                cardinality: MAX_GCSE_PASSES.len(),
            },
            OptDim {
                name: "fschedule_insns",
                cardinality: 2,
            },
            OptDim {
                name: "fno_sched_interblock",
                cardinality: 2,
            },
            OptDim {
                name: "fno_sched_spec",
                cardinality: 2,
            },
            OptDim {
                name: "finline_functions",
                cardinality: 2,
            },
            OptDim {
                name: "param_max_inline_insns_auto",
                cardinality: MAX_INLINE_INSNS_AUTO.len(),
            },
            OptDim {
                name: "param_large_function_insns",
                cardinality: LARGE_FUNCTION_INSNS.len(),
            },
            OptDim {
                name: "param_large_function_growth",
                cardinality: LARGE_FUNCTION_GROWTH.len(),
            },
            OptDim {
                name: "param_large_unit_insns",
                cardinality: LARGE_UNIT_INSNS.len(),
            },
            OptDim {
                name: "param_inline_unit_growth",
                cardinality: INLINE_UNIT_GROWTH.len(),
            },
            OptDim {
                name: "param_inline_call_cost",
                cardinality: INLINE_CALL_COST.len(),
            },
            OptDim {
                name: "funroll_loops",
                cardinality: 2,
            },
            OptDim {
                name: "param_max_unroll_times",
                cardinality: MAX_UNROLL_TIMES.len(),
            },
            OptDim {
                name: "param_max_unrolled_insns",
                cardinality: MAX_UNROLLED_INSNS.len(),
            },
        ]
    }

    /// Number of dimensions (39).
    pub fn n_dims() -> usize {
        Self::dims().len()
    }

    /// `(flag-only combinations, total combinations)` — the counts the paper
    /// quotes as "642 million" and "1.69e17" for its gcc space.
    pub fn combination_counts() -> (f64, f64) {
        let dims = Self::dims();
        let mut flags = 1.0f64;
        let mut total = 1.0f64;
        for d in &dims {
            total *= d.cardinality as f64;
            if d.cardinality == 2 {
                flags *= 2.0;
            }
        }
        (flags, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn choices_round_trip_for_presets() {
        for cfg in [
            OptConfig::o0(),
            OptConfig::o1(),
            OptConfig::o2(),
            OptConfig::o3(),
        ] {
            let c = cfg.to_choices();
            assert_eq!(OptConfig::from_choices(&c), cfg);
            assert_eq!(c.len(), OptSpace::n_dims());
        }
    }

    #[test]
    fn choices_round_trip_for_random_samples() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let cfg = OptConfig::sample(&mut rng);
            assert_eq!(OptConfig::from_choices(&cfg.to_choices()), cfg);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a: Vec<OptConfig> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| OptConfig::sample(&mut rng)).collect()
        };
        let b: Vec<OptConfig> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| OptConfig::sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn o3_is_superset_of_o2_flags() {
        let o2 = OptConfig::o2().to_choices();
        let o3 = OptConfig::o3().to_choices();
        let dims = OptSpace::dims();
        for ((a, b), d) in o2.iter().zip(&o3).zip(&dims) {
            if d.cardinality == 2 {
                assert!(b >= a, "{} regressed from O2 to O3", d.name);
            }
        }
    }

    #[test]
    fn space_sizes_match_paper_magnitudes() {
        let (flags, total) = OptSpace::combination_counts();
        // 30 on/off flags -> ~1.07e9 (paper: 642e6 for its 29.26-bit space).
        assert!(flags >= 5e8 && flags <= 2e9, "flags = {flags}");
        // Full space ~1e14..1e18 (paper: 1.69e17).
        assert!(total >= 1e13 && total <= 1e19, "total = {total}");
    }

    #[test]
    fn dims_cardinalities_match_static_table() {
        let dims = OptSpace::dims();
        assert_eq!(dims.len(), OptSpace::CARDINALITIES.len());
        for (d, &card) in dims.iter().zip(&OptSpace::CARDINALITIES) {
            assert_eq!(d.cardinality, card, "{}", d.name);
        }
    }

    #[test]
    fn dim_names_are_unique() {
        let dims = OptSpace::dims();
        let mut names: Vec<_> = dims.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), dims.len());
    }

    #[test]
    fn parameter_accessors_resolve_menus() {
        let cfg = OptConfig::o3();
        assert_eq!(cfg.max_unroll_times_value(), 8);
        assert_eq!(cfg.max_unrolled_insns_value(), 200);
        assert_eq!(cfg.max_inline_insns_auto_value(), 90);
        assert_eq!(cfg.max_gcse_passes_value(), 1);
        assert_eq!(cfg.inline_call_cost_value(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_choices_rejects_bad_index() {
        let mut c = OptConfig::o3().to_choices();
        c[25] = 200;
        let _ = OptConfig::from_choices(&c);
    }
}
