//! Shared analyses and CFG surgery helpers used by several passes.

use portopt_ir::{BinOp, BlockId, Function, Inst, Loop, Operand, Pred, VReg};

/// Number of definitions of each virtual register in `f`.
pub fn def_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.vreg_count as usize];
    for p in &f.params {
        counts[p.index()] += 1;
    }
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.def() {
                counts[d.index()] += 1;
            }
        }
    }
    counts
}

/// A symbolic value key for GVN-style passes.
///
/// Keys are only comparable for *single-definition* registers (registers
/// defined exactly once in the function, including by being a parameter):
/// such a register always denotes the same run-time value wherever it is
/// in scope, which makes key equality imply value equality under dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// A single-def register.
    Reg(VReg),
    /// An immediate.
    Imm(i64),
}

impl ValueKey {
    /// Key for an operand; `None` when the register is not single-def.
    pub fn of(op: Operand, single_def: &[bool]) -> Option<ValueKey> {
        match op {
            Operand::Imm(v) => Some(ValueKey::Imm(v)),
            Operand::Reg(r) => single_def[r.index()].then_some(ValueKey::Reg(r)),
        }
    }
}

/// An expression key: operation plus operand value keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprKey {
    /// Binary ALU expression.
    Bin(BinOp, ValueKey, ValueKey),
    /// Comparison expression.
    Cmp(Pred, ValueKey, ValueKey),
    /// Memory load from `base + offset`.
    Load(ValueKey, i64),
}

impl ExprKey {
    /// Key for a pure instruction, if all operands have stable keys.
    /// Commutative operations are canonicalised (smaller key first).
    pub fn of(inst: &Inst, single_def: &[bool]) -> Option<ExprKey> {
        match inst {
            Inst::Bin { op, a, b, .. } => {
                let ka = ValueKey::of(*a, single_def)?;
                let kb = ValueKey::of(*b, single_def)?;
                let (ka, kb) = if op.is_commutative() && key_rank(kb) < key_rank(ka) {
                    (kb, ka)
                } else {
                    (ka, kb)
                };
                Some(ExprKey::Bin(*op, ka, kb))
            }
            Inst::Cmp { pred, a, b, .. } => {
                let ka = ValueKey::of(*a, single_def)?;
                let kb = ValueKey::of(*b, single_def)?;
                Some(ExprKey::Cmp(*pred, ka, kb))
            }
            Inst::Load { addr, offset, .. } => {
                let ka = ValueKey::of(Operand::Reg(*addr), single_def)?;
                Some(ExprKey::Load(ka, *offset))
            }
            _ => None,
        }
    }
}

fn key_rank(k: ValueKey) -> (u8, i64) {
    match k {
        ValueKey::Imm(v) => (0, v),
        ValueKey::Reg(r) => (1, r.0 as i64),
    }
}

/// Returns `single_def[r] == true` when register `r` is defined exactly once.
pub fn single_defs(f: &Function) -> Vec<bool> {
    def_counts(f).iter().map(|&c| c == 1).collect()
}

/// Ensures `l.header` has a dedicated preheader: a block that is the single
/// edge into the loop from outside. Returns the preheader id.
///
/// All non-latch predecessors of the header are retargeted to the new block.
/// The loop structure (`l`) is stale afterwards; callers must recompute
/// analyses before further use.
pub fn ensure_preheader(f: &mut Function, l: &Loop) -> BlockId {
    let pre = f.new_block();
    let header = l.header;
    // Retarget all out-of-loop predecessors of the header to `pre`.
    for bi in 0..f.blocks.len() {
        let b = BlockId(bi as u32);
        if b == pre || l.contains(b) {
            continue;
        }
        if let Some(t) = f.block_mut(b).insts.last_mut() {
            t.map_targets(|old| if old == header { pre } else { old });
        }
    }
    f.block_mut(pre).insts.push(Inst::Br { target: header });
    pre
}

/// Clones a set of blocks, remapping internal branch targets and leaving
/// external targets untouched. Returns the mapping old → new.
pub fn clone_blocks(f: &mut Function, blocks: &[BlockId]) -> Vec<(BlockId, BlockId)> {
    let mut map = Vec::with_capacity(blocks.len());
    for &b in blocks {
        let nb = f.new_block();
        let insts = f.block(b).insts.clone();
        f.block_mut(nb).insts = insts;
        map.push((b, nb));
    }
    for &(_, nb) in &map {
        if let Some(t) = f.block_mut(nb).insts.last_mut() {
            t.map_targets(|old| {
                map.iter()
                    .find(|(o, _)| *o == old)
                    .map(|(_, n)| *n)
                    .unwrap_or(old)
            });
        }
    }
    map
}

/// Conservative may-alias test for two memory operations.
///
/// `true` means the accesses may touch the same word. Accesses through the
/// same base register with different constant offsets are provably disjoint;
/// everything else (different base registers, equal offsets) is assumed to
/// alias. Frame slots never alias `Load`/`Store` (the stack region is
/// disjoint from globals by construction).
///
/// For object-based disambiguation across different base registers, use
/// [`AliasAnalysis`].
pub fn may_alias(a: &Inst, b: &Inst) -> bool {
    use Inst::*;
    match (a, b) {
        (
            Load {
                addr: a1,
                offset: o1,
                ..
            }
            | Store {
                addr: a1,
                offset: o1,
                ..
            },
            Load {
                addr: a2,
                offset: o2,
                ..
            }
            | Store {
                addr: a2,
                offset: o2,
                ..
            },
        ) => {
            if a1 == a2 {
                o1 == o2
            } else {
                true
            }
        }
        (
            FrameLoad { slot: s1, .. } | FrameStore { slot: s1, .. },
            FrameLoad { slot: s2, .. } | FrameStore { slot: s2, .. },
        ) => s1 == s2,
        // Frame vs global memory: disjoint regions.
        (Load { .. } | Store { .. }, FrameLoad { .. } | FrameStore { .. }) => false,
        (FrameLoad { .. } | FrameStore { .. }, Load { .. } | Store { .. }) => false,
        _ => false,
    }
}

/// The memory object an address register points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// No information (aliases everything).
    Unknown,
    /// Points into global `index` of the module.
    Global(u32),
}

/// Object-based alias analysis.
///
/// Address registers are traced to the global whose address range their
/// defining constant falls into; pointer arithmetic (`add`/`sub`) keeps the
/// region of its pointer operand. Like C compilers, we assume pointer
/// arithmetic never crosses from one object into another — the benchmark
/// suite respects this, and the interpreter's bounds checks guard gross
/// violations. Two accesses in *different* global regions never alias.
#[derive(Debug, Clone)]
pub struct AliasAnalysis {
    region: Vec<Region>,
}

impl AliasAnalysis {
    /// Computes regions for every register of `f`, given the module's global
    /// layout (`globals[i] = (base, bytes)`).
    pub fn compute(f: &Function, globals: &[(u32, u32)]) -> Self {
        let n = f.vreg_count as usize;
        // Fixpoint with a meet: Unknown wins over disagreement. Start from
        // "no def seen" (None), then merge every def's inferred region.
        let mut region: Vec<Option<Region>> = vec![None; n];
        for p in &f.params {
            region[p.index()] = Some(Region::Unknown);
        }
        let of_const = |v: i64| -> Region {
            for (gi, &(base, bytes)) in globals.iter().enumerate() {
                if v >= base as i64 && v < (base + bytes.max(4)) as i64 {
                    return Region::Global(gi as u32);
                }
            }
            Region::Unknown
        };
        for _ in 0..4 {
            let mut changed = false;
            for b in &f.blocks {
                for inst in &b.insts {
                    let Some(d) = inst.def() else { continue };
                    let new = match inst {
                        Inst::Copy {
                            src: Operand::Imm(v),
                            ..
                        } => of_const(*v),
                        Inst::Copy {
                            src: Operand::Reg(s),
                            ..
                        } => region[s.index()].unwrap_or(Region::Unknown),
                        Inst::Bin {
                            op: BinOp::Add | BinOp::Sub,
                            a,
                            b,
                            ..
                        } => {
                            let ra = match a {
                                Operand::Reg(r) => region[r.index()].unwrap_or(Region::Unknown),
                                Operand::Imm(v) => of_const(*v),
                            };
                            let rb = match b {
                                Operand::Reg(r) => region[r.index()].unwrap_or(Region::Unknown),
                                Operand::Imm(_) => Region::Unknown,
                            };
                            // A pointer plus a non-pointer stays in its object.
                            match (ra, rb) {
                                (Region::Global(g), Region::Unknown) => Region::Global(g),
                                (Region::Unknown, Region::Global(g)) => Region::Global(g),
                                _ => Region::Unknown,
                            }
                        }
                        _ => Region::Unknown,
                    };
                    let merged = match region[d.index()] {
                        None => Some(new),
                        Some(old) if old == new => Some(old),
                        Some(_) => Some(Region::Unknown),
                    };
                    if merged != region[d.index()] {
                        region[d.index()] = merged;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        AliasAnalysis {
            region: region
                .into_iter()
                .map(|r| r.unwrap_or(Region::Unknown))
                .collect(),
        }
    }

    /// Region of register `r`.
    pub fn region(&self, r: VReg) -> Region {
        self.region
            .get(r.index())
            .copied()
            .unwrap_or(Region::Unknown)
    }

    /// May the two memory instructions touch the same word?
    pub fn may_alias(&self, a: &Inst, b: &Inst) -> bool {
        if !may_alias(a, b) {
            return false;
        }
        // Same-base cases were already resolved; try region disambiguation.
        let base_of = |i: &Inst| match i {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } => Some(*addr),
            _ => None,
        };
        if let (Some(ra), Some(rb)) = (base_of(a), base_of(b)) {
            if let (Region::Global(ga), Region::Global(gb)) = (self.region(ra), self.region(rb)) {
                if ga != gb {
                    return false;
                }
            }
        }
        true
    }
}

/// Extracts `(base, bytes)` pairs for [`AliasAnalysis::compute`] from a module.
pub fn global_ranges(m: &portopt_ir::Module) -> Vec<(u32, u32)> {
    m.global_addrs().iter().map(|a| (a.base, a.bytes)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::{FuncBuilder, LoopForest, Module, Pred};

    #[test]
    fn def_counts_include_params() {
        let mut b = FuncBuilder::new("f", 2);
        let x = b.param(0);
        let y = b.add(x, 1);
        b.assign(y, 2); // second def of y
        b.ret(y);
        let f = b.finish();
        let c = def_counts(&f);
        assert_eq!(c[x.index()], 1);
        assert_eq!(c[y.index()], 2);
        let sd = single_defs(&f);
        assert!(sd[x.index()]);
        assert!(!sd[y.index()]);
    }

    #[test]
    fn expr_key_canonicalises_commutative() {
        let mut b = FuncBuilder::new("f", 2);
        let x = b.param(0);
        let y = b.param(1);
        let s1 = b.add(x, y);
        let s2 = b.add(y, x);
        b.ret(b.param(0));
        let _ = (s1, s2);
        let f = b.finish();
        let sd = single_defs(&f);
        let k1 = ExprKey::of(&f.blocks[0].insts[0], &sd).unwrap();
        let k2 = ExprKey::of(&f.blocks[0].insts[1], &sd).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn expr_key_none_for_multi_def() {
        let mut b = FuncBuilder::new("f", 1);
        let x = b.param(0);
        let t = b.add(x, 1);
        b.assign(t, 0);
        let u = b.add(t, 2); // t multi-def: no key
        b.ret(u);
        let f = b.finish();
        let sd = single_defs(&f);
        assert!(ExprKey::of(&f.blocks[0].insts[2], &sd).is_none());
    }

    #[test]
    fn preheader_redirects_entry_edge() {
        let mut b = FuncBuilder::new("f", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let mut f = b.finish();
        let lf = LoopForest::compute(&f);
        let l = lf.loops[0].clone();
        let pre = ensure_preheader(&mut f, &l);
        // Entry now branches to the preheader, not the header.
        let entry_succs = f.block(f.entry()).successors();
        assert_eq!(entry_succs, vec![pre]);
        // The latch still branches to the header.
        let latch_succs = f.block(l.latches[0]).successors();
        assert!(latch_succs.contains(&l.header));
        let mut m = Module::new("t");
        m.add_func(f);
        portopt_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn may_alias_rules() {
        let l1 = Inst::Load {
            dst: VReg(1),
            addr: VReg(0),
            offset: 0,
        };
        let l2 = Inst::Load {
            dst: VReg(2),
            addr: VReg(0),
            offset: 4,
        };
        let s1 = Inst::Store {
            src: Operand::Imm(0),
            addr: VReg(0),
            offset: 0,
        };
        let s2 = Inst::Store {
            src: Operand::Imm(0),
            addr: VReg(9),
            offset: 0,
        };
        let fl = Inst::FrameLoad {
            dst: VReg(3),
            slot: 0,
        };
        let fs = Inst::FrameStore {
            src: Operand::Imm(1),
            slot: 0,
        };
        assert!(!may_alias(&l1, &l2)); // same base, different offsets
        assert!(may_alias(&l1, &s1)); // same base, same offset
        assert!(may_alias(&l1, &s2)); // different bases: conservative
        assert!(!may_alias(&l1, &fs)); // global vs frame
        assert!(may_alias(&fl, &fs)); // same slot
    }

    #[test]
    fn clone_blocks_remaps_internal_targets() {
        let mut b = FuncBuilder::new("f", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let mut f = b.finish();
        let lf = LoopForest::compute(&f);
        let blocks = lf.loops[0].blocks.clone();
        let map = clone_blocks(&mut f, &blocks);
        assert_eq!(map.len(), 2);
        // Cloned latch branches to cloned header.
        let (_, new_header) = map.iter().find(|(o, _)| *o == lf.loops[0].header).unwrap();
        let (_, new_body) = map.iter().find(|(o, _)| *o != lf.loops[0].header).unwrap();
        assert!(f.block(*new_body).successors().contains(new_header));
        // Cloned header still exits to the original exit block (external).
        let orig_exit: Vec<_> = f
            .block(lf.loops[0].header)
            .successors()
            .into_iter()
            .filter(|s| !lf.loops[0].contains(*s))
            .collect();
        let cloned_exit: Vec<_> = f
            .block(*new_header)
            .successors()
            .into_iter()
            .filter(|s| !blocks.contains(s) && !map.iter().any(|(_, n)| n == s))
            .collect();
        assert_eq!(orig_exit, cloned_exit);
    }

    #[test]
    fn expr_key_for_pred_load() {
        let mut b = FuncBuilder::new("f", 1);
        let x = b.param(0);
        let v = b.load(x, 8);
        let c = b.cmp(Pred::Eq, v, 0);
        b.ret(c);
        let f = b.finish();
        let sd = single_defs(&f);
        assert!(matches!(
            ExprKey::of(&f.blocks[0].insts[0], &sd),
            Some(ExprKey::Load(ValueKey::Reg(_), 8))
        ));
        assert!(matches!(
            ExprKey::of(&f.blocks[0].insts[1], &sd),
            Some(ExprKey::Cmp(..))
        ));
    }
}
