//! Always-on cleanup transformations.
//!
//! These run between the optional passes of the Figure 3 space, mirroring the
//! parts of gcc's pipeline that are not exposed as `-f` flags: local constant
//! folding, copy propagation, dead-code elimination and CFG simplification.

use portopt_ir::{reachable, BlockId, Function, Inst, Liveness, Module, Operand, VReg};

/// Folds constant expressions and propagates copies within each block.
///
/// Returns `true` if anything changed.
pub fn fold_and_propagate(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // Within a block, track registers with a known constant value or a
        // known register alias. Any redefinition invalidates entries keyed by
        // or aliased to the redefined register.
        let mut consts: Vec<Option<i64>> = vec![None; f.vreg_count as usize];
        let mut alias: Vec<Option<VReg>> = vec![None; f.vreg_count as usize];
        for inst in &mut block.insts {
            // Substitute known values into operands.
            let subst = |o: &mut Operand, consts: &[Option<i64>], alias: &[Option<VReg>]| -> bool {
                if let Operand::Reg(r) = *o {
                    if let Some(c) = consts[r.index()] {
                        *o = Operand::Imm(c);
                        return true;
                    }
                    if let Some(a) = alias[r.index()] {
                        *o = Operand::Reg(a);
                        return true;
                    }
                }
                false
            };
            match inst {
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    changed |= subst(a, &consts, &alias);
                    changed |= subst(b, &consts, &alias);
                }
                Inst::Copy { src, .. } => {
                    changed |= subst(src, &consts, &alias);
                }
                Inst::Store { src, .. } | Inst::FrameStore { src, .. } => {
                    changed |= subst(src, &consts, &alias);
                }
                Inst::Call { args, .. } => {
                    for a in args {
                        changed |= subst(a, &consts, &alias);
                    }
                }
                Inst::Ret { val: Some(v) } => {
                    changed |= subst(v, &consts, &alias);
                }
                Inst::CondBr { cond, then_, else_ } => {
                    // Fold a branch on a compile-time-known condition.
                    if let Some(c) = consts[cond.index()] {
                        let target = if c != 0 { *then_ } else { *else_ };
                        *inst = Inst::Br { target };
                        changed = true;
                    } else if let Some(a) = alias[cond.index()] {
                        *cond = a;
                        changed = true;
                    }
                }
                _ => {}
            }
            // Fold fully-constant computations into copies.
            let folded = match inst {
                Inst::Bin {
                    op,
                    dst,
                    a: Operand::Imm(a),
                    b: Operand::Imm(b),
                } => Some((*dst, op.eval(*a, *b))),
                Inst::Cmp {
                    pred,
                    dst,
                    a: Operand::Imm(a),
                    b: Operand::Imm(b),
                } => Some((*dst, pred.eval(*a, *b))),
                _ => None,
            };
            if let Some((dst, v)) = folded {
                *inst = Inst::Copy {
                    dst,
                    src: Operand::Imm(v),
                };
                changed = true;
            }
            // Algebraic identities: x+0, x-0, x*1, x*0, x&x, x|0, x^0, x<<0...
            if let Inst::Bin { op, dst, a, b } = inst.clone() {
                use portopt_ir::BinOp::*;
                let ident = match (op, a, b) {
                    (Add | Sub | Or | Xor | Shl | Shr | Sar, x, Operand::Imm(0)) => Some(x),
                    (Add | Or | Xor, Operand::Imm(0), x) => Some(x),
                    (Mul, x, Operand::Imm(1)) | (Mul, Operand::Imm(1), x) => Some(x),
                    (Mul, _, Operand::Imm(0)) | (Mul, Operand::Imm(0), _) => Some(Operand::Imm(0)),
                    (And, _, Operand::Imm(0)) | (And, Operand::Imm(0), _) => Some(Operand::Imm(0)),
                    _ => None,
                };
                if let Some(src) = ident {
                    *inst = Inst::Copy { dst, src };
                    changed = true;
                }
            }
            // Update the known-value maps.
            if let Some(d) = inst.def() {
                // Invalidate aliases pointing at the redefined register.
                for a in alias.iter_mut() {
                    if *a == Some(d) {
                        *a = None;
                    }
                }
                consts[d.index()] = None;
                alias[d.index()] = None;
                if let Inst::Copy { dst, src } = inst {
                    match src {
                        Operand::Imm(v) => consts[dst.index()] = Some(*v),
                        Operand::Reg(s) if *s != *dst => alias[dst.index()] = Some(*s),
                        _ => {}
                    }
                }
            }
        }
    }
    changed
}

/// Deletes pure instructions whose results are never used (global, liveness
/// based). Returns `true` if anything was removed.
pub fn dead_code_elim(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let live = Liveness::compute(f);
        let mut removed = false;
        for (bi, _) in f.iter_blocks().map(|(b, _)| (b, ())).collect::<Vec<_>>() {
            let out = live.out(bi).clone();
            let block = f.block_mut(bi);
            // Walk backwards tracking liveness within the block.
            let mut live_now = out;
            let mut keep = vec![true; block.insts.len()];
            for (k, inst) in block.insts.iter().enumerate().rev() {
                let dead_def = inst.def().is_some_and(|d| !live_now.contains(d.index()));
                if inst.is_pure() && dead_def {
                    keep[k] = false;
                    continue;
                }
                if let Some(d) = inst.def() {
                    live_now.remove(d.index());
                }
                inst.for_each_use(|r| {
                    live_now.insert(r.index());
                });
            }
            if keep.iter().any(|&k| !k) {
                let mut i = 0;
                block.insts.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
                removed = true;
            }
        }
        changed |= removed;
        if !removed {
            return changed;
        }
    }
}

/// Removes a `Copy { dst, src: Reg(dst) }` self-move; these arise from
/// propagation and coalescing. Returns `true` if anything was removed.
pub fn remove_self_copies(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        let before = block.insts.len();
        block
            .insts
            .retain(|i| !matches!(i, Inst::Copy { dst, src: Operand::Reg(s) } if dst == s));
        changed |= block.insts.len() != before;
    }
    changed
}

/// CFG simplification:
/// * fold `CondBr` on a constant condition into `Br`;
/// * collapse `CondBr` with identical targets into `Br`;
/// * merge single-pred/single-succ straight-line pairs;
/// * delete unreachable blocks (compacting ids).
///
/// Returns `true` if anything changed.
pub fn simplify_cfg(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut local = false;

        // Fold trivial conditional branches.
        for block in &mut f.blocks {
            if let Some(Inst::CondBr { then_, else_, .. }) = block.insts.last().cloned() {
                if then_ == else_ {
                    *block.insts.last_mut().unwrap() = Inst::Br { target: then_ };
                    local = true;
                }
            }
        }

        // Merge b -> c when b ends `br c` and c has exactly one predecessor.
        let cfg = portopt_ir::Cfg::compute(f);
        let mut merged = false;
        for bi in 0..f.blocks.len() {
            let b = BlockId(bi as u32);
            if let Some(Inst::Br { target }) = f.block(b).insts.last().cloned() {
                if target != b && cfg.preds(target).len() == 1 && target != f.entry() {
                    let mut tail = std::mem::take(&mut f.block_mut(target).insts);
                    let bb = f.block_mut(b);
                    bb.insts.pop(); // drop the br
                    bb.insts.append(&mut tail);
                    merged = true;
                    local = true;
                    break; // CFG changed; recompute
                }
            }
        }
        if merged {
            changed = true;
            continue;
        }

        // Delete unreachable blocks, remapping ids.
        let reach = reachable(f);
        if reach.iter().any(|&r| !r) {
            let mut remap: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
            let mut new_blocks = Vec::new();
            for (i, r) in reach.iter().enumerate() {
                if *r {
                    remap[i] = Some(BlockId(new_blocks.len() as u32));
                    new_blocks.push(std::mem::take(&mut f.blocks[i]));
                }
            }
            for b in &mut new_blocks {
                if let Some(t) = b.insts.last_mut() {
                    t.map_targets(|old| remap[old.index()].expect("reachable target"));
                }
            }
            f.blocks = new_blocks;
            local = true;
        }

        changed |= local;
        if !local {
            return changed;
        }
    }
}

/// Runs the full cleanup bundle to a fixpoint (bounded).
pub fn cleanup(f: &mut Function) {
    for _ in 0..8 {
        let mut any = fold_and_propagate(f);
        any |= remove_self_copies(f);
        any |= dead_code_elim(f);
        any |= simplify_cfg(f);
        if !any {
            break;
        }
    }
}

/// Runs [`cleanup`] on every function of a module.
pub fn cleanup_module(m: &mut Module) {
    for f in &mut m.funcs {
        cleanup(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, ModuleBuilder, Pred};

    fn close(m: Module) -> Module {
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn folds_constants() {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 0);
        let x = b.iconst(6);
        let y = b.iconst(7);
        let z = b.mul(x, y);
        b.ret(z);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = close(mb.finish());
        let before = run_module(&m, &[]).unwrap();
        cleanup_module(&mut m);
        verify_module(&m).unwrap();
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret, 42);
        // Everything folds into `ret 42` — a single instruction.
        assert_eq!(m.funcs[0].inst_count(), 1);
    }

    #[test]
    fn removes_dead_code() {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 1);
        let x = b.param(0);
        let _dead = b.mul(x, 99);
        let live = b.add(x, 1);
        b.ret(live);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = close(mb.finish());
        cleanup_module(&mut m);
        assert_eq!(m.funcs[0].inst_count(), 2); // add + ret
        assert_eq!(run_module(&m, &[4]).unwrap().ret, 5);
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 1);
        let callee = {
            let mut b = FuncBuilder::new("side", 1);
            let p = b.iconst(base as i64);
            b.store(b.param(0), p, 0);
            b.ret_void();
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        b.call_void(callee, &[Operand::Imm(9)]);
        let p = b.iconst(base as i64);
        let v = b.load(p, 0);
        b.ret(v);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = close(mb.finish());
        cleanup_module(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 9);
    }

    #[test]
    fn simplifies_constant_branch() {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 0);
        let c = b.cmp(Pred::Lt, 1, 2); // always true
        let out = b.fresh();
        b.if_else(c, |b| b.assign(out, 10), |b| b.assign(out, 20));
        b.ret(out);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = close(mb.finish());
        cleanup_module(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 10);
        // The else-arm must be gone and the remaining code merged into
        // a single straight-line block.
        assert_eq!(m.funcs[0].blocks.len(), 1);
    }

    #[test]
    fn merges_straightline_chains() {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 0);
        let next = b.block();
        let x = b.iconst(3);
        b.br(next);
        b.switch_to(next);
        let y = b.add(x, 4);
        b.ret(y);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = close(mb.finish());
        cleanup_module(&mut m);
        assert_eq!(m.funcs[0].blocks.len(), 1);
        assert_eq!(run_module(&m, &[]).unwrap().ret, 7);
    }

    #[test]
    fn semantics_preserved_on_loop_program() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("buf", 32);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 32, 1, |b, i| {
            let t = b.mul(i, 3);
            let u = b.add(t, 0); // identity, should fold
            let off = b.shl(i, 2);
            let addr = b.add(p, off);
            b.store(u, addr, 0);
            let v = b.load(addr, 0);
            let t2 = b.add(acc, v);
            b.assign(acc, t2);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = close(mb.finish());
        let before = run_module(&m, &[]).unwrap();
        cleanup_module(&mut m);
        verify_module(&m).unwrap();
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(before.mem_hash, after.mem_hash);
        assert!(after.dyn_insts <= before.dyn_insts);
    }
}
