//! `-foptimize-sibling-calls`: tail-call optimisation.
//!
//! Self-recursive tail calls are rewritten into loops: the call's arguments
//! are copied into the parameter registers and control branches back to the
//! entry block. This removes one stack frame (and its prologue/epilogue
//! and call overhead) per recursion level — the dominant win for the
//! divide-and-conquer benchmarks (`qsort`-style second recursion).

use portopt_ir::{BlockId, Function, Inst, Operand, VReg};

/// Runs self-tail-call elimination on function `fid` of the module (the
/// function needs to know its own id to recognise self calls).
/// Returns `true` if any call was rewritten.
pub fn optimize_sibling_calls(f: &mut Function, self_id: portopt_ir::FuncId) -> bool {
    let mut changed = false;
    let params = f.params.clone();
    let nblocks = f.blocks.len();

    for bi in 0..nblocks {
        let insts = &f.blocks[bi].insts;
        let n = insts.len();
        if n < 2 {
            continue;
        }
        // Pattern: `[..., dst = call self(args), ret dst]`
        // or `[..., call self(args), ret]`.
        let (Inst::Call { func, args, dst }, Inst::Ret { val }) = (&insts[n - 2], &insts[n - 1])
        else {
            continue;
        };
        if *func != self_id {
            continue;
        }
        let tail_ok = match (dst, val) {
            (Some(d), Some(Operand::Reg(r))) => d == r,
            (None, None) => true,
            (_, None) => true, // result discarded by the caller
            _ => false,
        };
        if !tail_ok || args.len() != params.len() {
            continue;
        }
        let args = args.clone();

        // Rewrite: parallel-copy args into params (via temporaries, in case
        // an arg reads a param that an earlier copy would clobber), then
        // branch to the entry block.
        let mut new_tail: Vec<Inst> = Vec::new();
        let mut temps: Vec<VReg> = Vec::new();
        for a in &args {
            let t = f.new_vreg();
            temps.push(t);
            new_tail.push(Inst::Copy { dst: t, src: *a });
        }
        for (p, t) in params.iter().zip(&temps) {
            new_tail.push(Inst::Copy {
                dst: *p,
                src: Operand::Reg(*t),
            });
        }
        new_tail.push(Inst::Br { target: BlockId(0) });

        let insts = &mut f.blocks[bi].insts;
        insts.truncate(n - 2);
        insts.extend(new_tail);
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::{run_module_with, ExecLimits};
    use portopt_ir::{verify_module, FuncBuilder, ModuleBuilder, Pred};

    /// gcd(a, b) via tail recursion.
    fn gcd_module() -> portopt_ir::Module {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("gcd", 2);
        let mut b = FuncBuilder::new("gcd", 2);
        let (a, bb) = (b.param(0), b.param(1));
        let c = b.cmp(Pred::Eq, bb, 0);
        let done = b.block();
        let rec = b.block();
        b.cond_br(c, done, rec);
        b.switch_to(done);
        b.ret(a);
        b.switch_to(rec);
        let r = b.rem(a, bb);
        let res = b.call(fid, &[bb.into(), r.into()]);
        b.ret(res);
        mb.define(fid, b.finish());
        mb.entry(fid);
        mb.finish()
    }

    #[test]
    fn gcd_becomes_a_loop() {
        let mut m = gcd_module();
        let fid = m.entry;
        let before = run_module_with(&m, &[1071, 462], ExecLimits::default()).unwrap();
        assert!(optimize_sibling_calls(&mut m.funcs[0], fid));
        cleanup(&mut m.funcs[0]);
        verify_module(&m).unwrap();
        let after = run_module_with(&m, &[1071, 462], ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret, 21);
        // No self-call remains.
        assert!(!portopt_ir::calls(&m.funcs[0], fid));
    }

    #[test]
    fn deep_recursion_no_longer_overflows() {
        let mut m = gcd_module();
        let fid = m.entry;
        optimize_sibling_calls(&mut m.funcs[0], fid);
        // Fibonacci-adjacent inputs force maximal gcd recursion depth; with
        // the loop form even a tiny stack budget suffices.
        let r = run_module_with(
            &m,
            &[832_040, 514_229],
            ExecLimits {
                fuel: 10_000_000,
                max_depth: 4,
            },
        )
        .unwrap();
        assert_eq!(r.ret, 1);
    }

    #[test]
    fn non_tail_recursion_untouched() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("fact", 1);
        let mut b = FuncBuilder::new("fact", 1);
        let n = b.param(0);
        let c = b.cmp(Pred::Le, n, 1);
        let done = b.block();
        let rec = b.block();
        b.cond_br(c, done, rec);
        b.switch_to(done);
        b.ret(1);
        b.switch_to(rec);
        let n1 = b.sub(n, 1);
        let r = b.call(fid, &[n1.into()]);
        let p = b.mul(n, r); // multiply AFTER the call: not a tail call
        b.ret(p);
        mb.define(fid, b.finish());
        mb.entry(fid);
        let mut m = mb.finish();
        assert!(!optimize_sibling_calls(&mut m.funcs[0], fid));
    }

    #[test]
    fn arg_swap_handled_by_parallel_copy() {
        // f(a, b) = b == 0 ? a : f(b, a-1): args swap positions.
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("f", 2);
        let mut b = FuncBuilder::new("f", 2);
        let (a, bb) = (b.param(0), b.param(1));
        let c = b.cmp(Pred::Le, bb, 0);
        let done = b.block();
        let rec = b.block();
        b.cond_br(c, done, rec);
        b.switch_to(done);
        b.ret(a);
        b.switch_to(rec);
        let b1 = b.sub(bb, 1);
        let res = b.call(fid, &[bb.into(), b1.into()]); // f(b, b-1)
        b.ret(res);
        mb.define(fid, b.finish());
        mb.entry(fid);
        let mut m = mb.finish();
        let before = run_module_with(&m, &[7, 5], ExecLimits::default()).unwrap();
        assert!(optimize_sibling_calls(&mut m.funcs[0], fid));
        verify_module(&m).unwrap();
        let after = run_module_with(&m, &[7, 5], ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
    }
}
