//! `-funswitch-loops`: hoist loop-invariant conditionals by duplicating
//! the loop.
//!
//! A conditional branch inside a loop whose condition register is defined
//! outside the loop is resolved once, in the preheader: the loop is cloned,
//! one version keeps the then-edge hard-wired and the other the else-edge.
//! Dynamic branch count drops at the cost of doubled code size — exactly
//! the icache trade-off the paper's model has to learn.

use crate::analysis::{clone_blocks, ensure_preheader};
use portopt_ir::{Function, Inst, LoopForest};

/// Loops larger than this are not unswitched (code-growth guard).
const MAX_UNSWITCH_INSTS: usize = 120;

/// Runs loop unswitching on `f`. Returns `true` if any loop was duplicated.
pub fn unswitch_loops(f: &mut Function) -> bool {
    let mut changed = false;
    // At most one unswitch per call per loop nest; iterating more would
    // double code repeatedly.
    let candidates: Vec<(portopt_ir::Loop, portopt_ir::BlockId, usize)> = {
        let forest = LoopForest::compute(f);
        let mut out = Vec::new();
        for l in &forest.loops {
            let size: usize = l.blocks.iter().map(|&b| f.block(b).insts.len()).sum();
            if size > MAX_UNSWITCH_INSTS {
                continue;
            }
            // Registers defined inside the loop.
            let mut defined_in = vec![false; f.vreg_count as usize];
            for &b in &l.blocks {
                for i in &f.block(b).insts {
                    if let Some(d) = i.def() {
                        defined_in[d.index()] = true;
                    }
                }
            }
            // An invariant CondBr that is not the loop's own exit test.
            for &b in &l.blocks {
                if let Some(Inst::CondBr { cond, then_, else_ }) = f.block(b).insts.last() {
                    if !defined_in[cond.index()] && l.contains(*then_) && l.contains(*else_) {
                        out.push((l.clone(), b, f.block(b).insts.len() - 1));
                        break;
                    }
                }
            }
        }
        out
    };

    // Apply one (the first) to keep analyses manageable, then recurse.
    if let Some((l, branch_block, branch_idx)) = candidates.into_iter().next() {
        let Inst::CondBr { cond, then_, else_ } = f.block(branch_block).insts[branch_idx].clone()
        else {
            unreachable!("candidate vanished");
        };
        let pre = ensure_preheader(f, &l);

        // Clone the whole loop: the clone takes the else-edge.
        let map = clone_blocks(f, &l.blocks);
        let cloned = |b: portopt_ir::BlockId| {
            map.iter()
                .find(|(o, _)| *o == b)
                .map(|(_, n)| *n)
                .expect("in map")
        };
        let clone_branch_block = cloned(branch_block);

        // Original keeps then; clone keeps else (remapped into clone space).
        f.block_mut(branch_block).insts[branch_idx] = Inst::Br { target: then_ };
        let else_in_clone = map
            .iter()
            .find(|(o, _)| *o == else_)
            .map(|(_, n)| *n)
            .unwrap_or(else_);
        let idx = f.block(clone_branch_block).insts.len() - 1;
        f.block_mut(clone_branch_block).insts[idx] = Inst::Br {
            target: else_in_clone,
        };

        // Preheader now dispatches on the invariant condition.
        let header_clone = cloned(l.header);
        let last = f.block_mut(pre).insts.len() - 1;
        f.block_mut(pre).insts[last] = Inst::CondBr {
            cond,
            then_: l.header,
            else_: header_clone,
        };
        changed = true;
        // Recurse: other loops may still have candidates.
        unswitch_loops(f);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder, Pred};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    fn switchy(n: i64) -> Function {
        // for i in 0..100 { if (mode) acc+=i else acc+=i*i } — mode invariant.
        let mut b = FuncBuilder::new("main", 1);
        let mode = b.param(0);
        let acc = b.iconst(0);
        let is_linear = b.cmp(Pred::Ne, mode, 0);
        b.counted_loop(0, n, 1, |b, i| {
            b.if_else(
                is_linear,
                |b| {
                    let t = b.add(acc, i);
                    b.assign(acc, t);
                },
                |b| {
                    let sq = b.mul(i, i);
                    let t = b.add(acc, sq);
                    b.assign(acc, t);
                },
            );
        });
        b.ret(acc);
        b.finish()
    }

    #[test]
    fn unswitches_invariant_branch() {
        let mut f = switchy(100);
        let size_before = f.inst_count();
        let r0 = run_module(&close(f.clone()), &[0]).unwrap();
        let r1 = run_module(&close(f.clone()), &[1]).unwrap();
        assert!(unswitch_loops(&mut f));
        cleanup(&mut f);
        let m = close(f.clone());
        // Semantics preserved on both arms.
        assert_eq!(run_module(&m, &[0]).unwrap().ret, r0.ret);
        assert_eq!(run_module(&m, &[1]).unwrap().ret, r1.ret);
        // Code grew (duplication)…
        assert!(f.inst_count() > size_before);
        // …but each run executes fewer dynamic instructions (no per-
        // iteration test of the invariant condition).
        assert!(run_module(&m, &[1]).unwrap().dyn_insts < r1.dyn_insts);
    }

    #[test]
    fn variant_branch_untouched() {
        let mut b = FuncBuilder::new("main", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let odd = b.and(i, 1); // depends on i: variant
            let c = b.cmp(Pred::Ne, odd, 0);
            b.if_else(
                c,
                |b| {
                    let t = b.add(acc, i);
                    b.assign(acc, t);
                },
                |b| {
                    let t = b.sub(acc, i);
                    b.assign(acc, t);
                },
            );
        });
        b.ret(acc);
        let mut f = b.finish();
        assert!(!unswitch_loops(&mut f));
    }

    #[test]
    fn large_loops_skipped() {
        let mut b = FuncBuilder::new("main", 1);
        let mode = b.param(0);
        let acc = b.iconst(0);
        let c = b.cmp(Pred::Ne, mode, 0);
        b.counted_loop(0, 10, 1, |b, i| {
            b.if_else(
                c,
                |b| {
                    // Blow past the size limit.
                    let mut t = i;
                    for _ in 0..70 {
                        t = b.add(t, 1);
                    }
                    let s = b.add(acc, t);
                    b.assign(acc, s);
                },
                |b| {
                    let mut t = i;
                    for _ in 0..70 {
                        t = b.add(t, 2);
                    }
                    let s = b.add(acc, t);
                    b.assign(acc, s);
                },
            );
        });
        b.ret(acc);
        let mut f = b.finish();
        assert!(!unswitch_loops(&mut f));
    }
}
