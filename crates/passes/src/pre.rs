//! `-ftree-pre`: dominator-based global value numbering for arithmetic.
//!
//! The engine here ([`global_value_number`]) eliminates full redundancies:
//! an expression is replaced by a copy of a dominating, identical
//! computation. `tree-pre` applies it to arithmetic and comparisons;
//! `-fgcse` (in [`crate::gcse`]) reuses the same engine with memory loads
//! enabled, guarded by a path-sensitive store/call barrier check.

use crate::analysis::{single_defs, AliasAnalysis, ExprKey};
use portopt_ir::{reverse_postorder, BlockId, Cfg, DomTree, Function, Inst, Operand};
use std::collections::HashMap;

/// Options for the GVN engine.
#[derive(Debug, Clone, Default)]
pub struct GvnOptions {
    /// Also eliminate redundant `Load`s (subject to barrier checks).
    pub include_loads: bool,
    /// Global layout `(base, bytes)` for object-based alias analysis.
    pub globals: Vec<(u32, u32)>,
}

/// Block-to-block reachability as bitsets (`reach[a]` bit `b` set when a path
/// a → … → b exists, `a != b` or via a cycle).
fn reachability(f: &Function, cfg: &Cfg) -> Vec<Vec<u64>> {
    let n = f.blocks.len();
    let wn = n.div_ceil(64);
    let mut reach = vec![vec![0u64; wn]; n];
    // BFS from each block (functions are small; O(n^2/64) words).
    for start in 0..n {
        let mut stack: Vec<usize> = cfg.succs[start].iter().map(|b| b.index()).collect();
        while let Some(x) = stack.pop() {
            if reach[start][x / 64] & (1 << (x % 64)) != 0 {
                continue;
            }
            reach[start][x / 64] |= 1 << (x % 64);
            for s in &cfg.succs[x] {
                stack.push(s.index());
            }
        }
    }
    reach
}

/// Runs GVN over `f`. Returns `true` if any instruction was replaced.
pub fn global_value_number(f: &mut Function, opts: GvnOptions) -> bool {
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute_with_cfg(f, &cfg);
    let rpo = reverse_postorder(f);
    let sd = single_defs(f);
    let reach = opts.include_loads.then(|| reachability(f, &cfg));
    let aa = AliasAnalysis::compute(f, &opts.globals);

    // Barrier positions for load elimination: (block, index) of every
    // store/call, plus the store instruction for alias testing.
    let barriers: Vec<(BlockId, usize, Inst)> = if opts.include_loads {
        f.iter_blocks()
            .flat_map(|(bi, b)| {
                b.insts.iter().enumerate().filter_map(move |(k, i)| {
                    matches!(i, Inst::Store { .. } | Inst::Call { .. }).then(|| (bi, k, i.clone()))
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    let blocks_alias = |load: &Inst, store: &Inst| -> bool {
        match store {
            Inst::Call { .. } => true, // calls may store anywhere
            _ => aa.may_alias(load, store),
        }
    };

    // provider: key -> (block, index, dst)
    let mut table: HashMap<ExprKey, (BlockId, usize, portopt_ir::VReg)> = HashMap::new();
    let mut replacements: Vec<(BlockId, usize, Inst)> = Vec::new();

    for &bi in &rpo {
        for k in 0..f.block(bi).insts.len() {
            let inst = &f.block(bi).insts[k];
            let Some(key) = ExprKey::of(inst, &sd) else {
                continue;
            };
            if matches!(key, ExprKey::Load(..)) && !opts.include_loads {
                continue;
            }
            let Some(dst) = inst.def() else { continue };

            if let Some(&(pb, pk, pdst)) = table.get(&key) {
                // Provider value must be stable and must dominate this point.
                let dominates = if pb == bi {
                    pk < k
                } else {
                    dt.dominates(pb, bi)
                };
                if dominates && sd[pdst.index()] && pdst != dst {
                    // For loads: no may-aliasing store/call on any path
                    // between provider and consumer.
                    let safe = if let ExprKey::Load(..) = key {
                        let reach = reach.as_ref().expect("reach computed for loads");
                        let load = inst.clone();
                        barriers.iter().all(|(sb, sk, store)| {
                            if !blocks_alias(&load, store) {
                                return true;
                            }
                            let on_path = if *sb == pb && *sb == bi {
                                *sk > pk && *sk < k
                            } else if *sb == pb {
                                // barrier after provider in provider's block,
                                // provider block reaches consumer
                                *sk > pk
                            } else if *sb == bi {
                                *sk < k
                            } else {
                                // strictly-between block: provider reaches it
                                // and it reaches the consumer
                                let r1 = reach[pb.index()][sb.index() / 64]
                                    & (1 << (sb.index() % 64))
                                    != 0;
                                let r2 = reach[sb.index()][bi.index() / 64]
                                    & (1 << (bi.index() % 64))
                                    != 0;
                                r1 && r2
                            };
                            !on_path
                        })
                    } else {
                        true
                    };
                    if safe {
                        replacements.push((
                            bi,
                            k,
                            Inst::Copy {
                                dst,
                                src: Operand::Reg(pdst),
                            },
                        ));
                        continue;
                    }
                }
            }
            // Become the provider for this key if stable.
            if sd[dst.index()] {
                table.entry(key).or_insert((bi, k, dst));
            }
        }
    }

    let changed = !replacements.is_empty();
    for (bi, k, copy) in replacements {
        f.block_mut(bi).insts[k] = copy;
    }
    changed
}

/// `-ftree-pre`: redundancy elimination over arithmetic and comparisons.
/// Returns `true` if anything changed.
pub fn tree_pre(f: &mut Function) -> bool {
    global_value_number(f, GvnOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::cleanup;
    use portopt_ir::interp::run_module;
    use portopt_ir::{verify_module, FuncBuilder, Module, ModuleBuilder, Pred};

    fn close(f: Function) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let id = mb.add(f);
        mb.entry(id);
        let m = mb.finish();
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn eliminates_redundant_expression_across_blocks() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let e1 = b.mul(x, y);
        let c = b.cmp(Pred::Gt, e1, 0);
        let out = b.fresh();
        b.if_else(
            c,
            |b| {
                let e2 = b.mul(x, y); // redundant: dominated by e1
                b.assign(out, e2);
            },
            |b| b.assign(out, 0),
        );
        b.ret(out);
        let mut f = b.finish();
        assert!(tree_pre(&mut f));
        cleanup(&mut f);
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: portopt_ir::BinOp::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(muls, 1);
        let m = close(f);
        assert_eq!(run_module(&m, &[3, 4]).unwrap().ret, 12);
        assert_eq!(run_module(&m, &[-3, 4]).unwrap().ret, 0);
    }

    #[test]
    fn does_not_eliminate_across_non_dominating_paths() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.fresh();
        b.if_else(
            c,
            |b| {
                let e1 = b.mul(x, y);
                b.assign(out, e1);
            },
            |b| {
                let e2 = b.mul(x, y); // sibling arm: no dominance
                b.assign(out, e2);
            },
        );
        b.ret(out);
        let mut f = b.finish();
        assert!(!tree_pre(&mut f));
    }

    #[test]
    fn commutative_match() {
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let e1 = b.add(x, y);
        let e2 = b.add(y, x); // same value, swapped operands
        let s = b.sub(e1, e2);
        b.ret(s);
        let mut f = b.finish();
        assert!(tree_pre(&mut f));
        cleanup(&mut f);
        let m = close(f);
        assert_eq!(run_module(&m, &[10, 32]).unwrap().ret, 0);
    }

    #[test]
    fn load_elimination_blocked_by_aliasing_store() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 4);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let v1 = b.load(p, 0);
        b.store(77, p, 0); // overwrites
        let v2 = b.load(p, 0); // must NOT be replaced by v1
        let s = b.add(v1, v2);
        b.ret(s);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let before = run_module(&m, &[]).unwrap();
        let f = &mut m.funcs[0];
        global_value_number(
            f,
            GvnOptions {
                include_loads: true,
                globals: vec![],
            },
        );
        verify_module(&m).unwrap();
        let after = run_module(&m, &[]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret, 77);
    }

    #[test]
    fn load_elimination_with_disjoint_store() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 4);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let v1 = b.load(p, 0);
        b.store(77, p, 4); // different offset: disjoint
        let v2 = b.load(p, 0); // redundant with v1
        let s = b.add(v1, v2);
        b.ret(s);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        let f = &mut m.funcs[0];
        assert!(global_value_number(
            f,
            GvnOptions {
                include_loads: true,
                globals: vec![]
            },
        ));
        let loads = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 1);
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 0);
    }

    #[test]
    fn call_is_a_load_barrier() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global("g", 4);
        let clobber = {
            let mut b = FuncBuilder::new("clobber", 0);
            let p = b.iconst(base as i64);
            b.store(5, p, 0);
            b.ret_void();
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let v1 = b.load(p, 0);
        b.call_void(clobber, &[]);
        let v2 = b.load(p, 0);
        let s = b.add(v1, v2);
        b.ret(s);
        let id = mb.add(b.finish());
        mb.entry(id);
        let mut m = mb.finish();
        global_value_number(
            &mut m.funcs[1],
            GvnOptions {
                include_loads: true,
                globals: vec![],
            },
        );
        verify_module(&m).unwrap();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 5); // 0 + 5
    }
}
