//! # portopt-passes
//!
//! The optimising-compiler half of `portopt`: every pass of the paper's
//! Figure 3 optimisation space (Dubach et al., MICRO 2009), a register
//! allocator, an instruction scheduler, and code layout — producing a
//! [`CodeImage`] that the `portopt-sim` simulator executes.
//!
//! The single entry point is [`compile`]:
//!
//! ```
//! use portopt_ir::{FuncBuilder, ModuleBuilder};
//! use portopt_passes::{compile, OptConfig};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut b = FuncBuilder::new("main", 0);
//! let acc = b.iconst(0);
//! b.counted_loop(0, 100, 1, |b, i| {
//!     let sq = b.mul(i, i);
//!     let t = b.add(acc, sq);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let module = mb.finish();
//!
//! let image = compile(&module, &OptConfig::o3());
//! assert!(image.code_bytes > 0);
//! ```
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod cse;
pub mod gcse;
pub mod inline;
pub mod jumps;
pub mod layout;
pub mod licm;
pub mod peephole;
pub mod pipeline;
pub mod pre;
pub mod regalloc;
pub mod sched;
pub mod strength;
pub mod tailcall;
pub mod unroll;
pub mod unswitch;
pub mod util;
pub mod vrp;

pub use config::{menus, OptConfig, OptDim, OptSpace};
pub use layout::{
    BlockLayout, BlockSched, CodeImage, MachineFunc, TermKind, CODE_BASE, INST_BYTES, MAX_LAT,
};
pub use pipeline::{compile, compile_with_stats, CompileStats};
