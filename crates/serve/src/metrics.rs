//! Live serving metrics: lock-cheap counters a running server can be
//! asked about, replacing the shutdown-only stats report.
//!
//! [`ServeMetrics`] is a registry of atomic counters plus a fixed-bucket
//! latency histogram. The hot path (one batch drain) touches it with a
//! handful of relaxed atomic adds — no lock is taken per *request*, and
//! the only mutex (the per-snapshot-version table) is taken once per
//! *batch*. Readers never block writers: a stats snapshot is a point-in-
//! time read of the atomics, consistent enough for operations ("is the
//! queue backing up?", "what is p99 right now?") without being a
//! serialized transaction.
//!
//! Two read surfaces, both specified in `docs/SERVING.md`:
//!
//! * the `{"cmd": "stats"}` admin request — one JSON line, answered
//!   out-of-band like the reload acknowledgement
//!   ([`MetricsSnapshot::to_json_line`]);
//! * the optional `--metrics-port` plaintext endpoint — one
//!   `name value` pair per line, Prometheus-style
//!   ([`MetricsSnapshot::to_text`]), served by the concurrent front end.
//!
//! ```
//! use portopt_serve::metrics::ServeMetrics;
//!
//! let m = ServeMetrics::new();
//! m.record_request(0.25, None); // 0.25 ms, success
//! m.record_request(3.0, Some(())); // 3 ms, error reply
//! m.record_batch(2, 1); // one 2-request batch on snapshot version 1
//! let snap = m.snapshot(0);
//! assert_eq!(snap.requests_total, 2);
//! assert_eq!(snap.errors_total, 1);
//! assert!(snap.latency_p50_ms > 0.0);
//! assert!(snap.to_json_line().starts_with("{\"cmd\":\"stats\""));
//! ```

use portopt_ml::ModelKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bounds (inclusive) of the latency histogram buckets, in
/// microseconds. The last bucket is open-ended. Spacing is roughly
/// ×2–×2.5 from 50 µs (a cached feature prediction) to 5 s (an `apply`
/// module request on a slow program): per-request latencies land with
/// better than ~2× resolution everywhere, which is what a quantile needs.
const LATENCY_BUCKETS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    5_000_000,
];

/// A fixed-bucket histogram of per-request latencies. Recording is one
/// relaxed atomic add; quantiles are read by walking the 15 buckets.
/// Resolution is the bucket width (a reported p99 is the upper bound of
/// the bucket the 99th percentile falls in) — the right trade for a hot
/// path that must not allocate or lock.
#[derive(Debug, Default)]
struct LatencyHistogram {
    /// One count per bucket in [`LATENCY_BUCKETS_US`] plus the open-ended
    /// overflow bucket.
    counts: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    /// Total recorded, for means (µs; wraps after ~580k years of latency).
    sum_us: AtomicU64,
    n: AtomicU64,
}

impl LatencyHistogram {
    fn record(&self, latency_ms: f64) {
        let us = (latency_ms * 1e3).max(0.0) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.n.fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile (0 < q ≤ 1) in milliseconds: the upper bound of
    /// the bucket the quantile falls in (the overflow bucket reports the
    /// largest finite bound). 0 when nothing was recorded.
    fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.n.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let bound = LATENCY_BUCKETS_US
                    .get(i)
                    .copied()
                    .unwrap_or(LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1]);
                return bound as f64 / 1e3;
            }
        }
        LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1] as f64 / 1e3
    }

    fn mean_ms(&self) -> f64 {
        let n = self.n.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64 / 1e3
        }
    }
}

/// The live metrics registry of one
/// [`PredictionService`](crate::PredictionService). Shared (`Arc`)
/// between the batcher, the
/// reader threads, the admin `stats` command and the plaintext metrics
/// endpoint. All counters are service-lifetime totals.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Requests answered with a reply (success or error), i.e. drained
    /// through a batch.
    requests: AtomicU64,
    /// Of those, answered with an `error` reply.
    errors: AtomicU64,
    /// Requests refused at admission (`overloaded` reply; never queued).
    refused: AtomicU64,
    /// Requests thrown away unanswered (dead connection, pre- or
    /// post-compute).
    discarded: AtomicU64,
    /// Batches drained.
    batches: AtomicU64,
    /// Largest batch drained (batch occupancy high-water mark).
    max_batch: AtomicU64,
    /// Requests admitted to the queue but not yet answered or discarded:
    /// queued + currently draining. The quota/registry ledger must agree
    /// with this (see `stats_ledger_agrees_after_dead_conn_discard`).
    inflight: AtomicU64,
    /// TCP connections accepted / refused at `--max-conns`.
    connections: AtomicU64,
    rejected_connections: AtomicU64,
    latency: LatencyHistogram,
    /// `(snapshot_version, predictions)` pairs, appended on first sight of
    /// a version. A handful of entries, touched once per batch.
    per_version: Mutex<Vec<(u64, u64)>>,
    /// Successful predictions per model kind, indexed by
    /// [`ModelKind::index`]. Error replies never land here (and refusals
    /// never even reach `requests`), so across kinds these sum to
    /// `requests - errors`.
    predictions_by_kind: [AtomicU64; 3],
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// A zeroed registry; the uptime clock starts now.
    pub fn new() -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            per_version: Mutex::new(Vec::new()),
            predictions_by_kind: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            started: Instant::now(),
        }
    }

    /// One request entered the queue.
    pub fn note_admitted(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// One admitted line turned out not to stay queued (admin command,
    /// shutdown sentinel): reverse its [`note_admitted`](Self::note_admitted).
    pub fn note_retracted(&self) {
        decrement_saturating(&self.inflight, 1);
    }

    /// One request was refused at admission (queue full or closed).
    pub fn note_refused(&self) {
        self.refused.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` admitted requests were thrown away unanswered.
    pub fn note_discarded(&self, n: u64) {
        self.discarded.fetch_add(n, Ordering::Relaxed);
        decrement_saturating(&self.inflight, n);
    }

    /// `n` replies were computed but could not be written (the connection
    /// died between drain and delivery). They already left the in-flight
    /// gauge via [`record_request`](Self::record_request), so this only
    /// counts the discard.
    pub fn note_undeliverable(&self, n: u64) {
        self.discarded.fetch_add(n, Ordering::Relaxed);
    }

    /// One answered request: its latency, and whether it was an error
    /// reply (`err.is_some()`).
    pub fn record_request(&self, latency_ms: f64, err: Option<()>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if err.is_some() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency_ms);
        decrement_saturating(&self.inflight, 1);
    }

    /// One drained batch of `len` requests, answered by snapshot
    /// `version`.
    pub fn record_batch(&self, len: usize, version: u64) {
        if len == 0 {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(len as u64, Ordering::Relaxed);
        let mut g = self.per_version.lock().expect("metrics version table");
        match g.iter_mut().find(|(v, _)| *v == version) {
            Some((_, n)) => *n += len as u64,
            None => g.push((version, len as u64)),
        }
    }

    /// `n` successful predictions answered by a model of `kind` (one call
    /// per batch drain; error replies are excluded by the caller).
    pub fn record_predictions(&self, kind: ModelKind, n: u64) {
        self.predictions_by_kind[kind.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// One accepted / one refused TCP connection.
    pub fn note_connection(&self, accepted: bool) {
        if accepted {
            self.connections.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rejected_connections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests admitted but not yet answered or discarded.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Total `overloaded` refusals so far.
    pub fn refused_total(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// A point-in-time read of every counter. `queue_depth` is the
    /// caller's current pending-queue length (the registry itself has no
    /// reference to the queue).
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        let mut versions: Vec<(u64, u64)> = self
            .per_version
            .lock()
            .expect("metrics version table")
            .clone();
        versions.sort_unstable();
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs_f64(),
            queue_depth,
            inflight: self.inflight.load(Ordering::Relaxed),
            requests_total: self.requests.load(Ordering::Relaxed),
            errors_total: self.errors.load(Ordering::Relaxed),
            refused_total: self.refused.load(Ordering::Relaxed),
            discarded_total: self.discarded.load(Ordering::Relaxed),
            batches_total: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            latency_p50_ms: self.latency.quantile_ms(0.50),
            latency_p99_ms: self.latency.quantile_ms(0.99),
            latency_mean_ms: self.latency.mean_ms(),
            connections_total: self.connections.load(Ordering::Relaxed),
            rejected_connections_total: self.rejected_connections.load(Ordering::Relaxed),
            predictions_by_version: versions,
            predictions_by_kind: [
                self.predictions_by_kind[0].load(Ordering::Relaxed),
                self.predictions_by_kind[1].load(Ordering::Relaxed),
                self.predictions_by_kind[2].load(Ordering::Relaxed),
            ],
        }
    }
}

/// `fetch_sub` that clamps at zero: a retraction racing a concurrent
/// snapshot read must never wrap the gauge to u64::MAX.
fn decrement_saturating(counter: &AtomicU64, n: u64) {
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(n);
        match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// One consistent-enough read of a [`ServeMetrics`] registry, with its
/// two wire renderings.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the service started.
    pub uptime_secs: f64,
    /// Requests pending in the batch queue right now.
    pub queue_depth: usize,
    /// Admitted but not yet answered or discarded (queued + draining).
    pub inflight: u64,
    /// Requests answered (success + error replies).
    pub requests_total: u64,
    /// Requests answered with an error reply.
    pub errors_total: u64,
    /// Requests refused at admission with an `overloaded` reply.
    pub refused_total: u64,
    /// Requests discarded unanswered (dead connections).
    pub discarded_total: u64,
    /// Batches drained.
    pub batches_total: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Median per-request latency (bucket-resolution, ms).
    pub latency_p50_ms: f64,
    /// 99th-percentile per-request latency (bucket-resolution, ms).
    pub latency_p99_ms: f64,
    /// Mean per-request latency (exact, ms).
    pub latency_mean_ms: f64,
    /// TCP connections accepted over the service lifetime.
    pub connections_total: u64,
    /// TCP connections refused at `--max-conns`.
    pub rejected_connections_total: u64,
    /// Predictions answered per snapshot version, ascending by version.
    pub predictions_by_version: Vec<(u64, u64)>,
    /// Successful predictions per model kind, indexed by
    /// [`ModelKind::index`]. All kinds render, including zeroes, so a
    /// dashboard sees the full registry.
    pub predictions_by_kind: [u64; 3],
}

impl MetricsSnapshot {
    /// The `{"cmd":"stats"}` admin reply: one JSON line. Field order is
    /// stable (documented in `docs/SERVING.md`); versions render as an
    /// object keyed by version number.
    pub fn to_json_line(&self) -> String {
        let versions: String = self
            .predictions_by_version
            .iter()
            .map(|(v, n)| format!("\"{v}\":{n}"))
            .collect::<Vec<_>>()
            .join(",");
        let kinds: String = ModelKind::ALL
            .iter()
            .map(|k| format!("\"{}\":{}", k.as_str(), self.predictions_by_kind[k.index()]))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"cmd\":\"stats\",\"uptime_secs\":{:.3},\"queue_depth\":{},\"inflight\":{},\
             \"requests_total\":{},\"errors_total\":{},\"refused_total\":{},\
             \"discarded_total\":{},\"batches_total\":{},\"max_batch\":{},\
             \"latency_p50_ms\":{:.3},\"latency_p99_ms\":{:.3},\"latency_mean_ms\":{:.4},\
             \"connections_total\":{},\"rejected_connections_total\":{},\
             \"predictions_by_version\":{{{versions}}},\
             \"predictions_by_kind\":{{{kinds}}}}}",
            self.uptime_secs,
            self.queue_depth,
            self.inflight,
            self.requests_total,
            self.errors_total,
            self.refused_total,
            self.discarded_total,
            self.batches_total,
            self.max_batch,
            self.latency_p50_ms,
            self.latency_p99_ms,
            self.latency_mean_ms,
            self.connections_total,
            self.rejected_connections_total,
        )
    }

    /// The plaintext `--metrics-port` rendering: one `name value` pair
    /// per line, Prometheus exposition style (counters suffixed
    /// `_total`, per-version counts as labelled samples).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!("portopt_uptime_secs {:.3}\n", self.uptime_secs));
        s.push_str(&format!("portopt_queue_depth {}\n", self.queue_depth));
        s.push_str(&format!("portopt_inflight {}\n", self.inflight));
        s.push_str(&format!("portopt_requests_total {}\n", self.requests_total));
        s.push_str(&format!("portopt_errors_total {}\n", self.errors_total));
        s.push_str(&format!("portopt_refused_total {}\n", self.refused_total));
        s.push_str(&format!(
            "portopt_discarded_total {}\n",
            self.discarded_total
        ));
        s.push_str(&format!("portopt_batches_total {}\n", self.batches_total));
        s.push_str(&format!("portopt_max_batch {}\n", self.max_batch));
        s.push_str(&format!(
            "portopt_latency_p50_ms {:.3}\n",
            self.latency_p50_ms
        ));
        s.push_str(&format!(
            "portopt_latency_p99_ms {:.3}\n",
            self.latency_p99_ms
        ));
        s.push_str(&format!(
            "portopt_latency_mean_ms {:.4}\n",
            self.latency_mean_ms
        ));
        s.push_str(&format!(
            "portopt_connections_total {}\n",
            self.connections_total
        ));
        s.push_str(&format!(
            "portopt_rejected_connections_total {}\n",
            self.rejected_connections_total
        ));
        for (v, n) in &self.predictions_by_version {
            s.push_str(&format!(
                "portopt_predictions_total{{snapshot_version=\"{v}\"}} {n}\n"
            ));
        }
        for k in ModelKind::ALL {
            s.push_str(&format!(
                "portopt_predictions_kind_total{{kind=\"{}\"}} {}\n",
                k.as_str(),
                self.predictions_by_kind[k.index()]
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_have_bucket_resolution() {
        let h = LatencyHistogram::default();
        // 98 fast requests in the 50 µs bucket, 2 slow ones at ~20 ms.
        for _ in 0..98 {
            h.record(0.04);
        }
        h.record(20.0);
        h.record(20.0);
        assert_eq!(h.quantile_ms(0.50), 0.05, "p50 = first bucket bound");
        assert_eq!(h.quantile_ms(0.99), 25.0, "p99 = 25 ms bucket bound");
        assert!((h.mean_ms() - (98.0 * 0.04 + 2.0 * 20.0) / 100.0).abs() < 0.01);
        // Empty histogram: quantiles are 0, not NaN.
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile_ms(0.5), 0.0);
        assert_eq!(empty.mean_ms(), 0.0);
    }

    #[test]
    fn histogram_overflow_bucket_catches_pathological_latencies() {
        let h = LatencyHistogram::default();
        h.record(3600.0 * 1e3); // an hour, way past every bound
        assert_eq!(h.quantile_ms(1.0), 5000.0, "clamped to the last bound");
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        // A latency exactly on a documented bound lands in the bucket
        // whose bound it equals (`us <= bound` is inclusive) — for every
        // bound — and a value just past it falls to the next bucket (the
        // overflow bucket after the last finite bound). "Just past" is
        // +2 µs: the ms→µs conversion truncates, and the float round
        // trip can lose one µs, which must not drag the sample back
        // across the bound.
        for (i, &bound_us) in LATENCY_BUCKETS_US.iter().enumerate() {
            let h = LatencyHistogram::default();
            h.record(bound_us as f64 / 1e3);
            assert_eq!(
                h.counts[i].load(Ordering::Relaxed),
                1,
                "{bound_us}us must land in bucket {i}"
            );
            let h2 = LatencyHistogram::default();
            h2.record((bound_us + 2) as f64 / 1e3);
            assert_eq!(
                h2.counts[i].load(Ordering::Relaxed),
                0,
                "{}us must NOT land in bucket {i}",
                bound_us + 2
            );
            assert_eq!(
                h2.counts[i + 1].load(Ordering::Relaxed),
                1,
                "{}us must land in bucket {}",
                bound_us + 2,
                i + 1
            );
        }
        // Sub-microsecond precision truncates: 50.9 µs records as 50 µs
        // and stays in the first bucket.
        let h = LatencyHistogram::default();
        h.record(0.0509);
        assert_eq!(h.counts[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn histogram_out_of_range_saturates_to_overflow() {
        let h = LatencyHistogram::default();
        h.record(5_000.001); // one µs past the last finite bound
        h.record(f64::MAX); // absurd, must not wrap the µs conversion
        let overflow = LATENCY_BUCKETS_US.len();
        assert_eq!(h.counts[overflow].load(Ordering::Relaxed), 2);
        for (i, c) in h.counts.iter().enumerate().take(overflow) {
            assert_eq!(c.load(Ordering::Relaxed), 0, "finite bucket {i} empty");
        }
        // The overflow bucket reports the largest finite bound, never inf.
        assert_eq!(h.quantile_ms(0.5), 5000.0);
        // Negative latencies clamp to zero and land in the first bucket.
        let h2 = LatencyHistogram::default();
        h2.record(-1.0);
        assert_eq!(h2.counts[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn quantile_known_answers_pin_rank_arithmetic() {
        // 10 samples: 4 in the 50 µs bucket, 4 in the 250 µs bucket, 2 in
        // the 5 ms bucket. rank(q) = ceil(q·10) clamped to [1, 10], and
        // the report is the bound of the bucket holding that rank.
        let h = LatencyHistogram::default();
        for _ in 0..4 {
            h.record(0.01);
        }
        for _ in 0..4 {
            h.record(0.2);
        }
        for _ in 0..2 {
            h.record(4.0);
        }
        assert_eq!(h.quantile_ms(0.40), 0.05, "rank 4 = last of bucket 0");
        assert_eq!(h.quantile_ms(0.50), 0.25, "rank 5 = first of bucket 2");
        assert_eq!(h.quantile_ms(0.80), 0.25, "rank 8 = last of bucket 2");
        assert_eq!(h.quantile_ms(0.81), 5.0, "rank 9 = first of bucket 6");
        assert_eq!(h.quantile_ms(0.99), 5.0, "rank 10 = the slow tail");
        assert_eq!(h.quantile_ms(1.0), 5.0);
        // A vanishing q clamps to rank 1, not rank 0.
        assert_eq!(h.quantile_ms(1e-9), 0.05);
        // One sample: every quantile is that sample's bucket bound.
        let one = LatencyHistogram::default();
        one.record(0.3);
        assert_eq!(one.quantile_ms(0.5), 0.5);
        assert_eq!(one.quantile_ms(0.99), 0.5);
    }

    #[test]
    fn counters_add_up_and_inflight_never_wraps() {
        let m = ServeMetrics::new();
        m.note_admitted();
        m.note_admitted();
        m.note_admitted();
        assert_eq!(m.inflight(), 3);
        m.record_request(0.1, None);
        m.record_request(0.2, Some(()));
        m.note_discarded(1);
        assert_eq!(m.inflight(), 0);
        m.note_retracted(); // over-retraction clamps at zero, no wrap
        assert_eq!(m.inflight(), 0);
        m.note_refused();
        m.record_batch(2, 1);
        m.record_batch(3, 2);
        m.record_batch(1, 2);
        m.note_connection(true);
        m.note_connection(false);
        m.record_predictions(ModelKind::Knn, 1);
        m.record_predictions(ModelKind::Linear, 3);
        m.record_predictions(ModelKind::Linear, 2);
        let s = m.snapshot(5);
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.requests_total, 2);
        assert_eq!(s.errors_total, 1);
        assert_eq!(s.refused_total, 1);
        assert_eq!(s.discarded_total, 1);
        assert_eq!(s.batches_total, 3);
        assert_eq!(s.max_batch, 3);
        assert_eq!(s.connections_total, 1);
        assert_eq!(s.rejected_connections_total, 1);
        assert_eq!(s.predictions_by_version, vec![(1, 2), (2, 4)]);
        assert_eq!(s.predictions_by_kind, [1, 5, 0]);
    }

    #[test]
    fn renderings_carry_every_counter() {
        let m = ServeMetrics::new();
        m.note_admitted();
        m.record_request(0.1, None);
        m.record_batch(1, 7);
        m.record_predictions(ModelKind::Clustered, 1);
        let s = m.snapshot(0);
        let json = s.to_json_line();
        assert!(json.starts_with("{\"cmd\":\"stats\""), "{json}");
        assert!(json.contains("\"requests_total\":1"), "{json}");
        assert!(
            json.contains("\"predictions_by_version\":{\"7\":1}"),
            "{json}"
        );
        assert!(json.contains("\"refused_total\":0"), "{json}");
        assert!(
            json.contains("\"predictions_by_kind\":{\"knn\":0,\"linear\":0,\"clustered\":1}"),
            "{json}"
        );
        // The JSON line is parseable by the vendored parser.
        let doc = serde_json::from_str::<serde::Value>(&json).expect("stats reply parses");
        assert!(doc.as_object().is_some());
        let text = s.to_text();
        assert!(text.contains("portopt_requests_total 1\n"), "{text}");
        assert!(
            text.contains("portopt_predictions_total{snapshot_version=\"7\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("portopt_predictions_kind_total{kind=\"clustered\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("portopt_predictions_kind_total{kind=\"knn\"} 0\n"),
            "every kind renders, including zeroes: {text}"
        );
    }

    #[test]
    fn batch_of_zero_is_not_a_batch() {
        let m = ServeMetrics::new();
        m.record_batch(0, 1);
        let s = m.snapshot(0);
        assert_eq!(s.batches_total, 0);
        assert!(s.predictions_by_version.is_empty());
    }
}
