//! Deterministic fault injection for serving tests.
//!
//! The wire-protocol guarantees in `docs/SERVING.md` ("no reply lost,
//! duplicated or misrouted; an unterminated final line is still a
//! request; a dead connection's requests are discarded") are only worth
//! stating if they hold when the transport misbehaves. This module wraps
//! a client's `Read`/`Write` halves in chaos adapters that inject the
//! four fault classes real traffic produces:
//!
//! * **short writes** — a request line leaves the client in 1-byte
//!   dribbles, so the server's reader sees every possible fragmentation
//!   of a frame;
//! * **stalls** — pauses longer than the server's socket read timeout in
//!   the middle of a frame, so timeout handling must preserve partial
//!   lines;
//! * **mid-frame disconnects** — the stream is cut after a configured
//!   byte budget, leaving a half-written request on the wire;
//! * **garbage bytes** — lines of seeded junk interleaved with real
//!   requests, which must earn in-order error replies, not desync the
//!   framing.
//!
//! Every decision (fragment sizes, stall points, garbage content) comes
//! from a seeded [`ChaosRng`], so a failing schedule replays exactly —
//! rerun with the printed seed. The adapters are deliberately
//! `std`-only: no dev-dependency is needed to use them from another
//! crate's integration tests.
//!
//! ```
//! use portopt_serve::testkit::{ChaosConfig, ChaosWriter};
//! use std::io::Write;
//!
//! let mut w = ChaosWriter::new(Vec::new(), ChaosConfig::fragmenting(42, 3));
//! w.write_all(b"{\"id\":1}\n").unwrap(); // delivered in 1..=3-byte pieces
//! assert_eq!(w.get_ref(), b"{\"id\":1}\n"); // ...but byte-identical overall
//! ```

use std::io::{Read, Write};
use std::time::Duration;

/// A tiny deterministic generator (xorshift64*) so the testkit needs no
/// external crate: the same seed always yields the same fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator (0 is mapped to a fixed non-zero state).
    pub fn new(seed: u64) -> Self {
        ChaosRng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`; `hi > lo`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// True with probability `1/n` (`n ≥ 1`).
    pub fn one_in(&mut self, n: u64) -> bool {
        n <= 1 || self.next_u64() % n == 0
    }
}

/// What a chaos adapter is allowed to do to the byte stream. Build with
/// the presets ([`fragmenting`](ChaosConfig::fragmenting),
/// [`stalling`](ChaosConfig::stalling), [`cutting`](ChaosConfig::cutting))
/// or struct-literal the exact mix a test wants.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the fault schedule; same seed, same faults.
    pub seed: u64,
    /// Largest piece one `write`/`read` call passes through (≥ 1):
    /// 1 = maximal fragmentation, `usize::MAX` = no splitting.
    pub max_fragment: usize,
    /// `Some(d)`: stall for `d` before a fragment, when the schedule says
    /// so. Pick `d` longer than the server's socket read timeout to prove
    /// partial frames survive timeout passes.
    pub stall: Option<Duration>,
    /// A stall happens on roughly 1 in this many fragments (≥ 1; only
    /// meaningful with `stall`).
    pub stall_one_in: u64,
    /// `Some(n)`: after `n` bytes have passed, every further call fails
    /// with `BrokenPipe` — the mid-frame disconnect. The wrapped stream
    /// is NOT closed (drop it to actually cut a socket); the adapter
    /// reports the cut via [`ChaosWriter::cut`].
    pub cut_after: Option<u64>,
    /// `Err(Interrupted)` is returned on roughly 1 in this many calls
    /// (≥ 1; `u64::MAX` in the presets ≈ never) — exercises EINTR retry
    /// loops.
    pub interrupt_one_in: u64,
}

impl ChaosConfig {
    /// Fragment into 1..=`max_fragment`-byte pieces; no stalls, no cut.
    pub fn fragmenting(seed: u64, max_fragment: usize) -> Self {
        ChaosConfig {
            seed,
            max_fragment: max_fragment.max(1),
            stall: None,
            stall_one_in: 1,
            cut_after: None,
            interrupt_one_in: u64::MAX,
        }
    }

    /// Fragment and stall for `stall` on ~1 in `one_in` fragments.
    pub fn stalling(seed: u64, max_fragment: usize, stall: Duration, one_in: u64) -> Self {
        ChaosConfig {
            stall: Some(stall),
            stall_one_in: one_in.max(1),
            ..Self::fragmenting(seed, max_fragment)
        }
    }

    /// Fragment, then cut the stream after `cut_after` bytes.
    pub fn cutting(seed: u64, max_fragment: usize, cut_after: u64) -> Self {
        ChaosConfig {
            cut_after: Some(cut_after),
            ..Self::fragmenting(seed, max_fragment)
        }
    }
}

/// A `Write` adapter injecting the [`ChaosConfig`] faults into whatever
/// it wraps. Short writes are honest (`write` returns how much it took);
/// `write_all` on top of it therefore exercises the full retry loop.
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    rng: ChaosRng,
    cfg: ChaosConfig,
    written: u64,
    cut: bool,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: W, cfg: ChaosConfig) -> Self {
        ChaosWriter {
            inner,
            rng: ChaosRng::new(cfg.seed),
            cfg,
            written: 0,
            cut: false,
        }
    }

    /// Whether the mid-frame disconnect has fired: the stream should now
    /// be dropped by the test to cut the real socket.
    pub fn cut(&self) -> bool {
        self.cut
    }

    /// Total bytes actually passed through to the wrapped writer.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// The wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Consumes the adapter, returning the wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.cut {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "chaos: stream cut",
            ));
        }
        if self.rng.one_in(self.cfg.interrupt_one_in) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "chaos: interrupted",
            ));
        }
        let mut take = self
            .rng
            .gen_range(1, self.cfg.max_fragment.min(buf.len()) + 1);
        if let Some(cut_after) = self.cfg.cut_after {
            let left = cut_after.saturating_sub(self.written);
            if left == 0 {
                self.cut = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "chaos: stream cut mid-frame",
                ));
            }
            take = take.min(left as usize);
        }
        if let Some(stall) = self.cfg.stall {
            if self.rng.one_in(self.cfg.stall_one_in) {
                self.inner.flush()?; // the bytes so far hit the wire first
                std::thread::sleep(stall);
            }
        }
        self.inner.write_all(&buf[..take])?;
        self.inner.flush()?;
        self.written += take as u64;
        Ok(take)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter applying the same schedule to the receive side:
/// fragmented reads and injected `Interrupted` errors (stalls and cuts
/// follow the config exactly like the writer).
#[derive(Debug)]
pub struct ChaosReader<R: Read> {
    inner: R,
    rng: ChaosRng,
    cfg: ChaosConfig,
    read: u64,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: R, cfg: ChaosConfig) -> Self {
        ChaosReader {
            inner,
            rng: ChaosRng::new(cfg.seed ^ 0xC0FF_EE00_C0FF_EE00),
            cfg,
            read: 0,
        }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.rng.one_in(self.cfg.interrupt_one_in) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "chaos: interrupted",
            ));
        }
        if let Some(cut_after) = self.cfg.cut_after {
            if self.read >= cut_after {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "chaos: stream cut",
                ));
            }
        }
        if let Some(stall) = self.cfg.stall {
            if self.rng.one_in(self.cfg.stall_one_in) {
                std::thread::sleep(stall);
            }
        }
        let take = self
            .rng
            .gen_range(1, self.cfg.max_fragment.min(buf.len()) + 1);
        let n = self.inner.read(&mut buf[..take])?;
        self.read += n as u64;
        Ok(n)
    }
}

/// A line of seeded junk (printable noise that is not valid JSON and
/// contains no newline), newline-terminated — the garbage-bytes fault
/// class. The server must answer it with an in-order error reply and
/// keep the framing intact.
pub fn garbage_line(rng: &mut ChaosRng, max_len: usize) -> Vec<u8> {
    const NOISE: &[u8] = b"!@#$%^&*()~`<>?/\\|situation_normal0123456789abcdef ";
    let len = rng.gen_range(1, max_len.max(2));
    let mut line: Vec<u8> = (0..len)
        .map(|_| NOISE[rng.gen_range(0, NOISE.len())])
        .collect();
    // Ensure it can't accidentally parse as JSON (a bare number would).
    line.insert(0, b'?');
    line.push(b'\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaosRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fragmenting_writer_is_byte_transparent() {
        let payload = b"{\"id\": 1, \"features\": [1,2,3], \"uarch\": \"xscale\"}\n".repeat(20);
        for seed in 0..10u64 {
            let mut w = ChaosWriter::new(Vec::new(), ChaosConfig::fragmenting(seed, 3));
            w.write_all(&payload).unwrap();
            assert_eq!(w.get_ref().as_slice(), payload.as_slice(), "seed {seed}");
            assert_eq!(w.bytes_written(), payload.len() as u64);
            assert!(!w.cut());
        }
    }

    #[test]
    fn cutting_writer_stops_at_the_budget_and_stays_cut() {
        let mut w = ChaosWriter::new(Vec::new(), ChaosConfig::cutting(3, 4, 10));
        let err = w.write_all(b"0123456789abcdef").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(w.cut());
        assert_eq!(w.bytes_written(), 10, "exactly the byte budget leaked out");
        assert_eq!(w.get_ref().as_slice(), b"0123456789");
        // The cut is permanent.
        assert!(w.write(b"x").is_err());
    }

    #[test]
    fn interrupting_writer_still_completes_via_write_all() {
        let cfg = ChaosConfig {
            interrupt_one_in: 3,
            ..ChaosConfig::fragmenting(11, 2)
        };
        let payload = b"hello chaos\n".repeat(50);
        let mut w = ChaosWriter::new(Vec::new(), cfg);
        // write_all retries Interrupted by contract.
        w.write_all(&payload).unwrap();
        assert_eq!(w.get_ref().as_slice(), payload.as_slice());
    }

    #[test]
    fn chaos_reader_returns_every_byte_in_order() {
        use std::io::Cursor;
        let payload: Vec<u8> = (0..=255u8).collect::<Vec<_>>().repeat(4);
        let cfg = ChaosConfig {
            interrupt_one_in: 5,
            ..ChaosConfig::fragmenting(9, 3)
        };
        let mut r = ChaosReader::new(Cursor::new(payload.clone()), cfg);
        let mut out = Vec::new();
        loop {
            let mut buf = [0u8; 64];
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(out, payload);
    }

    #[test]
    fn garbage_lines_are_framed_and_unparseable() {
        let mut rng = ChaosRng::new(99);
        for _ in 0..50 {
            let line = garbage_line(&mut rng, 40);
            assert_eq!(*line.last().unwrap(), b'\n');
            let body = &line[..line.len() - 1];
            assert!(!body.contains(&b'\n'), "no embedded newline");
            let text = String::from_utf8(body.to_vec()).expect("printable noise");
            assert!(
                serde_json::from_str::<serde::Value>(&text).is_err(),
                "garbage must not parse as JSON: {text}"
            );
        }
    }
}
