//! Hot snapshot reload: swap the served model without dropping requests.
//!
//! A running [`PredictionService`](crate::PredictionService) holds its
//! model behind a snapshot cell: an atomically swappable
//! `Arc<VersionedSnapshot>`. Every batch drain clones the `Arc` **once at
//! batch start**, so an in-flight batch finishes on the model it started
//! with while the very next batch picks up a freshly loaded one — no lock
//! is held across a prediction, and no request is ever dropped or answered
//! by a half-swapped model. Each swap bumps a monotonic version number
//! that is echoed in every reply (`snapshot_version`), so clients can tell
//! exactly which model answered them.
//!
//! Two ways to trigger a swap:
//!
//! * the `{"cmd": "reload"}` admin request (TCP mode), which re-loads the
//!   snapshot path the service was started with, and
//! * [`ReloadHandle::watch`] — a poll loop over the snapshot file's
//!   mtime/length (the `serve` bin's `--watch-snapshot` flag), so an
//!   operator can retrain and `mv` a new artifact into place without ever
//!   touching the server.
//!
//! A reload validates the incoming artifact exactly like service start-up
//! does ([`Snapshot::load`]): wrong magic, format version, pass space or
//! feature dimensionality are refused with the specific
//! [`SnapshotError`], and the old model keeps serving.
//!
//! ```
//! use portopt_core::{generate, GenOptions, SweepScale, TrainOptions};
//! use portopt_ir::{FuncBuilder, ModuleBuilder};
//! use portopt_serve::{PredictionService, Snapshot};
//!
//! // Train a toy snapshot (a real one comes from `Snapshot::load`).
//! let mut mb = ModuleBuilder::new("toy");
//! let mut b = FuncBuilder::new("main", 0);
//! let acc = b.iconst(0);
//! b.counted_loop(0, 24, 1, |b, i| {
//!     let t = b.add(acc, i);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let opts = GenOptions {
//!     scale: SweepScale { n_uarch: 2, n_opts: 3 },
//!     threads: 1,
//!     ..GenOptions::default()
//! };
//! let ds = generate(&[("toy".to_string(), mb.finish())], &opts);
//! let snap = Snapshot::train(&ds, &TrainOptions::default());
//! let retrained = Snapshot::train(&ds, &TrainOptions::default());
//!
//! let service = PredictionService::new(snap, 1);
//! let handle = service.reload_handle();
//! assert_eq!(handle.version(), 1); // the model the service started with
//! assert_eq!(handle.reload(retrained), 2); // atomic swap, version bump
//! assert_eq!(service.current_snapshot().version, 2);
//! ```

use crate::snapshot::{Snapshot, SnapshotError};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// A [`Snapshot`] plus the monotonic version the service assigned when it
/// was installed. Version `1` is the snapshot the service started with;
/// every successful reload increments it.
#[derive(Debug)]
pub struct VersionedSnapshot {
    /// Monotonic install counter, echoed as `snapshot_version` in replies.
    pub version: u64,
    /// The installed model.
    pub snapshot: Snapshot,
}

/// The swappable model slot a [`PredictionService`](crate::PredictionService)
/// serves from: readers clone out an `Arc` (a pointer copy under a
/// momentary lock), writers install a replacement. Predictions never run
/// under the lock.
#[derive(Debug)]
pub(crate) struct SnapshotCell {
    current: Mutex<Arc<VersionedSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(snapshot: Snapshot) -> Self {
        SnapshotCell {
            current: Mutex::new(Arc::new(VersionedSnapshot {
                version: 1,
                snapshot,
            })),
        }
    }

    /// The currently installed snapshot (an `Arc` clone; holders keep the
    /// model alive even across a concurrent swap).
    pub(crate) fn load(&self) -> Arc<VersionedSnapshot> {
        self.current.lock().expect("snapshot cell lock").clone()
    }

    /// Installs `snapshot` as the new current model; returns its version.
    pub(crate) fn swap(&self, snapshot: Snapshot) -> u64 {
        let mut g = self.current.lock().expect("snapshot cell lock");
        let version = g.version + 1;
        *g = Arc::new(VersionedSnapshot { version, snapshot });
        version
    }
}

/// What [`ReloadHandle::watch`] observed on one poll tick that changed
/// something: a successful reload or a rejected artifact.
#[derive(Debug)]
pub enum WatchEvent {
    /// The file changed and loaded cleanly; the new version is installed.
    Reloaded {
        /// Version number assigned to the newly installed snapshot.
        version: u64,
    },
    /// The file changed but did not load (still being written, or an
    /// incompatible artifact). The old model keeps serving; the watcher
    /// retries on the next change of the file's metadata.
    Rejected(SnapshotError),
}

impl WatchEvent {
    /// The standard operator-facing log line for this event — the
    /// `on_event` callback used by both the `serve` bin's stdio watcher
    /// and the concurrent TCP server's `--watch-snapshot` thread.
    pub fn log_to_stderr(self) {
        match self {
            WatchEvent::Reloaded { version } => {
                portopt_trace::info!(
                    "serve",
                    { snapshot_version = version },
                    "snapshot file changed: now serving version {version}"
                )
            }
            WatchEvent::Rejected(e) => portopt_trace::warn!(
                "serve",
                "snapshot file changed but was not loadable ({e}); still serving the old model"
            ),
        }
    }
}

/// A cloneable handle for swapping the snapshot a running service serves
/// from. Obtained from
/// [`PredictionService::reload_handle`](crate::PredictionService::reload_handle);
/// safe to use from any thread while the service is serving.
#[derive(Clone)]
pub struct ReloadHandle {
    pub(crate) cell: Arc<SnapshotCell>,
}

impl std::fmt::Debug for ReloadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReloadHandle")
            .field("version", &self.version())
            .finish()
    }
}

impl ReloadHandle {
    /// Version of the snapshot currently being served (1 = the snapshot
    /// the service started with).
    pub fn version(&self) -> u64 {
        self.cell.load().version
    }

    /// The snapshot currently being served.
    pub fn current(&self) -> Arc<VersionedSnapshot> {
        self.cell.load()
    }

    /// Atomically installs an already-validated snapshot; returns the new
    /// version. Batches already draining finish on the model they started
    /// with; the next batch uses `snapshot`.
    pub fn reload(&self, snapshot: Snapshot) -> u64 {
        self.cell.swap(snapshot)
    }

    /// Loads, validates and installs a snapshot file. On any
    /// [`SnapshotError`] the old model keeps serving unchanged.
    pub fn reload_from(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let snapshot = Snapshot::load(path)?;
        Ok(self.reload(snapshot))
    }

    /// Polls `path`'s metadata (mtime + length) every `interval` and
    /// reloads on change, until `stop` becomes true. Each observation that
    /// changes something is reported through `on_event`; an unchanged file
    /// reports nothing. Returns the number of successful reloads.
    ///
    /// A half-written file simply fails validation
    /// ([`WatchEvent::Rejected`]) and is retried when its metadata next
    /// changes — so `mv`-ing a complete artifact into place (atomic on one
    /// filesystem) is the recommended publish step, but even a plain slow
    /// `cp` converges.
    pub fn watch(
        &self,
        path: impl AsRef<Path>,
        interval: Duration,
        stop: &AtomicBool,
        mut on_event: impl FnMut(WatchEvent),
    ) -> u64 {
        let path = path.as_ref();
        let mut last = file_stamp(path);
        let mut reloads = 0u64;
        while !stop.load(Ordering::Acquire) {
            std::thread::sleep(interval);
            let stamp = file_stamp(path);
            if stamp == last {
                continue;
            }
            last = stamp;
            if stamp.is_none() {
                // File vanished mid-swap (`mv` in flight); keep serving the
                // old model and wait for it to reappear.
                continue;
            }
            match self.reload_from(path) {
                Ok(version) => {
                    reloads += 1;
                    on_event(WatchEvent::Reloaded { version });
                }
                Err(e) => on_event(WatchEvent::Rejected(e)),
            }
        }
        reloads
    }
}

/// The change-detection key: (mtime, length), or `None` while the file is
/// missing/unreadable.
fn file_stamp(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}
