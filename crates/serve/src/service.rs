//! The batched prediction service.
//!
//! A JSON-lines protocol over any line-oriented byte stream: each request
//! is one JSON object, each reply is one JSON object, in request order.
//! [`PredictionService::run_lines`] drives a `BufRead`/`Write` pair (stdin
//! /stdout for piping and tests); [`PredictionService::run_tcp`] serves
//! the same protocol over `std::net::TcpListener`, concurrently for many
//! clients (see [`crate::concurrent`]). The complete wire-protocol
//! reference lives in `docs/SERVING.md`.
//!
//! Requests accumulate in a [`ServiceQueue`] and are drained as batches
//! onto the [`Executor`] — in TCP mode a batch spans *all* live
//! connections, so a burst of predictions from any mix of clients uses
//! every core: the deployment-time mirror of the training sweep. Each
//! queued request carries the [`ConnId`] it arrived on, and
//! [`drain_routed`](PredictionService::drain_routed) hands every reply
//! back tagged with the connection it belongs to.
//!
//! ## Request format
//!
//! ```json
//! {"features": [/* 19 numbers */], "uarch": "xscale"}
//! {"module": {/* portopt-ir Module */}, "uarch": {/* MicroArch */}, "apply": true}
//! {"cmd": "reload"}
//! {"shutdown": true}
//! ```
//!
//! * `features` — a feature vector as produced by `FeatureVec` (counters
//!   from one `-O3` run plus microarchitecture descriptors), *or*
//! * `module` — a serialized `portopt-ir` module; the service runs the
//!   `-O3` profiling itself (the full Figure 2 deployment flow);
//! * `uarch` — the target: `"xscale"` or an explicit configuration object;
//! * `apply` (optional, module requests) — also compile with the predicted
//!   setting and report predicted-vs-`-O3` cycle counts;
//! * `id` (optional) — echoed in the reply; defaults to the submission
//!   index.
//!
//! A reply carries the predicted [`OptConfig`] both structurally
//! (`config`) and as the canonical choice vector (`choices`), the
//! per-request service latency in milliseconds, and the version of the
//! snapshot that answered it (`snapshot_version` — bumps on every hot
//! reload, see [`crate::reload`]). Malformed requests get
//! `{"id": …, "error": "…"}` replies in-order rather than tearing down the
//! connection.
//!
//! Submit / drain, the loop every transport is built on:
//!
//! ```
//! use portopt_core::{generate, GenOptions, SweepScale, TrainOptions};
//! use portopt_ir::{FuncBuilder, ModuleBuilder};
//! use portopt_serve::{PredictionService, ServiceStats, Snapshot};
//!
//! // Train a toy snapshot (a real one comes from `Snapshot::load`).
//! let mut mb = ModuleBuilder::new("toy");
//! let mut b = FuncBuilder::new("main", 0);
//! let acc = b.iconst(0);
//! b.counted_loop(0, 24, 1, |b, i| {
//!     let t = b.add(acc, i);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let opts = GenOptions {
//!     scale: SweepScale { n_uarch: 2, n_opts: 3 },
//!     threads: 1,
//!     ..GenOptions::default()
//! };
//! let ds = generate(&[("toy".to_string(), mb.finish())], &opts);
//! let snap = Snapshot::train(&ds, &TrainOptions::default());
//!
//! let service = PredictionService::new(snap, 1);
//! let features: Vec<f64> = ds.features[0][0].values.clone();
//! let line = format!(r#"{{"id": 7, "features": {features:?}, "uarch": "xscale"}}"#);
//! assert!(!service.submit_line(&line)); // not the shutdown sentinel
//!
//! let mut stats = ServiceStats::default();
//! let replies = service.drain(&mut stats);
//! assert_eq!(replies[0].id, 7);
//! assert!(replies[0].error.is_none());
//! assert!(replies[0].config.is_some());
//! assert_eq!(replies[0].snapshot_version, 1); // no reload has happened
//! assert_eq!(stats.requests, 1);
//! ```

use crate::metrics::ServeMetrics;
use crate::reload::{ReloadHandle, SnapshotCell, VersionedSnapshot};
use crate::snapshot::Snapshot;
use portopt_exec::{Executor, ServiceQueue, SubmitError};
use portopt_ir::interp::ExecLimits;
use portopt_ir::Module;
use portopt_passes::{compile, OptConfig};
use portopt_sim::{evaluate, profile};
use portopt_uarch::MicroArch;
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Execution limits for service-side profiling runs (same budget as the
/// training sweep).
const PROFILE_LIMITS: ExecLimits = ExecLimits {
    fuel: 100_000_000,
    max_depth: 2048,
};

/// Default number of requests drained per executor batch.
pub const DEFAULT_BATCH: usize = 32;

/// Identifies the connection a queued request arrived on, so its reply can
/// be routed back to the right socket. Ids are handed out by the
/// [`ConnectionRegistry`](crate::ConnectionRegistry) starting at 1;
/// [`LOCAL_CONN`] (0) is the single stream of stdio mode and of direct
/// [`PredictionService::submit_line`] use.
pub type ConnId = u64;

/// The [`ConnId`] of the one implicit "connection" in stdio mode and in
/// direct [`PredictionService::submit_line`] use.
pub const LOCAL_CONN: ConnId = 0;

/// What a request asks the model to predict from.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestInput {
    /// A precomputed feature vector (counters + descriptors).
    Features(Vec<f64>),
    /// A raw module; the service profiles it at `-O3` first.
    Module(Box<Module>),
}

/// One parsed prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Client-chosen reply id; defaults to the submission index.
    pub id: Option<u64>,
    /// Feature vector or raw module.
    pub input: RequestInput,
    /// Target microarchitecture.
    pub uarch: MicroArch,
    /// For module requests: compile with the prediction and report stats.
    pub apply: bool,
}

impl Serialize for ServeRequest {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(id) = self.id {
            fields.push(("id".to_string(), id.to_value()));
        }
        match &self.input {
            RequestInput::Features(f) => fields.push(("features".to_string(), f.to_value())),
            RequestInput::Module(m) => fields.push(("module".to_string(), m.to_value())),
        }
        fields.push(("uarch".to_string(), self.uarch.to_value()));
        if self.apply {
            fields.push(("apply".to_string(), true.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ServeRequest {
    /// Lenient by hand (the derive requires every field): absent `id` and
    /// `apply` default, `uarch` accepts a name or a full object.
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::new("request must be a JSON object"))?;
        let get = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let id = match get("id") {
            Some(v) => Some(u64::from_value(v)?),
            None => None,
        };
        let apply = match get("apply") {
            Some(v) => bool::from_value(v)?,
            None => false,
        };
        let input = match (get("features"), get("module")) {
            (Some(_), Some(_)) => {
                return Err(serde::Error::new(
                    "request has both `features` and `module`; send one",
                ))
            }
            (Some(f), None) => {
                let values = Vec::<f64>::from_value(f)?;
                // Reject non-finite features at admission: JSON `null`
                // decodes to NaN and `1e999` parses to +Inf, and a
                // non-finite query would poison the distance ranking (the
                // naive kernel used to panic mid-batch on exactly this).
                // A typed per-request error reply keeps the batch alive.
                if let Some(i) = values.iter().position(|v| !v.is_finite()) {
                    return Err(serde::Error::new(format!(
                        "features[{i}] is not a finite number \
                         (NaN/Infinity are rejected)"
                    )));
                }
                RequestInput::Features(values)
            }
            (None, Some(m)) => RequestInput::Module(Box::new(Module::from_value(m)?)),
            (None, None) => {
                return Err(serde::Error::new(
                    "request needs `features` (a feature vector) or `module` (a program)",
                ))
            }
        };
        let uarch = match get("uarch") {
            Some(Value::Str(name)) => match name.as_str() {
                "xscale" => MicroArch::xscale(),
                other => {
                    return Err(serde::Error::new(format!(
                        "unknown microarchitecture name `{other}` (known: \"xscale\"); \
                         or pass a full configuration object"
                    )))
                }
            },
            Some(v) => MicroArch::from_value(v)?,
            None => {
                return Err(serde::Error::new(
                    "request needs `uarch` (\"xscale\" or a configuration object)",
                ))
            }
        };
        Ok(ServeRequest {
            id,
            input,
            uarch,
            apply,
        })
    }
}

/// Decodes the canonical request shape — a flat object whose keys are
/// drawn from `id` / `features` / `uarch` / `apply`, each at most once,
/// features all finite plain numbers, `uarch` the string `"xscale"` or
/// the full configuration object in printed field order —
/// straight off the line via [`serde_json::Scanner`], skipping the
/// `Value` tree entirely. Returns `None` for ANY other shape (admin
/// commands, `module` requests, duplicate or unknown keys, escapes,
/// non-finite or malformed values, trailing bytes): the caller then
/// takes the tree path, which is the semantic definition, so every line
/// this accepts yields bit-identically the request the tree path would
/// have built, and every line it refuses still gets the tree path's
/// exact reply. `Scanner` reuses the parser's own tokenizer, so number
/// and string tokens cannot be read differently here than there.
fn decode_line_fast(line: &str) -> Option<(Option<u64>, ServeRequest)> {
    let mut t = serde_json::Scanner::new(line);
    if !t.bump_if(b'{') || t.bump_if(b'}') {
        // Not an object, or `{}` (an error reply the tree path formats).
        return None;
    }
    let mut id: Option<u64> = None;
    let mut features: Option<Vec<f64>> = None;
    let mut uarch: Option<MicroArch> = None;
    let mut apply: Option<bool> = None;
    loop {
        let key = t.raw_str()?;
        if !t.bump_if(b':') {
            return None;
        }
        match key {
            "id" if id.is_none() => {
                // Only the integer token forms; a float-typed id (`5.0`)
                // is valid to the tree path but never canonical — bail.
                id = Some(match t.number()? {
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::U64(n) => n,
                    _ => return None,
                });
            }
            "features" if features.is_none() => {
                let mut vals = Vec::with_capacity(24);
                if !t.bump_if(b'[') {
                    return None;
                }
                if !t.bump_if(b']') {
                    loop {
                        let f = match t.number()? {
                            Value::F64(x) => x,
                            Value::I64(n) => n as f64,
                            Value::U64(n) => n as f64,
                            _ => return None,
                        };
                        if !f.is_finite() {
                            // The tree path formats the typed
                            // `features[i] is not a finite number` reply.
                            return None;
                        }
                        vals.push(f);
                        if t.bump_if(b',') {
                            continue;
                        }
                        if t.bump_if(b']') {
                            break;
                        }
                        return None;
                    }
                }
                features = Some(vals);
            }
            "uarch" if uarch.is_none() => {
                if t.bump_if(b'{') {
                    // The full-configuration object, accepted only in the
                    // exact shape our own printer emits: the ten fields in
                    // declaration order, each a plain in-range integer.
                    // The derive reads fields positionally first, so this
                    // equals `MicroArch::from_value` on every accepted
                    // line; reordered or exotic objects bail to the tree.
                    const UARCH_KEYS: [&str; 10] = [
                        "il1_size",
                        "il1_assoc",
                        "il1_block",
                        "dl1_size",
                        "dl1_assoc",
                        "dl1_block",
                        "btb_entries",
                        "btb_assoc",
                        "freq_mhz",
                        "width",
                    ];
                    let mut vals = [0u32; 10];
                    for (i, key) in UARCH_KEYS.iter().enumerate() {
                        if i > 0 && !t.bump_if(b',') {
                            return None;
                        }
                        if t.raw_str()? != *key || !t.bump_if(b':') {
                            return None;
                        }
                        vals[i] = match t.number()? {
                            Value::I64(n) if (0..=u32::MAX as i64).contains(&n) => n as u32,
                            _ => return None,
                        };
                    }
                    if !t.bump_if(b'}') {
                        return None;
                    }
                    uarch = Some(MicroArch {
                        il1_size: vals[0],
                        il1_assoc: vals[1],
                        il1_block: vals[2],
                        dl1_size: vals[3],
                        dl1_assoc: vals[4],
                        dl1_block: vals[5],
                        btb_entries: vals[6],
                        btb_assoc: vals[7],
                        freq_mhz: vals[8],
                        width: vals[9],
                    });
                } else {
                    if t.raw_str()? != "xscale" {
                        return None;
                    }
                    uarch = Some(MicroArch::xscale());
                }
            }
            "apply" if apply.is_none() => {
                apply = Some(if t.keyword("true") {
                    true
                } else if t.keyword("false") {
                    false
                } else {
                    return None;
                });
            }
            _ => return None,
        }
        if t.bump_if(b',') {
            continue;
        }
        if t.bump_if(b'}') {
            break;
        }
        return None;
    }
    if !t.at_end() {
        return None;
    }
    let req = ServeRequest {
        id,
        input: RequestInput::Features(features?),
        uarch: uarch?,
        apply: apply.unwrap_or(false),
    };
    Some((id, req))
}

/// Cycle counts from an `apply: true` module request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplyStats {
    /// Cycles of the `-O3` profiling run on the target.
    pub o3_cycles: f64,
    /// Cycles of the predicted setting's binary on the target.
    pub predicted_cycles: f64,
    /// `o3_cycles / predicted_cycles`.
    pub speedup: f64,
}

/// One reply line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Echo of the request id (or the submission index).
    pub id: u64,
    /// The predicted setting, `None` on error.
    pub config: Option<OptConfig>,
    /// The predicted setting as the canonical choice vector, empty on
    /// error.
    pub choices: Vec<u8>,
    /// Service-side latency for this request in milliseconds (profiling
    /// included for module requests).
    pub latency_ms: f64,
    /// Cycle counts when the request asked to `apply` the prediction.
    pub stats: Option<ApplyStats>,
    /// What went wrong, if anything.
    pub error: Option<String>,
    /// Version of the model snapshot that answered this request (1 = the
    /// snapshot the service started with; bumps on every hot reload). All
    /// replies of one batch carry the same version.
    pub snapshot_version: u64,
}

/// Running totals, reported when the service shuts down.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ServiceStats {
    /// Requests answered (including error replies).
    pub requests: u64,
    /// Requests answered with an error reply.
    pub errors: u64,
    /// Executor batches drained.
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: usize,
    /// Sum of per-request latencies (ms).
    pub total_latency_ms: f64,
    /// Worst single-request latency (ms).
    pub max_latency_ms: f64,
    /// Wall-clock seconds spent draining batches.
    pub busy_secs: f64,
    /// Requests thrown away unanswered because their connection died
    /// before their batch ran (or their reply could not be written).
    pub discarded: u64,
    /// Requests refused at admission (queue at capacity or closed) with
    /// an out-of-band `{"error":"overloaded"}`-style reply.
    pub refused: u64,
    /// TCP connections accepted over the service's lifetime.
    pub connections: u64,
    /// TCP connections refused because the server was at `max_conns`.
    pub rejected_connections: u64,
}

impl ServiceStats {
    /// Mean per-request latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_ms / self.requests as f64
        }
    }

    /// Predictions per second of busy (batch-draining) time.
    pub fn predictions_per_sec(&self) -> f64 {
        if self.busy_secs > 0.0 {
            self.requests as f64 / self.busy_secs
        } else {
            0.0
        }
    }

    /// The human-readable shutdown report.
    pub fn report(&self) -> String {
        let mut s = format!(
            "served {} requests ({} errors) in {} batches (max {}): \
             mean latency {:.3} ms, max {:.3} ms, {:.0} predictions/sec",
            self.requests,
            self.errors,
            self.batches,
            self.max_batch,
            self.mean_latency_ms(),
            self.max_latency_ms,
            self.predictions_per_sec(),
        );
        if self.connections > 0 || self.rejected_connections > 0 {
            s.push_str(&format!(
                "; {} connections ({} rejected at capacity)",
                self.connections, self.rejected_connections
            ));
        }
        if self.discarded > 0 {
            s.push_str(&format!(
                "; {} requests discarded (dead connections)",
                self.discarded
            ));
        }
        if self.refused > 0 {
            s.push_str(&format!(
                "; {} requests refused at admission (overloaded)",
                self.refused
            ));
        }
        s
    }
}

/// How the service classified one input line. Returned by
/// [`PredictionService::classify_and_submit`]; transports decide what to
/// write back (admin replies are written immediately, prediction replies
/// come out of the next batch drain).
#[derive(Debug)]
pub enum LineAction {
    /// A prediction request (or a malformed line, which will get an
    /// in-order error reply): queued for the next batch.
    Queued,
    /// The `{"shutdown": true}` sentinel: not queued; the transport should
    /// flush pending replies and stop the service.
    Shutdown,
    /// The `{"cmd": "reload"}` admin request: executed immediately.
    /// `Ok(version)` is the newly installed snapshot version; `Err`
    /// explains why the model was left unchanged.
    Reload(Result<u64, String>),
    /// The `{"cmd": "stats"}` admin request: the ready-to-write one-line
    /// JSON metrics snapshot. Not queued; the transport writes it
    /// out-of-band like a reload acknowledgement.
    Stats(String),
    /// The request was **not** queued: the queue is at capacity (or
    /// closed for shutdown). `reply` is the ready-to-write one-line
    /// refusal — `{"id":…,"error":"overloaded","retry_after_ms":…}` for
    /// capacity, a "shutting down" error for a closed queue. The
    /// transport must deliver it immediately: refusals are out-of-band
    /// (they never enter the batch pipeline).
    Refused {
        /// The one-line JSON refusal, without trailing newline.
        reply: String,
    },
}

/// One queued line: the connection it arrived on plus the parse outcome
/// (errors stay in the queue so the reply stream keeps request order).
#[derive(Debug)]
struct QueuedLine {
    conn: ConnId,
    /// The client's request id when the line parsed far enough to have
    /// one — echoed even on error replies so the client can correlate
    /// them (a rejected request whose reply carries a synthetic id is as
    /// bad as no reply).
    id: Option<u64>,
    parsed: Result<ServeRequest, String>,
}

/// A loaded snapshot serving predictions over an [`Executor`].
#[derive(Debug)]
pub struct PredictionService {
    cell: Arc<SnapshotCell>,
    exec: Executor,
    queue: ServiceQueue<QueuedLine>,
    reload_path: Option<PathBuf>,
    metrics: Arc<ServeMetrics>,
    /// The `retry_after_ms` hint written into `overloaded` refusals —
    /// roughly two batching windows, so a well-behaved client retries
    /// after the congestion it observed has had a chance to drain.
    retry_after_ms: AtomicU64,
}

impl PredictionService {
    /// Wraps a loaded snapshot; `threads == 0` uses all cores.
    pub fn new(snapshot: Snapshot, threads: usize) -> Self {
        PredictionService {
            cell: Arc::new(SnapshotCell::new(snapshot)),
            exec: Executor::new(threads),
            queue: ServiceQueue::new(),
            reload_path: None,
            metrics: Arc::new(ServeMetrics::new()),
            retry_after_ms: AtomicU64::new(2 * crate::concurrent::DEFAULT_WINDOW_MS),
        }
    }

    /// Bounds the request queue: a submit that would make more than
    /// `cap` requests pending is refused with an in-order
    /// `{"error":"overloaded"}` reply instead of being queued (see
    /// `docs/SERVING.md`). Builder form of [`set_queue_cap`](Self::set_queue_cap).
    pub fn with_queue_cap(self, cap: usize) -> Self {
        self.set_queue_cap(Some(cap));
        self
    }

    /// Sets or clears the pending-request bound at runtime.
    pub fn set_queue_cap(&self, cap: Option<usize>) {
        self.queue.set_capacity(cap);
    }

    /// Sets the `retry_after_ms` hint carried by `overloaded` refusals.
    pub fn set_retry_after_hint_ms(&self, ms: u64) {
        self.retry_after_ms.store(ms.max(1), Ordering::Relaxed);
    }

    /// The live metrics registry backing the `{"cmd":"stats"}` admin
    /// request and the `--metrics-port` endpoint.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Closes the request queue for new submissions: everything already
    /// pending stays drainable, later submits get a typed "shutting down"
    /// refusal. Called by the transports once a shutdown sentinel is seen,
    /// so racing clients cannot strand requests behind the final drain.
    pub fn close_queue(&self) {
        self.queue.close();
    }

    /// The one-line JSON reply for a `{"cmd":"stats"}` admin request: a
    /// point-in-time snapshot of the metrics registry plus queue depth.
    pub fn stats_reply_line(&self) -> String {
        self.metrics.snapshot(self.pending()).to_json_line()
    }

    /// Registers the snapshot file the service was loaded from, enabling
    /// the `{"cmd": "reload"}` admin request (and giving
    /// [`ReloadHandle::watch`] its natural argument). Without a path,
    /// reload requests are answered with an error.
    pub fn with_reload_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.reload_path = Some(path.into());
        self
    }

    /// The snapshot file registered with
    /// [`with_reload_path`](Self::with_reload_path), if any.
    pub fn reload_path(&self) -> Option<&std::path::Path> {
        self.reload_path.as_deref()
    }

    /// The currently served (versioned) snapshot.
    pub fn current_snapshot(&self) -> Arc<VersionedSnapshot> {
        self.cell.load()
    }

    /// A cloneable handle for hot-swapping the served snapshot from any
    /// thread (see [`crate::reload`]).
    pub fn reload_handle(&self) -> ReloadHandle {
        ReloadHandle {
            cell: Arc::clone(&self.cell),
        }
    }

    /// Answers one request (the per-task kernel of a batch drain) against
    /// a specific snapshot — the one captured at batch start, so a hot
    /// reload mid-drain never splits a batch across models.
    fn predict_one(
        &self,
        snapshot: &Snapshot,
        req: &ServeRequest,
    ) -> Result<(OptConfig, Vec<u8>, Option<ApplyStats>), String> {
        match &req.input {
            RequestInput::Features(values) => {
                let want = snapshot.meta.feature_dim;
                if values.len() != want {
                    return Err(format!(
                        "feature vector has {} values, model expects {want}",
                        values.len()
                    ));
                }
                let (cfg, choices) = snapshot.compiler.predict_features_choices(values);
                Ok((cfg, choices, None))
            }
            RequestInput::Module(module) => {
                let img3 = compile(module, &OptConfig::o3());
                let prof3 = profile(&img3, module, &[], PROFILE_LIMITS)
                    .map_err(|e| format!("-O3 profiling run failed: {e:?}"))?;
                let t3 = evaluate(&img3, &prof3, &req.uarch);
                let cfg = snapshot
                    .compiler
                    .predict_from_counters(&t3.counters, &req.uarch);
                let stats = if req.apply {
                    let img = compile(module, &cfg);
                    let prof = profile(&img, module, &[], PROFILE_LIMITS)
                        .map_err(|e| format!("predicted binary failed to run: {e:?}"))?;
                    let t = evaluate(&img, &prof, &req.uarch);
                    Some(ApplyStats {
                        o3_cycles: t3.cycles,
                        predicted_cycles: t.cycles,
                        speedup: t3.cycles / t.cycles,
                    })
                } else {
                    None
                };
                Ok((cfg, cfg.to_choices(), stats))
            }
        }
    }

    /// Admission control around every queue submit: the in-flight gauge
    /// is raised **before** the submit (the batcher may drain and
    /// decrement the instant the request is visible; decrements saturate,
    /// so the gauge transiently over-counts rather than wrapping), and a
    /// refusal retracts it again and builds the typed refusal reply.
    /// `id` is the client's request id when the line parsed far enough to
    /// have one, echoed in the refusal so the client can correlate it.
    fn admit_request(&self, id: Option<u64>, queued: QueuedLine) -> LineAction {
        self.metrics.note_admitted();
        match self.queue.submit(queued) {
            Ok(_) => LineAction::Queued,
            Err(e) => {
                self.metrics.note_retracted();
                self.metrics.note_refused();
                let id_field = match id {
                    Some(id) => format!(r#""id":{id},"#),
                    None => String::new(),
                };
                let reply = match e {
                    SubmitError::AtCapacity { .. } => {
                        let hint = self.retry_after_ms.load(Ordering::Relaxed);
                        format!(r#"{{{id_field}"error":"overloaded","retry_after_ms":{hint}}}"#)
                    }
                    SubmitError::Closed => {
                        format!(r#"{{{id_field}"error":"service is shutting down"}}"#)
                    }
                };
                LineAction::Refused { reply }
            }
        }
    }

    /// Parses one request line from connection `conn` and acts on it: the
    /// shutdown sentinel and the reload/stats admin commands are
    /// recognised without enqueueing (one parse — the document tree is
    /// probed for the admin markers and then decoded as a request);
    /// everything else, including unparseable lines, is enqueued so the
    /// reply stream stays in request order — unless the queue refuses it
    /// ([`LineAction::Refused`]), in which case the refusal reply is
    /// written out-of-band instead.
    ///
    /// The canonical request shape — a flat object of `id` / `features` /
    /// `uarch` / `apply` — is decoded by `decode_line_fast` without
    /// building a `Value` tree (the tree's per-node allocations were the
    /// hot path's single largest cost on a single core). Anything the
    /// fast decoder does not accept byte-for-byte falls through to the
    /// tree path below, which remains the semantic definition; the
    /// `fast_decoder_agrees_with_tree_path` differential test pins the
    /// two paths together.
    pub fn classify_and_submit(&self, conn: ConnId, line: &str) -> LineAction {
        if let Some((id, req)) = decode_line_fast(line) {
            return self.admit_request(
                id,
                QueuedLine {
                    conn,
                    id,
                    parsed: Ok(req),
                },
            );
        }
        match serde_json::from_str::<Value>(line) {
            Ok(doc) => {
                // One scan of the (small) top-level object for the admin
                // markers and the request id; avoids `Value::field`'s
                // error allocation on the common miss path.
                let mut req_id = None;
                let mut admin_cmd: Option<&str> = None;
                if let Some(fields) = doc.as_object() {
                    for (k, v) in fields {
                        if k == "shutdown" && matches!(v, Value::Bool(true)) {
                            return LineAction::Shutdown;
                        }
                        if k == "id" {
                            req_id = u64::from_value(v).ok();
                        }
                        if k == "cmd" {
                            if let Value::Str(cmd) = v {
                                admin_cmd = Some(cmd.as_str());
                            }
                        }
                    }
                }
                match admin_cmd {
                    Some("reload") => {
                        return LineAction::Reload(self.reload_from_configured_path())
                    }
                    Some("stats") => return LineAction::Stats(self.stats_reply_line()),
                    Some(cmd) => {
                        return self.admit_request(
                            req_id,
                            QueuedLine {
                                conn,
                                id: req_id,
                                parsed: Err(format!("unknown admin command `{cmd}`")),
                            },
                        )
                    }
                    None => {}
                }
                self.admit_request(
                    req_id,
                    QueuedLine {
                        conn,
                        id: req_id,
                        parsed: ServeRequest::from_value(&doc).map_err(|e| e.to_string()),
                    },
                )
            }
            Err(e) => self.admit_request(
                None,
                QueuedLine {
                    conn,
                    id: None,
                    parsed: Err(e.to_string()),
                },
            ),
        }
    }

    /// Executes the `{"cmd": "reload"}` admin request against the path
    /// registered with [`with_reload_path`](Self::with_reload_path).
    fn reload_from_configured_path(&self) -> Result<u64, String> {
        match &self.reload_path {
            Some(path) => self
                .reload_handle()
                .reload_from(path)
                .map_err(|e| e.to_string()),
            None => Err("service has no snapshot path to reload from \
                         (start `serve` with --snapshot <file>)"
                .to_string()),
        }
    }

    /// Parses one request line and enqueues it for [`LOCAL_CONN`].
    /// Returns `true` for the `{"shutdown": true}` sentinel, which is not
    /// enqueued. (A `{"cmd": "reload"}` / `{"cmd": "stats"}` line is
    /// executed and not enqueued, and a bounded queue may refuse the
    /// line; use [`classify_and_submit`](Self::classify_and_submit) to
    /// observe those outcomes.)
    pub fn submit_line(&self, line: &str) -> bool {
        matches!(
            self.classify_and_submit(LOCAL_CONN, line),
            LineAction::Shutdown
        )
    }

    /// Parses one request line from connection `conn` and enqueues it
    /// (the multi-connection variant of [`submit_line`](Self::submit_line),
    /// used by the concurrent TCP front end).
    pub fn submit_line_for(&self, conn: ConnId, line: &str) -> LineAction {
        self.classify_and_submit(conn, line)
    }

    /// Number of requests waiting for the next batch drain.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Blocks until a request is pending or `timeout` elapses; returns
    /// whether anything is pending (the batching window's idle wait).
    pub fn wait_pending(&self, timeout: std::time::Duration) -> bool {
        self.queue.wait_nonempty(timeout)
    }

    /// Throws away pending requests whose connection `dead` says is gone,
    /// unanswered and without spending executor time on them; returns how
    /// many were dropped. Their replies must not leak into live clients'
    /// streams, and their compute would be wasted.
    pub fn discard_dead(&self, dead: impl Fn(ConnId) -> bool) -> usize {
        let n = self.queue.discard_if(|q| dead(q.conn));
        if n > 0 {
            self.metrics.note_discarded(n as u64);
        }
        n
    }

    /// Drains everything pending through the executor; returns replies in
    /// submission order, each tagged with the connection that sent the
    /// request, and folds timings into `stats`. The snapshot is captured
    /// **once** at batch start: every reply of the batch carries the same
    /// `snapshot_version`, and a concurrent hot reload only affects
    /// subsequent batches.
    pub fn drain_routed(&self, stats: &mut ServiceStats) -> Vec<(ConnId, ServeResponse)> {
        let versioned = self.cell.load();
        let batch_started = Instant::now();
        // The per-batch serve span. `ServeMetrics` is fed from the same
        // measurements below (it consumes what the trace layer times),
        // and the span close carries the batch size for the trace bin.
        let sp = portopt_trace::span(
            "serve",
            "drain_batch",
            &[("snapshot_version", versioned.version.into())],
        );
        // Per-query spans attribute each prediction's compute to the
        // worker that ran it. They only exist when a trace consumer is
        // listening (file sink, or stderr at `trace`) — the batch span's
        // compute/fan-out split below is always on, so the unsinked hot
        // path pays nothing per query.
        let trace_queries =
            portopt_trace::sink_on() || portopt_trace::stderr_wants(portopt_trace::Level::Trace);
        let answered = self.queue.drain_with(&self.exec, |queued| {
            let qsp = trace_queries.then(|| {
                portopt_trace::span("serve", "predict_query", &[("conn", queued.conn.into())])
            });
            let started = Instant::now();
            // The client id must survive the error path too: a reply the
            // client cannot correlate is as bad as no reply.
            let (id, outcome) = match &queued.parsed {
                Ok(req) => (req.id, self.predict_one(&versioned.snapshot, req)),
                Err(e) => (queued.id, Err(format!("bad request: {e}"))),
            };
            let latency_ms = started.elapsed().as_secs_f64() * 1e3;
            if let Some(qsp) = qsp {
                qsp.close_with(&[
                    ("id", id.unwrap_or(0).into()),
                    ("error", u64::from(outcome.is_err()).into()),
                ]);
            }
            (queued.conn, id, outcome, latency_ms)
        });
        if answered.is_empty() {
            sp.close_with(&[("requests", 0u64.into())]);
            return Vec::new();
        }
        let batch_secs = batch_started.elapsed().as_secs_f64();
        stats.batches += 1;
        stats.max_batch = stats.max_batch.max(answered.len());
        stats.busy_secs += batch_secs;
        self.metrics.record_batch(answered.len(), versioned.version);
        let successes = answered
            .iter()
            .filter(|(_, (_, _, outcome, _))| outcome.is_ok())
            .count() as u64;
        if successes > 0 {
            self.metrics
                .record_predictions(versioned.snapshot.compiler.model().kind(), successes);
        }
        // compute = sum of per-request kernel time; fan-out = everything
        // else the batch wall clock bought (queue handoff, executor
        // scheduling, reply assembly) — the split the trace bin reads to
        // tell "the model is slow" from "the batching is slow".
        let compute_ms: f64 = answered.iter().map(|(_, (_, _, _, ms))| ms).sum();
        let fanout_us = ((batch_secs * 1e3 - compute_ms).max(0.0) * 1e3) as u64;
        sp.close_with(&[
            ("requests", answered.len().into()),
            ("compute_us", ((compute_ms * 1e3) as u64).into()),
            ("fanout_us", fanout_us.into()),
        ]);
        answered
            .into_iter()
            .map(|(ticket, (conn, id, outcome, latency_ms))| {
                stats.requests += 1;
                stats.total_latency_ms += latency_ms;
                stats.max_latency_ms = stats.max_latency_ms.max(latency_ms);
                self.metrics
                    .record_request(latency_ms, outcome.as_ref().err().map(|_| ()));
                let id = id.unwrap_or(ticket);
                let response = match outcome {
                    Ok((cfg, choices, apply)) => ServeResponse {
                        id,
                        choices,
                        config: Some(cfg),
                        latency_ms,
                        stats: apply,
                        error: None,
                        snapshot_version: versioned.version,
                    },
                    Err(e) => {
                        stats.errors += 1;
                        ServeResponse {
                            id,
                            config: None,
                            choices: Vec::new(),
                            latency_ms,
                            stats: None,
                            error: Some(e),
                            snapshot_version: versioned.version,
                        }
                    }
                };
                (conn, response)
            })
            .collect()
    }

    /// Drains everything pending through the executor; returns replies in
    /// submission order and folds timings into `stats` (the
    /// single-stream view of [`drain_routed`](Self::drain_routed)).
    pub fn drain(&self, stats: &mut ServiceStats) -> Vec<ServeResponse> {
        self.drain_routed(stats)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// Writes replies as JSON lines.
    fn write_replies(
        &self,
        replies: &[ServeResponse],
        writer: &mut impl Write,
    ) -> std::io::Result<()> {
        for r in replies {
            let line = serde_json::to_string(r)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(writer, "{line}")?;
        }
        writer.flush()
    }

    /// Serves a line stream until EOF or a `{"shutdown": true}` line:
    /// requests accumulate until `batch` are pending (or input ends) and
    /// drain as one executor pass. A `{"cmd": "reload"}` line is executed
    /// immediately and acknowledged with an out-of-band admin reply (see
    /// `docs/SERVING.md`). Returns `true` when stopped by a shutdown
    /// request rather than EOF.
    pub fn run_lines(
        &self,
        reader: impl BufRead,
        mut writer: impl Write,
        batch: usize,
        stats: &mut ServiceStats,
    ) -> std::io::Result<bool> {
        let batch = batch.max(1);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match self.classify_and_submit(LOCAL_CONN, &line) {
                LineAction::Shutdown => {
                    // Close before the final drain: pending requests are
                    // still answered, later submits get a typed refusal.
                    self.close_queue();
                    let replies = self.drain(stats);
                    self.write_replies(&replies, &mut writer)?;
                    return Ok(true);
                }
                LineAction::Reload(outcome) => {
                    writeln!(writer, "{}", admin_reload_reply(&outcome))?;
                    writer.flush()?;
                }
                LineAction::Stats(reply) => {
                    writeln!(writer, "{reply}")?;
                    writer.flush()?;
                }
                LineAction::Refused { reply } => {
                    stats.refused += 1;
                    writeln!(writer, "{reply}")?;
                    writer.flush()?;
                }
                LineAction::Queued => {
                    if self.pending() >= batch {
                        let replies = self.drain(stats);
                        self.write_replies(&replies, &mut writer)?;
                    }
                }
            }
        }
        let replies = self.drain(stats);
        self.write_replies(&replies, &mut writer)?;
        Ok(false)
    }

    /// Serves connections off a TCP listener **concurrently** with the
    /// line protocol of [`run_lines`](Self::run_lines): a threaded accept
    /// loop (default connection bound), a cross-connection batching window
    /// that answers lone requests within a few milliseconds, and per-
    /// connection reply routing. A `{"shutdown": true}` request from any
    /// client flushes pending replies and stops the listener; the
    /// accumulated stats are returned. This is
    /// [`run_concurrent`](Self::run_concurrent) with default
    /// [`ServeOptions`](crate::ServeOptions) except for the batch size.
    pub fn run_tcp(&self, listener: TcpListener, batch: usize) -> std::io::Result<ServiceStats> {
        self.run_concurrent(
            listener,
            &crate::concurrent::ServeOptions {
                batch,
                ..Default::default()
            },
        )
    }
}

/// The out-of-band acknowledgement line for a `{"cmd": "reload"}` request.
pub(crate) fn admin_reload_reply(outcome: &Result<u64, String>) -> String {
    match outcome {
        Ok(version) => format!(r#"{{"cmd":"reload","ok":true,"snapshot_version":{version}}}"#),
        Err(e) => {
            let msg = serde_json::to_string(e).unwrap_or_else(|_| "\"reload failed\"".into());
            format!(r#"{{"cmd":"reload","ok":false,"error":{msg}}}"#)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The differential contract behind `decode_line_fast`: on every line
    /// it accepts, its result must equal what the tree path
    /// (`serde_json::parse` + `ServeRequest::from_value` + the admission
    /// scan for `id`) would have produced; lines it refuses are the tree
    /// path's business by construction. The corpus covers the canonical
    /// shape, every reorder/whitespace/optional-field variant the fast
    /// path should accept, and each bail-out class (admin markers,
    /// duplicate and unknown keys, escapes, non-finite and malformed
    /// values, `module` requests, garbage).
    #[test]
    fn fast_decoder_agrees_with_tree_path() {
        let canonical = r#"{"id":7,"features":[0.5,1.25,-3.0,1e-6,123456789.25],"uarch":"xscale"}"#;
        let corpus: Vec<String> = vec![
            canonical.to_string(),
            // Reordered, whitespace, optional fields present/absent.
            r#"{"features":[1.0,2.0],"uarch":"xscale","id":3,"apply":true}"#.to_string(),
            r#"{ "id" : 0 , "features" : [ 0.1 ] , "uarch" : "xscale" , "apply" : false }"#
                .to_string(),
            r#"{"features":[],"uarch":"xscale"}"#.to_string(),
            r#"{"id":18446744073709551615,"features":[2.5],"uarch":"xscale"}"#.to_string(),
            // The full uarch object, in printed field order (fast-path
            // hit) and reordered (tree-path bail, same result).
            concat!(
                r#"{"id":1,"features":[0.5],"uarch":{"il1_size":32768,"il1_assoc":32,"#,
                r#""il1_block":32,"dl1_size":32768,"dl1_assoc":32,"dl1_block":32,"#,
                r#""btb_entries":512,"btb_assoc":1,"freq_mhz":400,"width":1}}"#
            )
            .to_string(),
            concat!(
                r#"{"id":1,"features":[0.5],"uarch":{"width":1,"il1_size":32768,"il1_assoc":32,"#,
                r#""il1_block":32,"dl1_size":32768,"dl1_assoc":32,"dl1_block":32,"#,
                r#""btb_entries":512,"btb_assoc":1,"freq_mhz":400}}"#
            )
            .to_string(),
            // Bail-outs the tree path must own: admin markers...
            r#"{"shutdown":true}"#.to_string(),
            r#"{"cmd":"stats"}"#.to_string(),
            r#"{"cmd":"reload"}"#.to_string(),
            // ...error shapes...
            r#"{"id":9,"features":[0.5,null,0.25],"uarch":"xscale"}"#.to_string(),
            r#"{"id":9,"features":[1e999],"uarch":"xscale"}"#.to_string(),
            r#"{"id":-1,"features":[1.0],"uarch":"xscale"}"#.to_string(),
            r#"{"id":9,"features":[1.0],"uarch":"arm11"}"#.to_string(),
            r#"{"id":9,"uarch":"xscale"}"#.to_string(),
            r#"{"features":[1.0]}"#.to_string(),
            r#"{"id":9,"id":10,"features":[1.0],"uarch":"xscale"}"#.to_string(),
            r#"{"id":9,"features":[1.0],"uarch":"xscale","extra":1}"#.to_string(),
            r#"{"id":5.0,"features":[1.0],"uarch":"xscale"}"#.to_string(),
            r#"{"id":9,"features":[1.0],"uarch":"xscale"}"#.to_string(),
            r#"{"id":9,"features":["a"],"uarch":"xscale"}"#.to_string(),
            r#"{"id":9,"features":[1.0],"uarch":"xscale"} trailing"#.to_string(),
            r#"not json at all"#.to_string(),
            r#"[1,2,3]"#.to_string(),
            r#"{}"#.to_string(),
            String::new(),
        ];

        let mut fast_hits = 0usize;
        for line in &corpus {
            let fast = decode_line_fast(line);
            let tree: Result<ServeRequest, _> =
                serde_json::parse(line).and_then(|doc| ServeRequest::from_value(&doc));
            if let Some((id, req)) = fast {
                fast_hits += 1;
                let tree_req = tree.unwrap_or_else(|e| {
                    panic!("fast path accepted `{line}` but tree path errors: {e}")
                });
                assert_eq!(req, tree_req, "request mismatch on `{line}`");
                assert_eq!(id, tree_req.id, "id mismatch on `{line}`");
            }
        }
        // Coverage guard: the canonical shape and its accepted variants
        // must HIT the fast path — if an edit silently stops it matching,
        // the serving hot path quietly regresses to the tree path.
        assert!(
            fast_hits >= 5,
            "fast decoder hit only {fast_hits} corpus lines; expected the 5 canonical variants"
        );
        assert!(
            decode_line_fast(canonical).is_some(),
            "fast decoder must accept the canonical request shape"
        );

        // And the wire shape our own client emits must hit it too.
        let req = ServeRequest {
            id: Some(42),
            input: RequestInput::Features(vec![0.123456789012345, 7.0, -2.5e-4]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        let line = serde_json::to_string(&req).unwrap();
        let (id, decoded) = decode_line_fast(&line)
            .unwrap_or_else(|| panic!("fast decoder must accept our own wire format: {line}"));
        assert_eq!(id, Some(42));
        assert_eq!(decoded, req);
    }
}
