//! The batched prediction service.
//!
//! A JSON-lines protocol over any line-oriented byte stream: each request
//! is one JSON object, each reply is one JSON object, in request order.
//! [`PredictionService::run_lines`] drives a `BufRead`/`Write` pair (stdin
//! /stdout for piping and tests); [`PredictionService::run_tcp`] serves
//! the same protocol over `std::net::TcpListener`.
//!
//! Requests accumulate in a [`ServiceQueue`] and are drained as batches
//! onto the [`Executor`], so a burst of predictions from one client uses
//! every core — the deployment-time mirror of the training sweep.
//!
//! ## Request format
//!
//! ```json
//! {"features": [/* 19 numbers */], "uarch": "xscale"}
//! {"module": {/* portopt-ir Module */}, "uarch": {/* MicroArch */}, "apply": true}
//! {"shutdown": true}
//! ```
//!
//! * `features` — a feature vector as produced by `FeatureVec` (counters
//!   from one `-O3` run plus microarchitecture descriptors), *or*
//! * `module` — a serialized `portopt-ir` module; the service runs the
//!   `-O3` profiling itself (the full Figure 2 deployment flow);
//! * `uarch` — the target: `"xscale"` or an explicit configuration object;
//! * `apply` (optional, module requests) — also compile with the predicted
//!   setting and report predicted-vs-`-O3` cycle counts;
//! * `id` (optional) — echoed in the reply; defaults to the submission
//!   index.
//!
//! A reply carries the predicted [`OptConfig`] both structurally
//! (`config`) and as the canonical choice vector (`choices`), plus the
//! per-request service latency in milliseconds. Malformed requests get
//! `{"id": …, "error": "…"}` replies in-order rather than tearing down the
//! connection.
//!
//! Submit / drain, the loop both transports are built on:
//!
//! ```
//! use portopt_core::{generate, GenOptions, SweepScale, TrainOptions};
//! use portopt_ir::{FuncBuilder, ModuleBuilder};
//! use portopt_serve::{PredictionService, ServiceStats, Snapshot};
//!
//! // Train a toy snapshot (a real one comes from `Snapshot::load`).
//! let mut mb = ModuleBuilder::new("toy");
//! let mut b = FuncBuilder::new("main", 0);
//! let acc = b.iconst(0);
//! b.counted_loop(0, 24, 1, |b, i| {
//!     let t = b.add(acc, i);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let opts = GenOptions {
//!     scale: SweepScale { n_uarch: 2, n_opts: 3 },
//!     threads: 1,
//!     ..GenOptions::default()
//! };
//! let ds = generate(&[("toy".to_string(), mb.finish())], &opts);
//! let snap = Snapshot::train(&ds, &TrainOptions::default());
//!
//! let service = PredictionService::new(snap, 1);
//! let features: Vec<f64> = ds.features[0][0].values.clone();
//! let line = format!(r#"{{"id": 7, "features": {features:?}, "uarch": "xscale"}}"#);
//! assert!(!service.submit_line(&line)); // not the shutdown sentinel
//!
//! let mut stats = ServiceStats::default();
//! let replies = service.drain(&mut stats);
//! assert_eq!(replies[0].id, 7);
//! assert!(replies[0].error.is_none());
//! assert!(replies[0].config.is_some());
//! assert_eq!(stats.requests, 1);
//! ```

use crate::snapshot::Snapshot;
use portopt_exec::{Executor, ServiceQueue};
use portopt_ir::interp::ExecLimits;
use portopt_ir::Module;
use portopt_passes::{compile, OptConfig};
use portopt_sim::{evaluate, profile};
use portopt_uarch::{FeatureVec, MicroArch};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::time::Instant;

/// Execution limits for service-side profiling runs (same budget as the
/// training sweep).
const PROFILE_LIMITS: ExecLimits = ExecLimits {
    fuel: 100_000_000,
    max_depth: 2048,
};

/// Default number of requests drained per executor batch.
pub const DEFAULT_BATCH: usize = 32;

/// What a request asks the model to predict from.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestInput {
    /// A precomputed feature vector (counters + descriptors).
    Features(Vec<f64>),
    /// A raw module; the service profiles it at `-O3` first.
    Module(Box<Module>),
}

/// One parsed prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Client-chosen reply id; defaults to the submission index.
    pub id: Option<u64>,
    /// Feature vector or raw module.
    pub input: RequestInput,
    /// Target microarchitecture.
    pub uarch: MicroArch,
    /// For module requests: compile with the prediction and report stats.
    pub apply: bool,
}

impl Serialize for ServeRequest {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(id) = self.id {
            fields.push(("id".to_string(), id.to_value()));
        }
        match &self.input {
            RequestInput::Features(f) => fields.push(("features".to_string(), f.to_value())),
            RequestInput::Module(m) => fields.push(("module".to_string(), m.to_value())),
        }
        fields.push(("uarch".to_string(), self.uarch.to_value()));
        if self.apply {
            fields.push(("apply".to_string(), true.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ServeRequest {
    /// Lenient by hand (the derive requires every field): absent `id` and
    /// `apply` default, `uarch` accepts a name or a full object.
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::new("request must be a JSON object"))?;
        let get = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let id = match get("id") {
            Some(v) => Some(u64::from_value(v)?),
            None => None,
        };
        let apply = match get("apply") {
            Some(v) => bool::from_value(v)?,
            None => false,
        };
        let input = match (get("features"), get("module")) {
            (Some(_), Some(_)) => {
                return Err(serde::Error::new(
                    "request has both `features` and `module`; send one",
                ))
            }
            (Some(f), None) => RequestInput::Features(Vec::<f64>::from_value(f)?),
            (None, Some(m)) => RequestInput::Module(Box::new(Module::from_value(m)?)),
            (None, None) => {
                return Err(serde::Error::new(
                    "request needs `features` (a feature vector) or `module` (a program)",
                ))
            }
        };
        let uarch = match get("uarch") {
            Some(Value::Str(name)) => match name.as_str() {
                "xscale" => MicroArch::xscale(),
                other => {
                    return Err(serde::Error::new(format!(
                        "unknown microarchitecture name `{other}` (known: \"xscale\"); \
                         or pass a full configuration object"
                    )))
                }
            },
            Some(v) => MicroArch::from_value(v)?,
            None => {
                return Err(serde::Error::new(
                    "request needs `uarch` (\"xscale\" or a configuration object)",
                ))
            }
        };
        Ok(ServeRequest {
            id,
            input,
            uarch,
            apply,
        })
    }
}

/// Cycle counts from an `apply: true` module request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplyStats {
    /// Cycles of the `-O3` profiling run on the target.
    pub o3_cycles: f64,
    /// Cycles of the predicted setting's binary on the target.
    pub predicted_cycles: f64,
    /// `o3_cycles / predicted_cycles`.
    pub speedup: f64,
}

/// One reply line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Echo of the request id (or the submission index).
    pub id: u64,
    /// The predicted setting, `None` on error.
    pub config: Option<OptConfig>,
    /// The predicted setting as the canonical choice vector, empty on
    /// error.
    pub choices: Vec<u8>,
    /// Service-side latency for this request in milliseconds (profiling
    /// included for module requests).
    pub latency_ms: f64,
    /// Cycle counts when the request asked to `apply` the prediction.
    pub stats: Option<ApplyStats>,
    /// What went wrong, if anything.
    pub error: Option<String>,
}

/// Running totals, reported when the service shuts down.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ServiceStats {
    /// Requests answered (including error replies).
    pub requests: u64,
    /// Requests answered with an error reply.
    pub errors: u64,
    /// Executor batches drained.
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: usize,
    /// Sum of per-request latencies (ms).
    pub total_latency_ms: f64,
    /// Worst single-request latency (ms).
    pub max_latency_ms: f64,
    /// Wall-clock seconds spent draining batches.
    pub busy_secs: f64,
}

impl ServiceStats {
    /// Mean per-request latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_ms / self.requests as f64
        }
    }

    /// Predictions per second of busy (batch-draining) time.
    pub fn predictions_per_sec(&self) -> f64 {
        if self.busy_secs > 0.0 {
            self.requests as f64 / self.busy_secs
        } else {
            0.0
        }
    }

    /// The human-readable shutdown report.
    pub fn report(&self) -> String {
        format!(
            "served {} requests ({} errors) in {} batches (max {}): \
             mean latency {:.3} ms, max {:.3} ms, {:.0} predictions/sec",
            self.requests,
            self.errors,
            self.batches,
            self.max_batch,
            self.mean_latency_ms(),
            self.max_latency_ms,
            self.predictions_per_sec(),
        )
    }
}

/// A loaded snapshot serving predictions over an [`Executor`].
#[derive(Debug)]
pub struct PredictionService {
    snapshot: Snapshot,
    exec: Executor,
    queue: ServiceQueue<Result<ServeRequest, String>>,
}

impl PredictionService {
    /// Wraps a loaded snapshot; `threads == 0` uses all cores.
    pub fn new(snapshot: Snapshot, threads: usize) -> Self {
        PredictionService {
            snapshot,
            exec: Executor::new(threads),
            queue: ServiceQueue::new(),
        }
    }

    /// The snapshot being served.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Answers one request (the per-task kernel of a batch drain).
    fn predict_one(&self, req: &ServeRequest) -> Result<(OptConfig, Option<ApplyStats>), String> {
        match &req.input {
            RequestInput::Features(values) => {
                let want = self.snapshot.meta.feature_dim;
                if values.len() != want {
                    return Err(format!(
                        "feature vector has {} values, model expects {want}",
                        values.len()
                    ));
                }
                let x = FeatureVec {
                    values: values.clone(),
                };
                Ok((self.snapshot.compiler.predict(&x), None))
            }
            RequestInput::Module(module) => {
                let img3 = compile(module, &OptConfig::o3());
                let prof3 = profile(&img3, module, &[], PROFILE_LIMITS)
                    .map_err(|e| format!("-O3 profiling run failed: {e:?}"))?;
                let t3 = evaluate(&img3, &prof3, &req.uarch);
                let cfg = self
                    .snapshot
                    .compiler
                    .predict_from_counters(&t3.counters, &req.uarch);
                let stats = if req.apply {
                    let img = compile(module, &cfg);
                    let prof = profile(&img, module, &[], PROFILE_LIMITS)
                        .map_err(|e| format!("predicted binary failed to run: {e:?}"))?;
                    let t = evaluate(&img, &prof, &req.uarch);
                    Some(ApplyStats {
                        o3_cycles: t3.cycles,
                        predicted_cycles: t.cycles,
                        speedup: t3.cycles / t.cycles,
                    })
                } else {
                    None
                };
                Ok((cfg, stats))
            }
        }
    }

    /// Parses one request line and enqueues it (one parse: the document
    /// tree is probed for the shutdown sentinel and then decoded as a
    /// request). Unparseable lines enqueue their error so the reply
    /// stream stays in request order. Returns `true` for the
    /// `{"shutdown": true}` sentinel, which is not enqueued.
    pub fn submit_line(&self, line: &str) -> bool {
        match serde_json::from_str::<Value>(line) {
            Ok(doc) => {
                if let Ok(f) = doc.field("shutdown") {
                    if matches!(bool::from_value(f), Ok(true)) {
                        return true;
                    }
                }
                self.queue
                    .submit(ServeRequest::from_value(&doc).map_err(|e| e.to_string()));
            }
            Err(e) => {
                self.queue.submit(Err(e.to_string()));
            }
        }
        false
    }

    /// Number of requests waiting for the next batch drain.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Throws away everything pending, unanswered; returns how many.
    /// Used when the connection that submitted the requests died — their
    /// replies must not leak into the next client's stream.
    fn discard_pending(&self) -> usize {
        self.queue.take_batch().len()
    }

    /// Drains everything pending through the executor; returns replies in
    /// submission order and folds timings into `stats`.
    pub fn drain(&self, stats: &mut ServiceStats) -> Vec<ServeResponse> {
        let batch_started = Instant::now();
        let answered = self.queue.drain_with(&self.exec, |parsed| {
            let started = Instant::now();
            // The client id must survive the error path too: a reply the
            // client cannot correlate is as bad as no reply.
            let (id, outcome) = match parsed {
                Ok(req) => (req.id, self.predict_one(req)),
                Err(e) => (None, Err(format!("bad request: {e}"))),
            };
            (id, outcome, started.elapsed().as_secs_f64() * 1e3)
        });
        if answered.is_empty() {
            return Vec::new();
        }
        stats.batches += 1;
        stats.max_batch = stats.max_batch.max(answered.len());
        stats.busy_secs += batch_started.elapsed().as_secs_f64();
        answered
            .into_iter()
            .map(|(ticket, (id, outcome, latency_ms))| {
                stats.requests += 1;
                stats.total_latency_ms += latency_ms;
                stats.max_latency_ms = stats.max_latency_ms.max(latency_ms);
                let id = id.unwrap_or(ticket);
                match outcome {
                    Ok((cfg, apply)) => ServeResponse {
                        id,
                        choices: cfg.to_choices(),
                        config: Some(cfg),
                        latency_ms,
                        stats: apply,
                        error: None,
                    },
                    Err(e) => {
                        stats.errors += 1;
                        ServeResponse {
                            id,
                            config: None,
                            choices: Vec::new(),
                            latency_ms,
                            stats: None,
                            error: Some(e),
                        }
                    }
                }
            })
            .collect()
    }

    /// Writes replies as JSON lines.
    fn write_replies(
        &self,
        replies: &[ServeResponse],
        writer: &mut impl Write,
    ) -> std::io::Result<()> {
        for r in replies {
            let line = serde_json::to_string(r)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(writer, "{line}")?;
        }
        writer.flush()
    }

    /// Serves a line stream until EOF or a `{"shutdown": true}` line:
    /// requests accumulate until `batch` are pending (or input ends) and
    /// drain as one executor pass. Returns `true` when stopped by a
    /// shutdown request rather than EOF.
    pub fn run_lines(
        &self,
        reader: impl BufRead,
        mut writer: impl Write,
        batch: usize,
        stats: &mut ServiceStats,
    ) -> std::io::Result<bool> {
        let batch = batch.max(1);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if self.submit_line(&line) {
                let replies = self.drain(stats);
                self.write_replies(&replies, &mut writer)?;
                return Ok(true);
            }
            if self.pending() >= batch {
                let replies = self.drain(stats);
                self.write_replies(&replies, &mut writer)?;
            }
        }
        let replies = self.drain(stats);
        self.write_replies(&replies, &mut writer)?;
        Ok(false)
    }

    /// One TCP connection with the line protocol of
    /// [`run_lines`](Self::run_lines), plus an idle flush: a short read
    /// timeout drains whatever is pending, so a client that sends fewer
    /// than `batch` requests and blocks on the reply is answered within
    /// ~20 ms instead of deadlocking the connection.
    fn serve_connection(
        &self,
        mut stream: std::net::TcpStream,
        batch: usize,
        stats: &mut ServiceStats,
    ) -> std::io::Result<bool> {
        use std::io::Read;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(20)))?;
        let mut writer = stream.try_clone()?;
        let batch = batch.max(1);
        let mut chunk = [0u8; 4096];
        let mut acc: Vec<u8> = Vec::new();
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    acc.extend_from_slice(&chunk[..n]);
                    while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                        let raw: Vec<u8> = acc.drain(..=pos).collect();
                        let text = String::from_utf8_lossy(&raw);
                        let line = text.trim();
                        if line.is_empty() {
                            continue;
                        }
                        if self.submit_line(line) {
                            let replies = self.drain(stats);
                            self.write_replies(&replies, &mut writer)?;
                            return Ok(true);
                        }
                        if self.pending() >= batch {
                            let replies = self.drain(stats);
                            self.write_replies(&replies, &mut writer)?;
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Read timeout: the client is idle, not gone. Answer
                    // what it has sent so far.
                    if self.pending() > 0 {
                        let replies = self.drain(stats);
                        self.write_replies(&replies, &mut writer)?;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // A final line without a trailing newline is still a request —
        // stdio mode (BufRead::lines) answers it, so TCP must too.
        let text = String::from_utf8_lossy(&acc);
        let tail = text.trim();
        if !tail.is_empty() && self.submit_line(tail) {
            let replies = self.drain(stats);
            self.write_replies(&replies, &mut writer)?;
            return Ok(true);
        }
        let replies = self.drain(stats);
        self.write_replies(&replies, &mut writer)?;
        Ok(false)
    }

    /// Serves connections off a TCP listener, one at a time, each with the
    /// line protocol of [`run_lines`](Self::run_lines) plus an idle-flush
    /// read timeout. A `{"shutdown": true}` request closes its connection
    /// *and* stops the listener; the accumulated stats are returned.
    pub fn run_tcp(&self, listener: TcpListener, batch: usize) -> std::io::Result<ServiceStats> {
        let mut stats = ServiceStats::default();
        for stream in listener.incoming() {
            // A failed or dropped client is that connection's problem, not
            // the server's: log and keep accepting. (accept() can fail
            // transiently — a client resetting before we accept, fd
            // pressure — and must not take the service down.)
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("accept error: {e}");
                    continue;
                }
            };
            match self.serve_connection(stream, batch, &mut stats) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => {
                    eprintln!("connection error: {e}");
                    // Unanswered requests from the dead connection must
                    // not leak into the next client's reply stream.
                    let dropped = self.discard_pending();
                    if dropped > 0 {
                        eprintln!("dropped {dropped} unanswered requests from that connection");
                    }
                }
            }
        }
        Ok(stats)
    }
}
