//! The concurrent TCP front end: many clients, one shared batch queue.
//!
//! PR 3's serving loop owned one connection at a time — batching never
//! spanned clients and a second connection waited in the kernel's accept
//! backlog. This module converts the request path from connection-owned
//! to **service-owned** batching:
//!
//! * an accept loop registers each client in a bounded
//!   [`ConnectionRegistry`] and spawns a reader thread per connection;
//! * readers parse lines and submit them — tagged with their [`ConnId`] —
//!   into the service's shared [`ServiceQueue`](portopt_exec::ServiceQueue);
//! * one batcher thread gathers requests from *all* live connections for
//!   up to [`ServeOptions::window`] (or until [`ServeOptions::batch`] are
//!   pending), drains them as a single executor batch, and routes each
//!   reply back to the socket its request arrived on;
//! * requests whose connection died before their batch ran are discarded
//!   unanswered — never computed, never leaked into another client's
//!   stream.
//!
//! Per-connection ordering is preserved end to end: one reader per
//! connection submits in read order, the queue keeps ticket order, and
//! the batcher writes replies in ticket order. What is *not* deterministic
//! is which requests share a batch across connections — see the
//! determinism table in `docs/ARCHITECTURE.md` and the wire-protocol
//! guarantees in `docs/SERVING.md`.
//!
//! The registry is generic over its writer type, so its bookkeeping —
//! capacity, half-close draining, dead-connection discard — is testable
//! without sockets:
//!
//! ```
//! use portopt_serve::ConnectionRegistry;
//!
//! let registry: ConnectionRegistry<Vec<u8>> = ConnectionRegistry::new(2);
//! let a = registry.register(Vec::new()).unwrap();
//! let b = registry.register(Vec::new()).unwrap();
//! assert!(registry.register(Vec::new()).is_none()); // at capacity
//! assert_eq!(registry.len(), 2);
//!
//! // One outstanding request on `a`; its client half-closes...
//! registry.note_submitted(a);
//! registry.mark_eof(a);
//! assert!(registry.live(a), "kept open until its reply is delivered");
//! // ...the reply is still delivered, then the connection retires.
//! assert!(registry.deliver(a, "{\"id\":0}\n", 1));
//! assert!(!registry.live(a));
//! assert_eq!(registry.len(), 1);
//!
//! // `b` is EOF with nothing outstanding: retired immediately.
//! registry.mark_eof(b);
//! assert_eq!(registry.len(), 0);
//! ```

use crate::service::{admin_reload_reply, ConnId, PredictionService, ServiceStats};
use crate::WatchEvent;
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default cross-connection batching window: how long the batcher gathers
/// requests before answering a partial batch. Doubles as the idle flush —
/// a lone request is answered within roughly this time.
pub const DEFAULT_WINDOW_MS: u64 = 5;

/// Default bound on simultaneously served connections.
pub const DEFAULT_MAX_CONNS: usize = 64;

/// How often a `--watch-snapshot` poll examines the artifact's metadata.
pub const DEFAULT_WATCH_INTERVAL_MS: u64 = 200;

/// How long a reply write may block before the client is considered
/// stalled and its connection retired (a client that stops reading fills
/// its receive buffer; delivery must not block other connections).
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(2);

/// Configuration of the concurrent TCP front end
/// ([`PredictionService::run_concurrent`]).
///
/// ```
/// use portopt_serve::ServeOptions;
/// use std::time::Duration;
///
/// let opts = ServeOptions {
///     batch: 64,                              // drain when 64 are pending…
///     window: Duration::from_millis(2),       // …or 2 ms after the first
///     max_conns: 8,
///     queue_cap: Some(256),                   // refuse past 256 pending
///     per_conn_quota: Some(32),               // backpressure a flooder
///     ..Default::default()
/// };
/// assert_eq!(opts.batch, 64);
/// assert!(opts.watch_interval.is_none(), "snapshot watching is opt-in");
/// assert!(opts.metrics_port.is_none(), "the plaintext endpoint is opt-in");
/// ```
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Requests per executor batch: the batcher drains as soon as this
    /// many are pending, without waiting out the window.
    pub batch: usize,
    /// The batching window: after the first pending request, how long to
    /// gather more (across all connections) before draining a partial
    /// batch. Also the answer-latency bound for a lone request.
    pub window: Duration,
    /// Maximum simultaneous connections; further clients are refused with
    /// a one-line error reply (see `docs/SERVING.md`).
    pub max_conns: usize,
    /// Bound on pending (queued, not yet drained) requests across all
    /// connections — the `--queue-cap` flag. A submit past the bound is
    /// refused with `{"error":"overloaded","retry_after_ms":…}` instead
    /// of queued. `None` (the default) keeps the queue unbounded.
    pub queue_cap: Option<usize>,
    /// Bound on one connection's outstanding (submitted, reply not yet
    /// delivered) requests — the `--per-conn-quota` flag. A connection at
    /// its quota stops being *read* until replies drain: backpressure via
    /// TCP flow control, invisible to a well-behaved client. `None` (the
    /// default) lets one client fill the whole queue.
    pub per_conn_quota: Option<u64>,
    /// `Some(port)` serves a plaintext metrics snapshot on
    /// `127.0.0.1:port` — the `--metrics-port` flag: connect, read the
    /// `portopt_*` lines, connection closes (see `docs/SERVING.md`).
    pub metrics_port: Option<u16>,
    /// `Some(interval)` polls the service's reload path (mtime + length)
    /// and hot-swaps the snapshot when the file changes — the
    /// `--watch-snapshot` flag. Requires
    /// [`PredictionService::with_reload_path`].
    pub watch_interval: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            batch: crate::DEFAULT_BATCH,
            window: Duration::from_millis(DEFAULT_WINDOW_MS),
            max_conns: DEFAULT_MAX_CONNS,
            queue_cap: None,
            per_conn_quota: None,
            metrics_port: None,
            watch_interval: None,
        }
    }
}

/// Per-connection bookkeeping: the writer half plus the counters that
/// decide when the connection can be retired.
struct ConnEntry<W> {
    /// Writer half, behind its own lock so one slow client's write never
    /// blocks the whole registry.
    writer: Arc<Mutex<W>>,
    /// Requests submitted to the batch queue but not yet answered.
    outstanding: u64,
    /// Reader saw EOF (client closed its write half); retire once
    /// `outstanding` drains to zero, so half-close still gets its replies.
    eof: bool,
}

/// The live-connection table of the concurrent front end: hands out
/// [`ConnId`]s (bounded by `max_conns`), tracks per-connection
/// outstanding-reply counts, and routes reply payloads to writer halves.
/// Dropping an entry drops its writer, which for a `TcpStream` closes the
/// socket — so retirement *is* the server-side close.
///
/// Generic over the writer so the lifecycle rules are unit-testable with
/// `Vec<u8>` sinks (see the module example).
#[derive(Debug)]
pub struct ConnectionRegistry<W> {
    inner: Mutex<RegistryInner<W>>,
    max_conns: usize,
    /// Per-connection outstanding-request bound; a connection at the
    /// bound reports [`over_quota`](Self::over_quota) and its reader
    /// stops draining the socket (TCP backpressure).
    quota: Option<u64>,
}

#[derive(Debug)]
struct RegistryInner<W> {
    conns: HashMap<ConnId, ConnEntry<W>>,
    next: ConnId,
}

impl<W: std::fmt::Debug> std::fmt::Debug for ConnEntry<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnEntry")
            .field("outstanding", &self.outstanding)
            .field("eof", &self.eof)
            .finish()
    }
}

impl<W: Write> ConnectionRegistry<W> {
    /// An empty registry admitting at most `max_conns` (≥ 1) connections.
    pub fn new(max_conns: usize) -> Self {
        ConnectionRegistry {
            inner: Mutex::new(RegistryInner {
                conns: HashMap::new(),
                next: 1, // 0 is LOCAL_CONN, the stdio stream
            }),
            max_conns: max_conns.max(1),
            quota: None,
        }
    }

    /// Sets the per-connection outstanding-request quota (≥ 1 when
    /// `Some`); `None` disables the bound.
    pub fn with_quota(mut self, quota: Option<u64>) -> Self {
        self.quota = quota.map(|q| q.max(1));
        self
    }

    /// `conn`'s outstanding (submitted, reply not yet delivered) request
    /// count; 0 when the connection is gone.
    pub fn outstanding(&self, conn: ConnId) -> u64 {
        self.inner
            .lock()
            .expect("registry lock")
            .conns
            .get(&conn)
            .map_or(0, |e| e.outstanding)
    }

    /// Sum of outstanding counts over every live connection — the
    /// registry side of the ledger that must agree with the metrics
    /// in-flight gauge once all replies are delivered or discarded.
    pub fn total_outstanding(&self) -> u64 {
        self.inner
            .lock()
            .expect("registry lock")
            .conns
            .values()
            .map(|e| e.outstanding)
            .sum()
    }

    /// Whether `conn` has exhausted its outstanding-request quota and its
    /// reader should pause before draining more bytes. Always `false`
    /// without a quota, and for a connection that is gone (the reader
    /// must proceed to its exit path, not spin).
    pub fn over_quota(&self, conn: ConnId) -> bool {
        let Some(quota) = self.quota else {
            return false;
        };
        self.inner
            .lock()
            .expect("registry lock")
            .conns
            .get(&conn)
            .is_some_and(|e| e.outstanding >= quota)
    }

    /// Admits a connection, returning its [`ConnId`] — or `None` when the
    /// registry is at capacity (the caller should refuse the client).
    pub fn register(&self, writer: W) -> Option<ConnId> {
        let mut g = self.inner.lock().expect("registry lock");
        if g.conns.len() >= self.max_conns {
            return None;
        }
        let id = g.next;
        g.next += 1;
        g.conns.insert(
            id,
            ConnEntry {
                writer: Arc::new(Mutex::new(writer)),
                outstanding: 0,
                eof: false,
            },
        );
        Some(id)
    }

    /// Whether `conn` is still registered (its replies are deliverable).
    pub fn live(&self, conn: ConnId) -> bool {
        self.inner
            .lock()
            .expect("registry lock")
            .conns
            .contains_key(&conn)
    }

    /// Number of registered connections.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry lock").conns.len()
    }

    /// Whether no connection is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records that one request from `conn` entered the batch queue.
    /// Call **before** the submit: the batcher may deliver the reply (and
    /// decrement) the instant the request is visible in the queue.
    pub fn note_submitted(&self, conn: ConnId) {
        if let Some(e) = self
            .inner
            .lock()
            .expect("registry lock")
            .conns
            .get_mut(&conn)
        {
            e.outstanding += 1;
        }
    }

    /// Reverses one [`note_submitted`](Self::note_submitted) for a line
    /// that turned out not to enqueue a request (admin commands, the
    /// shutdown sentinel).
    pub fn note_retracted(&self, conn: ConnId) {
        let mut g = self.inner.lock().expect("registry lock");
        if let Some(e) = g.conns.get_mut(&conn) {
            e.outstanding = e.outstanding.saturating_sub(1);
            if e.eof && e.outstanding == 0 {
                g.conns.remove(&conn);
            }
        }
    }

    /// Marks `conn` as read-closed (EOF from the client). The connection
    /// is retired immediately if nothing is outstanding; otherwise it
    /// lingers until its pending replies are delivered — the half-close
    /// guarantee: `shutdown(SHUT_WR)` + read still yields every reply.
    pub fn mark_eof(&self, conn: ConnId) {
        let mut g = self.inner.lock().expect("registry lock");
        if let Some(e) = g.conns.get_mut(&conn) {
            if e.outstanding == 0 {
                g.conns.remove(&conn);
            } else {
                e.eof = true;
            }
        }
    }

    /// Forcibly retires `conn` (reader error, server shutdown): its
    /// writer is dropped and any still-queued requests will be discarded
    /// by the next batch drain.
    pub fn remove(&self, conn: ConnId) {
        self.inner
            .lock()
            .expect("registry lock")
            .conns
            .remove(&conn);
    }

    /// Writes `payload` (one or more complete reply lines accounting for
    /// `replies` requests) to `conn`'s writer and flushes. Returns whether
    /// delivery succeeded; on a write error the connection is retired (its
    /// remaining queued requests will be discarded). Payload writes hold
    /// only the per-connection writer lock, so a stalled client does not
    /// block delivery to other connections.
    pub fn deliver(&self, conn: ConnId, payload: &str, replies: u64) -> bool {
        let writer = {
            let g = self.inner.lock().expect("registry lock");
            match g.conns.get(&conn) {
                Some(e) => Arc::clone(&e.writer),
                None => return false,
            }
        };
        let wrote = {
            let mut w = writer.lock().expect("connection writer lock");
            w.write_all(payload.as_bytes()).and_then(|()| w.flush())
        };
        let mut g = self.inner.lock().expect("registry lock");
        match wrote {
            Ok(()) => {
                if let Some(e) = g.conns.get_mut(&conn) {
                    e.outstanding = e.outstanding.saturating_sub(replies);
                    if e.eof && e.outstanding == 0 {
                        g.conns.remove(&conn);
                    }
                }
                true
            }
            Err(_) => {
                g.conns.remove(&conn);
                false
            }
        }
    }
}

impl PredictionService {
    /// Serves a TCP listener concurrently: bounded multi-connection accept
    /// loop, cross-connection batching window, hot snapshot reload. See
    /// the [module docs](crate::concurrent) for the architecture and
    /// `docs/SERVING.md` for the wire protocol. Returns the accumulated
    /// stats when a `{"shutdown": true}` request stops the service.
    pub fn run_concurrent(
        &self,
        listener: TcpListener,
        opts: &ServeOptions,
    ) -> std::io::Result<ServiceStats> {
        let batch = opts.batch.max(1);
        // The accept loop must keep checking the stop flag, so it polls a
        // non-blocking listener instead of parking in accept(2).
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        self.set_queue_cap(opts.queue_cap);
        // An overloaded client should retry once the congestion it saw
        // has had a chance to drain: about two batching windows.
        self.set_retry_after_hint_ms((2 * opts.window.as_millis().max(1)) as u64);
        let registry: ConnectionRegistry<TcpStream> =
            ConnectionRegistry::new(opts.max_conns).with_quota(opts.per_conn_quota);
        if opts.watch_interval.is_some() && self.reload_path().is_none() {
            portopt_trace::warn!(
                "serve",
                "--watch-snapshot ignored: service has no snapshot path to watch"
            );
        }
        let metrics_listener = match opts.metrics_port {
            Some(port) => {
                let l = TcpListener::bind(("127.0.0.1", port))?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };

        std::thread::scope(|scope| {
            let batcher = scope.spawn(|| self.batcher_loop(&registry, batch, opts.window, &stop));
            if let Some(ml) = &metrics_listener {
                let stop = &stop;
                scope.spawn(move || self.metrics_endpoint_loop(ml, stop));
            }
            if let (Some(interval), Some(path)) = (opts.watch_interval, self.reload_path()) {
                let handle = self.reload_handle();
                let path = path.to_path_buf();
                let stop = &stop;
                scope.spawn(move || {
                    handle.watch(&path, interval, stop, WatchEvent::log_to_stderr);
                });
            }

            let mut accepted = 0u64;
            let mut rejected = 0u64;
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Replies are short lines; coalescing them behind
                        // Nagle's algorithm only adds latency.
                        let _ = stream.set_nodelay(true);
                        if let Err(e) = self.admit(&registry, stream, &stop, scope) {
                            match e {
                                AdmitOutcome::AtCapacity => {
                                    rejected += 1;
                                    self.metrics().note_connection(false);
                                }
                                AdmitOutcome::Io(err) => {
                                    portopt_trace::warn!("serve", "accept error: {err}")
                                }
                            }
                        } else {
                            accepted += 1;
                            self.metrics().note_connection(true);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    // A failed client is that connection's problem, not the
                    // server's: log and keep accepting.
                    Err(e) => portopt_trace::warn!("serve", "accept error: {e}"),
                }
            }

            let mut stats = batcher.join().expect("batcher thread");
            stats.connections = accepted;
            stats.rejected_connections = rejected;
            // Refusals happen on the reader threads; the service-lifetime
            // counter is the one place they all land.
            stats.refused = self.metrics().refused_total();
            Ok(stats)
            // Scope exit joins the reader threads: they wake from their
            // read timeout, observe the stop flag and retire their
            // connections (closing the sockets).
        })
    }

    /// The `--metrics-port` endpoint: accept, write one plaintext metrics
    /// snapshot, close. No protocol, no framing — `nc host port` or a
    /// Prometheus scrape both just work.
    fn metrics_endpoint_loop(&self, listener: &TcpListener, stop: &AtomicBool) {
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((mut stream, _peer)) => {
                    let text = self.metrics().snapshot(self.pending()).to_text();
                    let _ = stream.write_all(text.as_bytes());
                    // Drop closes; a scraper reads to EOF.
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => portopt_trace::warn!("serve", "metrics endpoint accept error: {e}"),
            }
        }
    }

    /// Registers an accepted stream and spawns its reader thread, or
    /// refuses it with a one-line error when the registry is full.
    fn admit<'scope>(
        &'scope self,
        registry: &'scope ConnectionRegistry<TcpStream>,
        stream: TcpStream,
        stop: &'scope AtomicBool,
        scope: &'scope std::thread::Scope<'scope, '_>,
    ) -> Result<(), AdmitOutcome> {
        // Readers must observe the stop flag even when their client is
        // silent, so reads time out and retry. The accepted stream does
        // not inherit the listener's non-blocking mode on Linux, but be
        // explicit for portability.
        stream.set_nonblocking(false).map_err(AdmitOutcome::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(AdmitOutcome::Io)?;
        // Reply delivery runs on the one batcher thread: a client that
        // stops reading until its receive buffer fills must stall out and
        // be retired, not block every other connection's replies (and
        // shutdown) behind a blocking write_all. Timeouts are per socket,
        // so this covers the cloned writer half below.
        stream
            .set_write_timeout(Some(WRITE_STALL_TIMEOUT))
            .map_err(AdmitOutcome::Io)?;
        let writer = stream.try_clone().map_err(AdmitOutcome::Io)?;
        match registry.register(writer) {
            Some(conn) => {
                scope.spawn(move || self.reader_loop(registry, conn, stream, stop));
                Ok(())
            }
            None => {
                let mut s = stream;
                let _ = s.write_all(
                    format!(
                        "{{\"error\":\"server at capacity ({} connections); retry later\"}}\n",
                        registry.max_conns
                    )
                    .as_bytes(),
                );
                Err(AdmitOutcome::AtCapacity)
            }
        }
    }

    /// One connection's reader: splits the byte stream into lines,
    /// submits requests tagged with `conn`, answers admin commands
    /// out-of-band, and handles EOF — including an unterminated final
    /// line, which is still a request (the TCP mirror of
    /// `BufRead::lines` semantics in stdio mode).
    fn reader_loop(
        &self,
        registry: &ConnectionRegistry<TcpStream>,
        conn: ConnId,
        stream: TcpStream,
        stop: &AtomicBool,
    ) {
        use std::io::BufRead;
        let mut reader = std::io::BufReader::new(stream);
        let mut buf: Vec<u8> = Vec::new();
        loop {
            if stop.load(Ordering::Acquire) {
                registry.mark_eof(conn);
                return;
            }
            // Per-connection backpressure: at quota, stop draining the
            // socket until replies bring the outstanding count back down.
            // The client's unread requests pile up in kernel buffers and
            // eventually block its writes — TCP flow control does the
            // rest. A retired connection must fall through to the read
            // (which fails) rather than spin here.
            if registry.over_quota(conn) {
                if !registry.live(conn) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            match reader.read_until(b'\n', &mut buf) {
                // EOF. `buf` can still hold an unterminated final line
                // here: a read timeout (the Err arm below) returns the
                // bytes read so far in `buf`, and if the stream then ends,
                // this call appends nothing and reports 0 — so the
                // fragment must be handled now, not assumed already
                // processed.
                Ok(0) => {
                    let text = String::from_utf8_lossy(&buf);
                    let line = text.trim();
                    if !line.is_empty() {
                        self.handle_line(registry, conn, line, stop);
                    }
                    registry.mark_eof(conn);
                    return;
                }
                Ok(_) => {
                    let text = String::from_utf8_lossy(&buf);
                    let line = text.trim();
                    if !line.is_empty() && self.handle_line(registry, conn, line, stop) {
                        registry.mark_eof(conn);
                        return;
                    }
                    buf.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // Read timeout: the client is idle, not gone. Any
                    // partial line stays in `buf` and the next read
                    // continues appending to it.
                    continue;
                }
                Err(_) => {
                    // Connection broken: retire it. Its queued requests
                    // are discarded (pre-compute) at the next batch drain.
                    registry.remove(conn);
                    return;
                }
            }
        }
    }

    /// Classifies and dispatches one line from `conn`; returns `true` when
    /// the reader should stop (shutdown sentinel). Generic over the
    /// registry's writer so the full submit/refuse/deliver ledger is
    /// unit-testable with `Vec<u8>` sinks.
    pub(crate) fn handle_line<W: Write>(
        &self,
        registry: &ConnectionRegistry<W>,
        conn: ConnId,
        line: &str,
        stop: &AtomicBool,
    ) -> bool {
        use crate::service::LineAction;
        // Count the request before it becomes visible in the queue — the
        // batcher may deliver its reply immediately — and retract for
        // lines that turn out not to enqueue anything.
        registry.note_submitted(conn);
        match self.classify_and_submit(conn, line) {
            LineAction::Queued => false,
            LineAction::Shutdown => {
                registry.note_retracted(conn);
                stop.store(true, Ordering::Release);
                true
            }
            LineAction::Reload(outcome) => {
                registry.note_retracted(conn);
                let mut reply = admin_reload_reply(&outcome);
                reply.push('\n');
                registry.deliver(conn, &reply, 0);
                false
            }
            LineAction::Stats(reply) => {
                registry.note_retracted(conn);
                registry.deliver(conn, &format!("{reply}\n"), 0);
                false
            }
            LineAction::Refused { reply } => {
                // Never queued: the outstanding count must not hold the
                // connection open (or eat its quota) waiting for a batch
                // reply that will never come. The refusal itself is
                // delivered out-of-band, accounting for zero replies.
                registry.note_retracted(conn);
                registry.deliver(conn, &format!("{reply}\n"), 0);
                false
            }
        }
    }

    /// The batching window: sleep until work arrives, gather across all
    /// connections for up to `window` (or until `batch` are pending),
    /// drain as one executor batch, and route replies. After the stop
    /// flag rises, one final drain answers everything submitted before
    /// the shutdown sentinel.
    fn batcher_loop<W: Write>(
        &self,
        registry: &ConnectionRegistry<W>,
        batch: usize,
        window: Duration,
        stop: &AtomicBool,
    ) -> ServiceStats {
        let mut stats = ServiceStats::default();
        while !stop.load(Ordering::Acquire) {
            if !self.wait_pending(Duration::from_millis(20)) {
                continue;
            }
            let gather_started = Instant::now();
            while self.pending() < batch
                && gather_started.elapsed() < window
                && !stop.load(Ordering::Acquire)
            {
                std::thread::sleep(Duration::from_micros(500));
            }
            self.drain_and_route(registry, &mut stats);
        }
        // Close before the final drain: everything already pending is
        // still answered below, while a racing reader's next submit gets
        // a typed "shutting down" refusal instead of silently queueing
        // behind a drain that will never come.
        self.close_queue();
        self.drain_and_route(registry, &mut stats);
        stats
    }

    /// One batch: discard dead connections' requests, drain the rest
    /// through the executor, and deliver each connection's replies as a
    /// single coalesced write (in submission order).
    pub(crate) fn drain_and_route<W: Write>(
        &self,
        registry: &ConnectionRegistry<W>,
        stats: &mut ServiceStats,
    ) {
        let dropped = self.discard_dead(|conn| !registry.live(conn));
        if dropped > 0 {
            stats.discarded += dropped as u64;
            portopt_trace::warn!(
                "serve",
                "dropped {dropped} unanswered requests from dead connections"
            );
        }
        let replies = self.drain_routed(stats);
        if replies.is_empty() {
            return;
        }
        // Coalesce each connection's replies into one write. Order within
        // a connection is submission order because `replies` is in ticket
        // order.
        let mut per_conn: Vec<(ConnId, String, u64)> = Vec::new();
        for (conn, response) in &replies {
            let line = match serde_json::to_string(response) {
                Ok(l) => l,
                Err(e) => format!(
                    "{{\"id\":{},\"error\":\"reply serialization failed: {e}\"}}",
                    response.id
                ),
            };
            match per_conn.iter_mut().find(|(c, _, _)| c == conn) {
                Some((_, payload, n)) => {
                    payload.push_str(&line);
                    payload.push('\n');
                    *n += 1;
                }
                None => per_conn.push((*conn, format!("{line}\n"), 1)),
            }
        }
        for (conn, payload, n) in per_conn {
            if !registry.deliver(conn, &payload, n) {
                stats.discarded += n;
                // These replies already left the in-flight gauge when they
                // were answered; only the discard counter moves.
                self.metrics().note_undeliverable(n);
                portopt_trace::warn!(
                    "serve",
                    "dropped {n} computed replies: connection {conn} is gone"
                );
            }
        }
    }
}

/// Why an accepted socket was not admitted.
enum AdmitOutcome {
    /// The registry is at `max_conns`; the client got a capacity error.
    AtCapacity,
    /// Socket setup (clone / timeout) failed.
    Io(std::io::Error),
}
