//! Versioned on-disk model artifacts.
//!
//! A [`Snapshot`] is everything the serving path needs to answer
//! predictions without touching the training pipeline: the trained
//! [`PortableCompiler`] plus enough metadata to refuse, loudly, any
//! artifact the running binary cannot honour — a different serialization
//! format, a different feature dimensionality, or a different optimisation
//! pass space (a model trained over 39 dimensions is meaningless if the
//! compiler has since grown a 40th).
//!
//! The format is the workspace's JSON (via the serde shims), one object:
//! `{"meta": {...}, "compiler": {...}}`. The `meta` header is parsed and
//! validated *before* the model payload, so a mismatched snapshot fails
//! with a precise reason instead of a deep deserialization error.
//!
//! Train once, serialize, reload, predict — the whole deployment cycle:
//!
//! ```
//! use portopt_core::{generate, GenOptions, SweepScale, TrainOptions};
//! use portopt_ir::{FuncBuilder, ModuleBuilder};
//! use portopt_serve::Snapshot;
//!
//! // A toy one-program dataset (deployments sweep the full suite).
//! let mut mb = ModuleBuilder::new("toy");
//! let mut b = FuncBuilder::new("main", 0);
//! let acc = b.iconst(1);
//! b.counted_loop(0, 24, 1, |b, i| {
//!     let t = b.add(acc, i);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let opts = GenOptions {
//!     scale: SweepScale { n_uarch: 2, n_opts: 3 },
//!     threads: 1,
//!     ..GenOptions::default()
//! };
//! let ds = generate(&[("toy".to_string(), mb.finish())], &opts);
//!
//! let snap = Snapshot::train(&ds, &TrainOptions::default());
//! let bytes = snap.to_bytes().unwrap();          // what `save` writes
//! let back = Snapshot::from_bytes(&bytes).unwrap(); // header-validated
//! assert_eq!(back.meta, snap.meta);
//! let prediction = back.compiler.predict(&ds.features[0][0]);
//! assert_eq!(prediction, snap.compiler.predict(&ds.features[0][0]));
//! ```

use portopt_core::{Dataset, PortableCompiler, TrainOptions};
use portopt_passes::OptSpace;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// First bytes of the `magic` field of every portopt snapshot.
pub const SNAPSHOT_MAGIC: &str = "portopt-snapshot";

/// Current snapshot format version. Bump on any change to the serialized
/// layout of [`Snapshot`] or the model types it embeds.
pub const FORMAT_VERSION: u32 = 1;

/// The current pass space as `(dimension name, cardinality)` pairs — the
/// fingerprint stored in a snapshot and checked at load time.
pub fn current_pass_space() -> Vec<(String, usize)> {
    OptSpace::dims()
        .iter()
        .map(|d| (d.name.to_string(), d.cardinality))
        .collect()
}

/// Self-describing header of a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Always [`SNAPSHOT_MAGIC`]; anything else is not a snapshot.
    pub magic: String,
    /// Serialized-layout version ([`FORMAT_VERSION`] at write time).
    pub format_version: u32,
    /// Feature-vector dimensionality the model was trained on.
    pub feature_dim: usize,
    /// The optimisation space at training time, as name/cardinality pairs.
    pub pass_space: Vec<(String, usize)>,
    /// Programs in the training dataset.
    pub programs: usize,
    /// Microarchitectures in the training dataset.
    pub uarchs: usize,
    /// Optimisation settings sampled per program.
    pub settings: usize,
    /// Neighbour count the model was trained with.
    pub k: usize,
    /// Softmax inverse temperature the model was trained with.
    pub beta: f64,
}

/// A trained [`PortableCompiler`] plus its validation metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Self-describing, load-time-validated header.
    pub meta: SnapshotMeta,
    /// The trained model.
    pub compiler: PortableCompiler,
}

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not parseable as a snapshot at all.
    Corrupt(String),
    /// The file parses but its `magic` field is wrong — it is some other
    /// JSON document.
    NotASnapshot {
        /// The magic actually found.
        found: String,
    },
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version in the file.
        found: u32,
        /// Version this binary supports.
        supported: u32,
    },
    /// The snapshot's model was trained over a different optimisation
    /// space than this binary compiles with.
    PassSpaceMismatch {
        /// Human-readable description of the first difference.
        detail: String,
    },
    /// The snapshot's model expects a different feature dimensionality.
    FeatureDimMismatch {
        /// Dimensionality in the file.
        found: usize,
        /// Dimensionality this binary produces.
        expected: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::NotASnapshot { found } => {
                write!(f, "not a portopt snapshot (magic `{found}`)")
            }
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this binary reads version {supported}); re-run `snapshot` to retrain"
            ),
            SnapshotError::PassSpaceMismatch { detail } => write!(
                f,
                "snapshot was trained over a different optimisation space: {detail}; \
                 re-run `snapshot` to retrain"
            ),
            SnapshotError::FeatureDimMismatch { found, expected } => write!(
                f,
                "snapshot expects {found}-dimensional features, this binary \
                 produces {expected}; re-run `snapshot` to retrain"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Describes the first difference between two pass spaces, or `None` if
/// they are identical.
fn pass_space_diff(found: &[(String, usize)], current: &[(String, usize)]) -> Option<String> {
    if found.len() != current.len() {
        return Some(format!(
            "{} dimensions in snapshot vs {} in this binary",
            found.len(),
            current.len()
        ));
    }
    for ((fname, fcard), (cname, ccard)) in found.iter().zip(current) {
        if fname != cname {
            return Some(format!("dimension `{fname}` vs `{cname}`"));
        }
        if fcard != ccard {
            return Some(format!(
                "dimension `{fname}` has {fcard} choices in snapshot vs {ccard}"
            ));
        }
    }
    None
}

impl Snapshot {
    /// Trains a [`PortableCompiler`] on the full dataset (no leave-one-out
    /// holdouts — a deployment model uses everything) and wraps it with
    /// the metadata a loader will validate.
    pub fn train(ds: &Dataset, opts: &TrainOptions) -> Self {
        match Self::try_train(ds, opts) {
            Ok(snap) => snap,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`train`](Self::train) with malformed datasets reported as a typed
    /// error instead of a panic — what the `snapshot` bin calls so an
    /// empty dataset is an exit-code diagnostic, not a crash.
    pub fn try_train(ds: &Dataset, opts: &TrainOptions) -> Result<Self, portopt_ml::TrainError> {
        let compiler = PortableCompiler::try_train(ds, None, None, opts)?;
        Ok(Snapshot {
            meta: SnapshotMeta {
                magic: SNAPSHOT_MAGIC.to_string(),
                format_version: FORMAT_VERSION,
                feature_dim: compiler.model().feature_dim(),
                pass_space: current_pass_space(),
                programs: ds.n_programs(),
                uarchs: ds.n_uarchs(),
                settings: ds.configs.len(),
                k: opts.k,
                beta: opts.beta,
            },
            compiler,
        })
    }

    /// Serializes the snapshot to bytes (the exact bytes [`Snapshot::save`]
    /// writes).
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        serde_json::to_vec(self).map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Writes the snapshot to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes()?)?;
        Ok(())
    }

    /// Parses and validates a snapshot from bytes. The header is checked
    /// (magic, format version, pass space, feature dimensionality) before
    /// the model payload is deserialized, so every rejection carries the
    /// specific mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        // One parse to the document tree; the header is validated off the
        // tree before the (much larger) model payload is decoded, so a
        // mismatched file is rejected with its specific reason and a
        // multi-megabyte artifact is not lexed twice.
        let doc: serde::Value =
            serde_json::from_slice(bytes).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let meta = doc
            .field("meta")
            .and_then(SnapshotMeta::from_value)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        if meta.magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::NotASnapshot { found: meta.magic });
        }
        if meta.format_version != FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: meta.format_version,
                supported: FORMAT_VERSION,
            });
        }
        if let Some(detail) = pass_space_diff(&meta.pass_space, &current_pass_space()) {
            return Err(SnapshotError::PassSpaceMismatch { detail });
        }
        let expected = portopt_uarch::N_FEATURES;
        if meta.feature_dim != expected {
            return Err(SnapshotError::FeatureDimMismatch {
                found: meta.feature_dim,
                expected,
            });
        }
        let snap = Snapshot::from_value(&doc).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        // The header said the right thing; make sure the payload agrees
        // (a hand-edited file could pair a valid header with a stale model).
        let model_dim = snap.compiler.model().feature_dim();
        if model_dim != expected {
            return Err(SnapshotError::FeatureDimMismatch {
                found: model_dim,
                expected,
            });
        }
        Ok(snap)
    }

    /// Loads and validates a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}
