//! Versioned on-disk model artifacts.
//!
//! A [`Snapshot`] is everything the serving path needs to answer
//! predictions without touching the training pipeline: the trained
//! [`PortableCompiler`] plus enough metadata to refuse, loudly, any
//! artifact the running binary cannot honour — a different serialization
//! format, a different feature dimensionality, or a different optimisation
//! pass space (a model trained over 39 dimensions is meaningless if the
//! compiler has since grown a 40th).
//!
//! The format is the workspace's JSON (via the serde shims), one object:
//! `{"meta": {...}, "compiler": {...}}`. The `meta` header is parsed and
//! validated *before* the model payload, so a mismatched snapshot fails
//! with a precise reason instead of a deep deserialization error.
//!
//! Train once, serialize, reload, predict — the whole deployment cycle:
//!
//! ```
//! use portopt_core::{generate, GenOptions, SweepScale, TrainOptions};
//! use portopt_ir::{FuncBuilder, ModuleBuilder};
//! use portopt_serve::Snapshot;
//!
//! // A toy one-program dataset (deployments sweep the full suite).
//! let mut mb = ModuleBuilder::new("toy");
//! let mut b = FuncBuilder::new("main", 0);
//! let acc = b.iconst(1);
//! b.counted_loop(0, 24, 1, |b, i| {
//!     let t = b.add(acc, i);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let opts = GenOptions {
//!     scale: SweepScale { n_uarch: 2, n_opts: 3 },
//!     threads: 1,
//!     ..GenOptions::default()
//! };
//! let ds = generate(&[("toy".to_string(), mb.finish())], &opts);
//!
//! let snap = Snapshot::train(&ds, &TrainOptions::default());
//! let bytes = snap.to_bytes().unwrap();          // what `save` writes
//! let back = Snapshot::from_bytes(&bytes).unwrap(); // header-validated
//! assert_eq!(back.meta, snap.meta);
//! let prediction = back.compiler.predict(&ds.features[0][0]);
//! assert_eq!(prediction, snap.compiler.predict(&ds.features[0][0]));
//! ```

use portopt_core::{Dataset, ModelKind, PortableCompiler, TrainOptions};
use portopt_passes::OptSpace;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// First bytes of the `magic` field of every portopt snapshot.
pub const SNAPSHOT_MAGIC: &str = "portopt-snapshot";

/// Current snapshot format version. Bump on any change to the serialized
/// layout of [`Snapshot`] or the model types it embeds.
pub const FORMAT_VERSION: u32 = 1;

/// The current pass space as `(dimension name, cardinality)` pairs — the
/// fingerprint stored in a snapshot and checked at load time.
pub fn current_pass_space() -> Vec<(String, usize)> {
    OptSpace::dims()
        .iter()
        .map(|d| (d.name.to_string(), d.cardinality))
        .collect()
}

/// Self-describing header of a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Always [`SNAPSHOT_MAGIC`]; anything else is not a snapshot.
    pub magic: String,
    /// Serialized-layout version ([`FORMAT_VERSION`] at write time).
    pub format_version: u32,
    /// Feature-vector dimensionality the model was trained on.
    pub feature_dim: usize,
    /// The optimisation space at training time, as name/cardinality pairs.
    pub pass_space: Vec<(String, usize)>,
    /// Programs in the training dataset.
    pub programs: usize,
    /// Microarchitectures in the training dataset.
    pub uarchs: usize,
    /// Optimisation settings sampled per program.
    pub settings: usize,
    /// Neighbour count the model was trained with.
    pub k: usize,
    /// Softmax inverse temperature the model was trained with.
    pub beta: f64,
    /// Which model from the zoo the payload holds. Validated against the
    /// decoded payload, and against the operator's expectation in
    /// [`Snapshot::load_expecting`], *before* the payload is decoded.
    pub model_kind: ModelKind,
}

// Hand-written serde: the `model_kind` tag is appended after `beta` for
// the non-kNN kinds and omitted entirely for kNN, so snapshots written
// before the model zoo existed (no tag) load as kNN and freshly-written
// kNN snapshots stay byte-identical to them.
impl Serialize for SnapshotMeta {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("magic".to_string(), self.magic.to_value()),
            ("format_version".to_string(), self.format_version.to_value()),
            ("feature_dim".to_string(), self.feature_dim.to_value()),
            ("pass_space".to_string(), self.pass_space.to_value()),
            ("programs".to_string(), self.programs.to_value()),
            ("uarchs".to_string(), self.uarchs.to_value()),
            ("settings".to_string(), self.settings.to_value()),
            ("k".to_string(), self.k.to_value()),
            ("beta".to_string(), self.beta.to_value()),
        ];
        if self.model_kind != ModelKind::Knn {
            fields.push(("model_kind".to_string(), self.model_kind.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for SnapshotMeta {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(SnapshotMeta {
            magic: String::from_value(v.field("magic")?)?,
            format_version: u32::from_value(v.field("format_version")?)?,
            feature_dim: usize::from_value(v.field("feature_dim")?)?,
            pass_space: Vec::from_value(v.field("pass_space")?)?,
            programs: usize::from_value(v.field("programs")?)?,
            uarchs: usize::from_value(v.field("uarchs")?)?,
            settings: usize::from_value(v.field("settings")?)?,
            k: usize::from_value(v.field("k")?)?,
            beta: f64::from_value(v.field("beta")?)?,
            model_kind: match v.field("model_kind") {
                Ok(tag) => ModelKind::from_value(tag)?,
                Err(_) => ModelKind::Knn,
            },
        })
    }
}

/// A trained [`PortableCompiler`] plus its validation metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Self-describing, load-time-validated header.
    pub meta: SnapshotMeta,
    /// The trained model.
    pub compiler: PortableCompiler,
}

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not parseable as a snapshot at all.
    Corrupt(String),
    /// The file parses but its `magic` field is wrong — it is some other
    /// JSON document.
    NotASnapshot {
        /// The magic actually found.
        found: String,
    },
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version in the file.
        found: u32,
        /// Version this binary supports.
        supported: u32,
    },
    /// The snapshot's model was trained over a different optimisation
    /// space than this binary compiles with.
    PassSpaceMismatch {
        /// Human-readable description of the first difference.
        detail: String,
    },
    /// The snapshot's model expects a different feature dimensionality.
    FeatureDimMismatch {
        /// Dimensionality in the file.
        found: usize,
        /// Dimensionality this binary produces.
        expected: usize,
    },
    /// The snapshot declares a model kind this binary has never heard of
    /// (a newer build's zoo, or a corrupted tag).
    UnknownModelKind {
        /// The tag actually found.
        found: String,
    },
    /// The snapshot holds a model of a different kind than required —
    /// either the operator's `--expect-model` demand, or a payload that
    /// disagrees with its own header.
    ModelKindMismatch {
        /// Kind in the file.
        found: ModelKind,
        /// Kind that was required.
        expected: ModelKind,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::NotASnapshot { found } => {
                write!(f, "not a portopt snapshot (magic `{found}`)")
            }
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this binary reads version {supported}); re-run `snapshot` to retrain"
            ),
            SnapshotError::PassSpaceMismatch { detail } => write!(
                f,
                "snapshot was trained over a different optimisation space: {detail}; \
                 re-run `snapshot` to retrain"
            ),
            SnapshotError::FeatureDimMismatch { found, expected } => write!(
                f,
                "snapshot expects {found}-dimensional features, this binary \
                 produces {expected}; re-run `snapshot` to retrain"
            ),
            SnapshotError::UnknownModelKind { found } => write!(
                f,
                "snapshot declares unknown model kind `{found}` (this binary \
                 knows: {}); upgrade the binary or retrain",
                ModelKind::ALL.map(|k| k.as_str()).join("/")
            ),
            SnapshotError::ModelKindMismatch { found, expected } => write!(
                f,
                "snapshot holds a `{found}` model where `{expected}` was expected"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Describes the first difference between two pass spaces, or `None` if
/// they are identical.
fn pass_space_diff(found: &[(String, usize)], current: &[(String, usize)]) -> Option<String> {
    if found.len() != current.len() {
        return Some(format!(
            "{} dimensions in snapshot vs {} in this binary",
            found.len(),
            current.len()
        ));
    }
    for ((fname, fcard), (cname, ccard)) in found.iter().zip(current) {
        if fname != cname {
            return Some(format!("dimension `{fname}` vs `{cname}`"));
        }
        if fcard != ccard {
            return Some(format!(
                "dimension `{fname}` has {fcard} choices in snapshot vs {ccard}"
            ));
        }
    }
    None
}

impl Snapshot {
    /// Trains a [`PortableCompiler`] on the full dataset (no leave-one-out
    /// holdouts — a deployment model uses everything) and wraps it with
    /// the metadata a loader will validate.
    pub fn train(ds: &Dataset, opts: &TrainOptions) -> Self {
        match Self::try_train(ds, opts) {
            Ok(snap) => snap,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`train`](Self::train) with malformed datasets reported as a typed
    /// error instead of a panic — what the `snapshot` bin calls so an
    /// empty dataset is an exit-code diagnostic, not a crash. Trains the
    /// paper's kNN model; [`try_train_kind`](Self::try_train_kind) picks
    /// another kind from the zoo.
    pub fn try_train(ds: &Dataset, opts: &TrainOptions) -> Result<Self, portopt_ml::TrainError> {
        Self::try_train_kind(ds, ModelKind::Knn, opts)
    }

    /// [`try_train`](Self::try_train) for any model kind in the zoo; the
    /// kind is recorded in the header so loaders can refuse a mismatched
    /// artifact before decoding the payload.
    pub fn try_train_kind(
        ds: &Dataset,
        kind: ModelKind,
        opts: &TrainOptions,
    ) -> Result<Self, portopt_ml::TrainError> {
        let compiler = PortableCompiler::try_train_kind(ds, None, None, kind, opts)?;
        Ok(Snapshot {
            meta: SnapshotMeta {
                magic: SNAPSHOT_MAGIC.to_string(),
                format_version: FORMAT_VERSION,
                feature_dim: compiler.model().feature_dim(),
                pass_space: current_pass_space(),
                programs: ds.n_programs(),
                uarchs: ds.n_uarchs(),
                settings: ds.configs.len(),
                k: opts.k,
                beta: opts.beta,
                model_kind: kind,
            },
            compiler,
        })
    }

    /// Serializes the snapshot to bytes (the exact bytes [`Snapshot::save`]
    /// writes).
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        serde_json::to_vec(self).map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Writes the snapshot to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes()?)?;
        Ok(())
    }

    /// Parses and validates a snapshot from bytes. The header is checked
    /// (magic, format version, pass space, feature dimensionality, model
    /// kind) before the model payload is deserialized, so every rejection
    /// carries the specific mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::from_bytes_checked(bytes, None)
    }

    /// [`from_bytes`](Self::from_bytes), additionally requiring the header
    /// to declare model kind `expected`. The check runs on the header tag
    /// alone — a wrong-kind snapshot is refused with
    /// [`SnapshotError::ModelKindMismatch`] before its payload is touched.
    pub fn from_bytes_expecting(bytes: &[u8], expected: ModelKind) -> Result<Self, SnapshotError> {
        Self::from_bytes_checked(bytes, Some(expected))
    }

    fn from_bytes_checked(
        bytes: &[u8],
        expected_kind: Option<ModelKind>,
    ) -> Result<Self, SnapshotError> {
        // One parse to the document tree; the header is validated off the
        // tree before the (much larger) model payload is decoded, so a
        // mismatched file is rejected with its specific reason and a
        // multi-megabyte artifact is not lexed twice.
        let doc: serde::Value =
            serde_json::from_slice(bytes).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let raw_meta = doc
            .field("meta")
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        // Probe the kind tag before the header decode proper: a tag from a
        // newer zoo must surface as `UnknownModelKind`, not `Corrupt`.
        if let Ok(tag) = raw_meta.field("model_kind") {
            let found = match tag {
                Value::Str(s) => s.clone(),
                other => format!("{other:?}"),
            };
            if ModelKind::parse(&found).is_none() {
                return Err(SnapshotError::UnknownModelKind { found });
            }
        }
        let meta = SnapshotMeta::from_value(raw_meta)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        if meta.magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::NotASnapshot { found: meta.magic });
        }
        if meta.format_version != FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: meta.format_version,
                supported: FORMAT_VERSION,
            });
        }
        if let Some(expected) = expected_kind {
            if meta.model_kind != expected {
                return Err(SnapshotError::ModelKindMismatch {
                    found: meta.model_kind,
                    expected,
                });
            }
        }
        if let Some(detail) = pass_space_diff(&meta.pass_space, &current_pass_space()) {
            return Err(SnapshotError::PassSpaceMismatch { detail });
        }
        let expected = portopt_uarch::N_FEATURES;
        if meta.feature_dim != expected {
            return Err(SnapshotError::FeatureDimMismatch {
                found: meta.feature_dim,
                expected,
            });
        }
        let snap = Snapshot::from_value(&doc).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        // The header said the right thing; make sure the payload agrees
        // (a hand-edited file could pair a valid header with a stale model).
        let payload_kind = snap.compiler.model().kind();
        if payload_kind != snap.meta.model_kind {
            return Err(SnapshotError::ModelKindMismatch {
                found: payload_kind,
                expected: snap.meta.model_kind,
            });
        }
        let model_dim = snap.compiler.model().feature_dim();
        if model_dim != expected {
            return Err(SnapshotError::FeatureDimMismatch {
                found: model_dim,
                expected,
            });
        }
        Ok(snap)
    }

    /// Loads and validates a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// [`load`](Self::load), refusing any snapshot whose header does not
    /// declare model kind `expected` (the `serve --expect-model` guard).
    pub fn load_expecting(
        path: impl AsRef<Path>,
        expected: ModelKind,
    ) -> Result<Self, SnapshotError> {
        Self::from_bytes_expecting(&std::fs::read(path)?, expected)
    }
}
