//! # portopt-serve
//!
//! The deployment half the paper promises (§3.4, Figure 2): train once
//! off-line, then answer "which optimisation setting for *this* program on
//! *this* microarchitecture?" in milliseconds, for traffic, without ever
//! touching the training sweep again.
//!
//! Two pieces:
//!
//! * [`Snapshot`] — a versioned on-disk artifact holding a trained
//!   [`portopt_core::PortableCompiler`] plus the metadata needed to refuse
//!   incompatible files loudly (format version, feature dimensionality,
//!   the exact optimisation pass space).
//! * [`PredictionService`] — a batched JSON-lines request/response server
//!   over the [`portopt_exec`] executor: stdin/stdout for piping and
//!   tests, `std::net::TcpListener` for sockets. Requests carry either a
//!   precomputed feature vector or a raw `portopt-ir` module (the service
//!   then runs the one `-O3` profiling pass itself).
//!
//! The `snapshot` and `serve` binaries in `portopt-bench` wrap these:
//!
//! ```text
//! cargo run --release -p portopt-bench --bin snapshot -- --scale smoke --out model.snap
//! echo '{"module": {...}, "uarch": "xscale"}' \
//!   | cargo run --release -p portopt-bench --bin serve -- --snapshot model.snap --stdio
//! ```

#![warn(missing_docs)]

pub mod service;
pub mod snapshot;

pub use service::{
    ApplyStats, PredictionService, RequestInput, ServeRequest, ServeResponse, ServiceStats,
    DEFAULT_BATCH,
};
pub use snapshot::{
    current_pass_space, Snapshot, SnapshotError, SnapshotMeta, FORMAT_VERSION, SNAPSHOT_MAGIC,
};

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_core::{generate, Dataset, GenOptions, SweepScale, TrainOptions};
    use portopt_ir::{FuncBuilder, Module, ModuleBuilder};
    use portopt_passes::OptSpace;
    use portopt_uarch::MicroArch;
    use std::io::Cursor;

    fn program(name: &str, mem_heavy: bool) -> (String, Module) {
        let mut mb = ModuleBuilder::new(name);
        let (_, base) = mb.global("buf", 1024);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 300, 1, |b, i| {
            if mem_heavy {
                let off0 = b.mul(i, 13);
                let off = b.and(off0, 1023);
                let sh = b.shl(off, 2);
                let a = b.add(p, sh);
                let v = b.load(a, 0);
                let w = b.add(v, i);
                b.store(w, a, 0);
                let t = b.add(acc, w);
                b.assign(acc, t);
            } else {
                let sq = b.mul(i, i);
                let x = b.xor(acc, sq);
                b.assign(acc, x);
            }
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        (name.to_string(), mb.finish())
    }

    fn tiny_dataset() -> Dataset {
        generate(
            &[
                program("mem1", true),
                program("alu1", false),
                program("mem2", true),
            ],
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 4,
                    n_opts: 16,
                },
                seed: 7,
                extended_space: false,
                threads: 2,
            },
        )
    }

    fn tiny_snapshot() -> Snapshot {
        Snapshot::train(&tiny_dataset(), &TrainOptions::default())
    }

    #[test]
    fn snapshot_roundtrips_byte_identically() {
        let snap = tiny_snapshot();
        let dir = std::env::temp_dir().join("portopt-serve-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.compiler.model(), snap.compiler.model());
        assert_eq!(back.to_bytes().unwrap(), snap.to_bytes().unwrap());
        let ds = tiny_dataset();
        let x = &ds.features[0][0];
        assert_eq!(back.compiler.predict(x), snap.compiler.predict(x));
    }

    #[test]
    fn snapshot_meta_describes_the_model() {
        let snap = tiny_snapshot();
        assert_eq!(snap.meta.magic, SNAPSHOT_MAGIC);
        assert_eq!(snap.meta.format_version, FORMAT_VERSION);
        assert_eq!(snap.meta.feature_dim, portopt_uarch::N_FEATURES);
        assert_eq!(snap.meta.pass_space.len(), OptSpace::n_dims());
        assert_eq!(snap.meta.programs, 3);
        assert_eq!(snap.meta.uarchs, 4);
        assert_eq!(snap.meta.settings, 16);
    }

    #[test]
    fn corrupted_and_mismatched_snapshots_are_rejected() {
        let snap = tiny_snapshot();
        // Truncated file: corrupt.
        let bytes = snap.to_bytes().unwrap();
        let err = Snapshot::from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
        // Not JSON at all.
        assert!(matches!(
            Snapshot::from_bytes(b"\x00\x01binary junk").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        // Some other JSON document.
        assert!(matches!(
            Snapshot::from_bytes(b"{\"hello\": 1}").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        // Wrong magic.
        let mut other = snap.clone();
        other.meta.magic = "something-else".into();
        match Snapshot::from_bytes(&other.to_bytes().unwrap()).unwrap_err() {
            SnapshotError::NotASnapshot { found } => assert_eq!(found, "something-else"),
            e => panic!("expected NotASnapshot, got {e}"),
        }
        // Future format version.
        let mut newer = snap.clone();
        newer.meta.format_version = FORMAT_VERSION + 1;
        match Snapshot::from_bytes(&newer.to_bytes().unwrap()).unwrap_err() {
            SnapshotError::VersionMismatch { found, supported } => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            e => panic!("expected VersionMismatch, got {e}"),
        }
        // A pass space with one dimension renamed.
        let mut wrong_space = snap.clone();
        wrong_space.meta.pass_space[0].0 = "fsome_new_pass".into();
        let err = Snapshot::from_bytes(&wrong_space.to_bytes().unwrap()).unwrap_err();
        match &err {
            SnapshotError::PassSpaceMismatch { detail } => {
                assert!(detail.contains("fsome_new_pass"), "{detail}")
            }
            e => panic!("expected PassSpaceMismatch, got {e}"),
        }
        // A pass space with a different shape.
        let mut short_space = snap.clone();
        short_space.meta.pass_space.pop();
        assert!(matches!(
            Snapshot::from_bytes(&short_space.to_bytes().unwrap()).unwrap_err(),
            SnapshotError::PassSpaceMismatch { .. }
        ));
        // Wrong feature dimensionality.
        let mut wrong_dim = snap.clone();
        wrong_dim.meta.feature_dim = 7;
        match Snapshot::from_bytes(&wrong_dim.to_bytes().unwrap()).unwrap_err() {
            SnapshotError::FeatureDimMismatch { found, expected } => {
                assert_eq!(found, 7);
                assert_eq!(expected, portopt_uarch::N_FEATURES);
            }
            e => panic!("expected FeatureDimMismatch, got {e}"),
        }
        // Missing file.
        assert!(matches!(
            Snapshot::load("/nonexistent/portopt.snap").unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn service_answers_feature_requests_in_order() {
        let ds = tiny_dataset();
        let snap = Snapshot::train(&ds, &TrainOptions::default());
        let service = PredictionService::new(snap, 2);
        let mut input = String::new();
        for (i, u) in [(0usize, 0usize), (1, 1), (2, 2), (0, 3)] {
            let req = ServeRequest {
                id: Some(100 + input.lines().count() as u64),
                input: RequestInput::Features(ds.features[i][u].values.clone()),
                uarch: ds.uarchs[u],
                apply: false,
            };
            input.push_str(&serde_json::to_string(&req).unwrap());
            input.push('\n');
        }
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        let shutdown = service
            .run_lines(Cursor::new(input), &mut out, 2, &mut stats)
            .unwrap();
        assert!(!shutdown, "EOF, not shutdown");
        let replies: Vec<ServeResponse> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 4);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.id, 100 + i as u64, "in-order echo of client ids");
            assert!(r.error.is_none(), "{:?}", r.error);
            assert_eq!(r.choices.len(), OptSpace::n_dims());
            let cfg = r.config.expect("config present");
            assert_eq!(cfg.to_choices(), r.choices);
            assert!(r.latency_ms >= 0.0);
        }
        // The drain really batched: 4 requests at batch=2 → 2 batches.
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.max_batch, 2);
        assert!(stats.predictions_per_sec() > 0.0);
    }

    #[test]
    fn service_handles_module_requests_and_applies() {
        let snap = tiny_snapshot();
        let service = PredictionService::new(snap, 2);
        let (_, module) = program("fresh", true);
        let req = ServeRequest {
            id: None,
            input: RequestInput::Module(Box::new(module)),
            uarch: MicroArch::xscale(),
            apply: true,
        };
        let line = serde_json::to_string(&req).unwrap();
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        service
            .run_lines(Cursor::new(line), &mut out, 8, &mut stats)
            .unwrap();
        let reply: ServeResponse =
            serde_json::from_str(String::from_utf8(out).unwrap().lines().next().unwrap()).unwrap();
        assert!(reply.error.is_none(), "{:?}", reply.error);
        assert!(reply.config.is_some());
        let apply = reply.stats.expect("apply stats");
        assert!(apply.o3_cycles > 0.0);
        assert!(apply.predicted_cycles > 0.0);
        assert!(
            apply.speedup > 0.3,
            "predicted config catastrophic: {apply:?}"
        );
    }

    #[test]
    fn bad_requests_get_error_replies_not_disconnects() {
        let snap = tiny_snapshot();
        let n_features = snap.meta.feature_dim;
        let service = PredictionService::new(snap, 1);
        let good = ServeRequest {
            id: Some(9),
            input: RequestInput::Features(vec![0.5; n_features]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        let input = format!(
            "not json at all\n\
             {{\"id\": 77, \"features\": [1.0, 2.0], \"uarch\": \"xscale\"}}\n\
             {{\"features\": [1.0], \"uarch\": \"warp-core\"}}\n\
             {{\"uarch\": \"xscale\"}}\n\
             {}\n",
            serde_json::to_string(&good).unwrap()
        );
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        service
            .run_lines(Cursor::new(input), &mut out, 64, &mut stats)
            .unwrap();
        let replies: Vec<ServeResponse> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 5);
        assert!(replies[0].error.as_deref().unwrap().contains("bad request"));
        assert_eq!(replies[0].id, 0, "unparseable line falls back to ticket");
        assert!(replies[1]
            .error
            .as_deref()
            .unwrap()
            .contains("model expects"));
        assert_eq!(replies[1].id, 77, "error replies echo the client id");
        assert!(replies[2].error.as_deref().unwrap().contains("warp-core"));
        assert!(replies[3].error.as_deref().unwrap().contains("features"));
        assert!(replies[4].error.is_none());
        assert_eq!(replies[4].id, 9);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.errors, 4);
    }

    #[test]
    fn shutdown_request_flushes_and_stops() {
        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let service = PredictionService::new(snap, 1);
        let req = ServeRequest {
            id: Some(1),
            input: RequestInput::Features(vec![1.0; n]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        let input = format!(
            "{}\n{{\"shutdown\": true}}\n{}\n",
            serde_json::to_string(&req).unwrap(),
            serde_json::to_string(&req).unwrap(),
        );
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        let shutdown = service
            .run_lines(Cursor::new(input), &mut out, 1000, &mut stats)
            .unwrap();
        assert!(shutdown);
        // The pending request before the sentinel was answered; the one
        // after it was never read.
        assert_eq!(stats.requests, 1);
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
        assert!(!stats.report().is_empty());
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(snap, 2);
            service.run_tcp(listener, 4).unwrap()
        });

        // First connection: two requests closed by EOF — the second
        // deliberately without a trailing newline, which must still be
        // answered (stdio's BufRead::lines semantics).
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = ServeRequest {
                id: Some(42),
                input: RequestInput::Features(vec![0.25; n]),
                uarch: MicroArch::xscale(),
                apply: false,
            };
            let line = serde_json::to_string(&req).unwrap();
            stream
                .write_all(format!("{line}\n{line}").as_bytes())
                .unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
            assert_eq!(r.id, 42);
            assert!(r.error.is_none());
        }
        // Second connection: shutdown sentinel stops the listener.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"shutdown\": true}\n").unwrap();
        }
        let stats = server.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn tcp_idle_client_is_flushed_not_deadlocked() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(snap, 1);
            // batch is far larger than what the client sends: only the
            // idle flush can answer it.
            service.run_tcp(listener, 1000).unwrap()
        });
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = ServeRequest {
                id: Some(5),
                input: RequestInput::Features(vec![0.5; n]),
                uarch: MicroArch::xscale(),
                apply: false,
            };
            stream
                .write_all(format!("{}\n", serde_json::to_string(&req).unwrap()).as_bytes())
                .unwrap();
            // Write side stays open — a blocking client waiting for its
            // reply. The 20 ms idle flush must answer it anyway.
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
            assert_eq!(r.id, 5);
            assert!(r.error.is_none());
            stream.write_all(b"{\"shutdown\": true}\n").unwrap();
        }
        let stats = server.join().unwrap();
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn request_json_is_hand_writable() {
        // The lenient parser accepts the minimal hand-written form the
        // README quickstart shows.
        let line = r#"{"features": [0,0,0,0,0,0,0,0,0,0,0, 32768,32,32768,32,512,1,400,1], "uarch": "xscale"}"#;
        let req: ServeRequest = serde_json::from_str(line).unwrap();
        assert_eq!(req.id, None);
        assert!(!req.apply);
        assert_eq!(req.uarch, MicroArch::xscale());
        match &req.input {
            RequestInput::Features(f) => assert_eq!(f.len(), portopt_uarch::N_FEATURES),
            other => panic!("wrong input: {other:?}"),
        }
        // Both features and module present is ambiguous.
        let both = r#"{"features": [1.0], "module": {}, "uarch": "xscale"}"#;
        assert!(serde_json::from_str::<ServeRequest>(both).is_err());
    }
}
