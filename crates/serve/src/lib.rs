//! # portopt-serve
//!
//! The deployment half the paper promises (§3.4, Figure 2): train once
//! off-line, then answer "which optimisation setting for *this* program on
//! *this* microarchitecture?" in milliseconds, for traffic, without ever
//! touching the training sweep again.
//!
//! Four pieces:
//!
//! * [`Snapshot`] — a versioned on-disk artifact holding a trained
//!   [`portopt_core::PortableCompiler`] plus the metadata needed to refuse
//!   incompatible files loudly (format version, feature dimensionality,
//!   the exact optimisation pass space).
//! * [`PredictionService`] — a batched JSON-lines request/response server
//!   over the [`portopt_exec`] executor: stdin/stdout for piping and
//!   tests, `std::net::TcpListener` for sockets. Requests carry either a
//!   precomputed feature vector or a raw `portopt-ir` module (the service
//!   then runs the one `-O3` profiling pass itself).
//! * [`concurrent`] — the multi-client TCP front end: a bounded accept
//!   loop ([`ConnectionRegistry`]), a cross-connection batching window
//!   ([`ServeOptions`]), and per-connection reply routing.
//! * [`reload`] — hot snapshot reload: an atomically swappable versioned
//!   model slot ([`ReloadHandle`]), driven by the `{"cmd": "reload"}`
//!   admin request or a file watcher (`--watch-snapshot`).
//!
//! The complete wire protocol — request/reply fields, batching and
//! ordering guarantees, reload semantics — is specified in
//! `docs/SERVING.md`. The `snapshot` and `serve` binaries in
//! `portopt-bench` wrap these:
//!
//! ```text
//! cargo run --release -p portopt-bench --bin snapshot -- --scale smoke --out model.snap
//! echo '{"module": {...}, "uarch": "xscale"}' \
//!   | cargo run --release -p portopt-bench --bin serve -- --snapshot model.snap --stdio
//! cargo run --release -p portopt-bench --bin serve -- --snapshot model.snap \
//!   --port 7209 --max-conns 128 --batch-window-ms 5 --watch-snapshot
//! ```

#![warn(missing_docs)]

pub mod concurrent;
pub mod metrics;
pub mod reload;
pub mod service;
pub mod snapshot;
pub mod testkit;

pub use concurrent::{
    ConnectionRegistry, ServeOptions, DEFAULT_MAX_CONNS, DEFAULT_WATCH_INTERVAL_MS,
    DEFAULT_WINDOW_MS,
};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use portopt_ml::ModelKind;
pub use reload::{ReloadHandle, VersionedSnapshot, WatchEvent};
pub use service::{
    ApplyStats, ConnId, LineAction, PredictionService, RequestInput, ServeRequest, ServeResponse,
    ServiceStats, DEFAULT_BATCH, LOCAL_CONN,
};
pub use snapshot::{
    current_pass_space, Snapshot, SnapshotError, SnapshotMeta, FORMAT_VERSION, SNAPSHOT_MAGIC,
};

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_core::{generate, Dataset, GenOptions, SweepScale, TrainOptions};
    use portopt_ir::{FuncBuilder, Module, ModuleBuilder};
    use portopt_passes::OptSpace;
    use portopt_uarch::MicroArch;
    use std::io::Cursor;

    fn program(name: &str, mem_heavy: bool) -> (String, Module) {
        let mut mb = ModuleBuilder::new(name);
        let (_, base) = mb.global("buf", 1024);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 300, 1, |b, i| {
            if mem_heavy {
                let off0 = b.mul(i, 13);
                let off = b.and(off0, 1023);
                let sh = b.shl(off, 2);
                let a = b.add(p, sh);
                let v = b.load(a, 0);
                let w = b.add(v, i);
                b.store(w, a, 0);
                let t = b.add(acc, w);
                b.assign(acc, t);
            } else {
                let sq = b.mul(i, i);
                let x = b.xor(acc, sq);
                b.assign(acc, x);
            }
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        (name.to_string(), mb.finish())
    }

    fn tiny_dataset() -> Dataset {
        generate(
            &[
                program("mem1", true),
                program("alu1", false),
                program("mem2", true),
            ],
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 4,
                    n_opts: 16,
                },
                seed: 7,
                extended_space: false,
                threads: 2,
            },
        )
    }

    fn tiny_snapshot() -> Snapshot {
        Snapshot::train(&tiny_dataset(), &TrainOptions::default())
    }

    #[test]
    fn snapshot_roundtrips_byte_identically() {
        let snap = tiny_snapshot();
        let dir = std::env::temp_dir().join("portopt-serve-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.compiler.knn().unwrap(), snap.compiler.knn().unwrap());
        assert_eq!(back.to_bytes().unwrap(), snap.to_bytes().unwrap());
        let ds = tiny_dataset();
        let x = &ds.features[0][0];
        assert_eq!(back.compiler.predict(x), snap.compiler.predict(x));
    }

    #[test]
    fn snapshot_meta_describes_the_model() {
        let snap = tiny_snapshot();
        assert_eq!(snap.meta.magic, SNAPSHOT_MAGIC);
        assert_eq!(snap.meta.format_version, FORMAT_VERSION);
        assert_eq!(snap.meta.feature_dim, portopt_uarch::N_FEATURES);
        assert_eq!(snap.meta.pass_space.len(), OptSpace::n_dims());
        assert_eq!(snap.meta.programs, 3);
        assert_eq!(snap.meta.uarchs, 4);
        assert_eq!(snap.meta.settings, 16);
    }

    #[test]
    fn corrupted_and_mismatched_snapshots_are_rejected() {
        let snap = tiny_snapshot();
        // Truncated file: corrupt.
        let bytes = snap.to_bytes().unwrap();
        let err = Snapshot::from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
        // Not JSON at all.
        assert!(matches!(
            Snapshot::from_bytes(b"\x00\x01binary junk").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        // Some other JSON document.
        assert!(matches!(
            Snapshot::from_bytes(b"{\"hello\": 1}").unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        // Wrong magic.
        let mut other = snap.clone();
        other.meta.magic = "something-else".into();
        match Snapshot::from_bytes(&other.to_bytes().unwrap()).unwrap_err() {
            SnapshotError::NotASnapshot { found } => assert_eq!(found, "something-else"),
            e => panic!("expected NotASnapshot, got {e}"),
        }
        // Future format version.
        let mut newer = snap.clone();
        newer.meta.format_version = FORMAT_VERSION + 1;
        match Snapshot::from_bytes(&newer.to_bytes().unwrap()).unwrap_err() {
            SnapshotError::VersionMismatch { found, supported } => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            e => panic!("expected VersionMismatch, got {e}"),
        }
        // A pass space with one dimension renamed.
        let mut wrong_space = snap.clone();
        wrong_space.meta.pass_space[0].0 = "fsome_new_pass".into();
        let err = Snapshot::from_bytes(&wrong_space.to_bytes().unwrap()).unwrap_err();
        match &err {
            SnapshotError::PassSpaceMismatch { detail } => {
                assert!(detail.contains("fsome_new_pass"), "{detail}")
            }
            e => panic!("expected PassSpaceMismatch, got {e}"),
        }
        // A pass space with a different shape.
        let mut short_space = snap.clone();
        short_space.meta.pass_space.pop();
        assert!(matches!(
            Snapshot::from_bytes(&short_space.to_bytes().unwrap()).unwrap_err(),
            SnapshotError::PassSpaceMismatch { .. }
        ));
        // Wrong feature dimensionality.
        let mut wrong_dim = snap.clone();
        wrong_dim.meta.feature_dim = 7;
        match Snapshot::from_bytes(&wrong_dim.to_bytes().unwrap()).unwrap_err() {
            SnapshotError::FeatureDimMismatch { found, expected } => {
                assert_eq!(found, 7);
                assert_eq!(expected, portopt_uarch::N_FEATURES);
            }
            e => panic!("expected FeatureDimMismatch, got {e}"),
        }
        // Missing file.
        assert!(matches!(
            Snapshot::load("/nonexistent/portopt.snap").unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn service_answers_feature_requests_in_order() {
        let ds = tiny_dataset();
        let snap = Snapshot::train(&ds, &TrainOptions::default());
        let service = PredictionService::new(snap, 2);
        let mut input = String::new();
        for (i, u) in [(0usize, 0usize), (1, 1), (2, 2), (0, 3)] {
            let req = ServeRequest {
                id: Some(100 + input.lines().count() as u64),
                input: RequestInput::Features(ds.features[i][u].values.clone()),
                uarch: ds.uarchs[u],
                apply: false,
            };
            input.push_str(&serde_json::to_string(&req).unwrap());
            input.push('\n');
        }
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        let shutdown = service
            .run_lines(Cursor::new(input), &mut out, 2, &mut stats)
            .unwrap();
        assert!(!shutdown, "EOF, not shutdown");
        let replies: Vec<ServeResponse> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 4);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.id, 100 + i as u64, "in-order echo of client ids");
            assert!(r.error.is_none(), "{:?}", r.error);
            assert_eq!(r.choices.len(), OptSpace::n_dims());
            let cfg = r.config.expect("config present");
            assert_eq!(cfg.to_choices(), r.choices);
            assert!(r.latency_ms >= 0.0);
        }
        // The drain really batched: 4 requests at batch=2 → 2 batches.
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.max_batch, 2);
        assert!(stats.predictions_per_sec() > 0.0);
    }

    #[test]
    fn service_handles_module_requests_and_applies() {
        let snap = tiny_snapshot();
        let service = PredictionService::new(snap, 2);
        let (_, module) = program("fresh", true);
        let req = ServeRequest {
            id: None,
            input: RequestInput::Module(Box::new(module)),
            uarch: MicroArch::xscale(),
            apply: true,
        };
        let line = serde_json::to_string(&req).unwrap();
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        service
            .run_lines(Cursor::new(line), &mut out, 8, &mut stats)
            .unwrap();
        let reply: ServeResponse =
            serde_json::from_str(String::from_utf8(out).unwrap().lines().next().unwrap()).unwrap();
        assert!(reply.error.is_none(), "{:?}", reply.error);
        assert!(reply.config.is_some());
        let apply = reply.stats.expect("apply stats");
        assert!(apply.o3_cycles > 0.0);
        assert!(apply.predicted_cycles > 0.0);
        assert!(
            apply.speedup > 0.3,
            "predicted config catastrophic: {apply:?}"
        );
    }

    #[test]
    fn bad_requests_get_error_replies_not_disconnects() {
        let snap = tiny_snapshot();
        let n_features = snap.meta.feature_dim;
        let service = PredictionService::new(snap, 1);
        let good = ServeRequest {
            id: Some(9),
            input: RequestInput::Features(vec![0.5; n_features]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        let input = format!(
            "not json at all\n\
             {{\"id\": 77, \"features\": [1.0, 2.0], \"uarch\": \"xscale\"}}\n\
             {{\"features\": [1.0], \"uarch\": \"warp-core\"}}\n\
             {{\"uarch\": \"xscale\"}}\n\
             {}\n",
            serde_json::to_string(&good).unwrap()
        );
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        service
            .run_lines(Cursor::new(input), &mut out, 64, &mut stats)
            .unwrap();
        let replies: Vec<ServeResponse> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 5);
        assert!(replies[0].error.as_deref().unwrap().contains("bad request"));
        assert_eq!(replies[0].id, 0, "unparseable line falls back to ticket");
        assert!(replies[1]
            .error
            .as_deref()
            .unwrap()
            .contains("model expects"));
        assert_eq!(replies[1].id, 77, "error replies echo the client id");
        assert!(replies[2].error.as_deref().unwrap().contains("warp-core"));
        assert!(replies[3].error.as_deref().unwrap().contains("features"));
        assert!(replies[4].error.is_none());
        assert_eq!(replies[4].id, 9);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.errors, 4);
    }

    #[test]
    fn shutdown_request_flushes_and_stops() {
        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let service = PredictionService::new(snap, 1);
        let req = ServeRequest {
            id: Some(1),
            input: RequestInput::Features(vec![1.0; n]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        let input = format!(
            "{}\n{{\"shutdown\": true}}\n{}\n",
            serde_json::to_string(&req).unwrap(),
            serde_json::to_string(&req).unwrap(),
        );
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        let shutdown = service
            .run_lines(Cursor::new(input), &mut out, 1000, &mut stats)
            .unwrap();
        assert!(shutdown);
        // The pending request before the sentinel was answered; the one
        // after it was never read.
        assert_eq!(stats.requests, 1);
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
        assert!(!stats.report().is_empty());
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(snap, 2);
            service.run_tcp(listener, 4).unwrap()
        });

        // First connection: two requests closed by EOF — the second
        // deliberately without a trailing newline, which must still be
        // answered (stdio's BufRead::lines semantics).
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = ServeRequest {
                id: Some(42),
                input: RequestInput::Features(vec![0.25; n]),
                uarch: MicroArch::xscale(),
                apply: false,
            };
            let line = serde_json::to_string(&req).unwrap();
            stream
                .write_all(format!("{line}\n{line}").as_bytes())
                .unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
            assert_eq!(r.id, 42);
            assert!(r.error.is_none());
        }
        // Second connection: shutdown sentinel stops the listener.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"shutdown\": true}\n").unwrap();
        }
        let stats = server.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn tcp_idle_client_is_flushed_not_deadlocked() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(snap, 1);
            // batch is far larger than what the client sends: only the
            // idle flush can answer it.
            service.run_tcp(listener, 1000).unwrap()
        });
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = ServeRequest {
                id: Some(5),
                input: RequestInput::Features(vec![0.5; n]),
                uarch: MicroArch::xscale(),
                apply: false,
            };
            stream
                .write_all(format!("{}\n", serde_json::to_string(&req).unwrap()).as_bytes())
                .unwrap();
            // Write side stays open — a blocking client waiting for its
            // reply. The 20 ms idle flush must answer it anyway.
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
            assert_eq!(r.id, 5);
            assert!(r.error.is_none());
            stream.write_all(b"{\"shutdown\": true}\n").unwrap();
        }
        let stats = server.join().unwrap();
        assert_eq!(stats.requests, 1);
    }

    /// Ids: `conn * 100 + seq`, so a reply leaking across connections is
    /// immediately identifiable.
    fn routed_request_line(ds: &Dataset, conn: u64, seq: u64) -> String {
        let req = ServeRequest {
            id: Some(conn * 100 + seq),
            input: RequestInput::Features(
                ds.features[(conn as usize + seq as usize) % ds.n_programs()]
                    [seq as usize % ds.n_uarchs()]
                .values
                .clone(),
            ),
            uarch: ds.uarchs[seq as usize % ds.n_uarchs()],
            apply: false,
        };
        serde_json::to_string(&req).unwrap()
    }

    #[test]
    fn concurrent_clients_get_their_own_replies_in_order() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let ds = tiny_dataset();
        let snap = Snapshot::train(&ds, &TrainOptions::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(snap, 2);
            // Small batch + short window: 24 requests from 3 clients force
            // several cross-connection batches.
            let opts = ServeOptions {
                batch: 4,
                window: std::time::Duration::from_millis(2),
                ..Default::default()
            };
            service.run_concurrent(listener, &opts).unwrap()
        });

        const CLIENTS: u64 = 3;
        const PER_CLIENT: u64 = 8;
        let ds = &ds;
        std::thread::scope(|s| {
            for conn in 1..=CLIENTS {
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for seq in 0..PER_CLIENT {
                        let line = routed_request_line(ds, conn, seq);
                        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
                    }
                    let mut reader = BufReader::new(stream);
                    for seq in 0..PER_CLIENT {
                        let mut reply = String::new();
                        reader.read_line(&mut reply).unwrap();
                        let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
                        assert!(r.error.is_none(), "{:?}", r.error);
                        assert_eq!(
                            r.id,
                            conn * 100 + seq,
                            "client {conn} got someone else's (or out-of-order) reply"
                        );
                    }
                });
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"shutdown\": true}\n").unwrap();
        let stats = server.join().unwrap();
        assert_eq!(stats.requests, CLIENTS * PER_CLIENT);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.connections, CLIENTS + 1, "3 clients + the shutdown");
        assert_eq!(stats.discarded, 0);
    }

    #[test]
    fn tcp_half_close_unterminated_final_line_is_answered() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(snap, 1);
            service.run_tcp(listener, 64).unwrap()
        });
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = ServeRequest {
                id: Some(31),
                input: RequestInput::Features(vec![0.75; n]),
                uarch: MicroArch::xscale(),
                apply: false,
            };
            // No trailing newline, then SHUT_WR: the stream ends mid-line.
            stream
                .write_all(serde_json::to_string(&req).unwrap().as_bytes())
                .unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
            assert_eq!(r.id, 31, "unterminated final line must still be answered");
            assert!(r.error.is_none());
            // After the routed reply the server closes its half too.
            let mut rest = String::new();
            reader.read_line(&mut rest).unwrap();
            assert!(
                rest.is_empty(),
                "expected EOF after the reply, got {rest:?}"
            );
        }
        // Same guarantee when the unterminated line *straddles* the
        // reader's 50 ms receive timeout: the fragment is carried into the
        // reader's buffer by an Err(WouldBlock) pass, and the EOF
        // afterwards arrives as Ok(0) with the buffer non-empty — the
        // fragment must still be answered, not assumed already processed.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let req = ServeRequest {
                id: Some(32),
                input: RequestInput::Features(vec![0.5; n]),
                uarch: MicroArch::xscale(),
                apply: false,
            };
            // The whole request, still without its newline...
            stream
                .write_all(serde_json::to_string(&req).unwrap().as_bytes())
                .unwrap();
            stream.flush().unwrap();
            // ...then a pause longer than the read timeout, so the server
            // buffers the fragment through at least one timeout pass...
            std::thread::sleep(std::time::Duration::from_millis(150));
            // ...and then EOF with no further bytes.
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
            assert_eq!(r.id, 32, "fragment buffered across a read timeout was lost");
            assert!(r.error.is_none());
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"shutdown\": true}\n").unwrap();
        let stats = server.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.discarded, 0);
    }

    #[test]
    fn capacity_bound_rejects_excess_connections() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let snap = tiny_snapshot();
        let n = snap.meta.feature_dim;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(snap, 1);
            let opts = ServeOptions {
                max_conns: 1,
                ..Default::default()
            };
            service.run_concurrent(listener, &opts).unwrap()
        });

        let mut first = TcpStream::connect(addr).unwrap();
        let req = ServeRequest {
            id: Some(1),
            input: RequestInput::Features(vec![0.5; n]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        first
            .write_all(format!("{}\n", serde_json::to_string(&req).unwrap()).as_bytes())
            .unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut reply = String::new();
        first_reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"id\":1"), "{reply}");

        // The slot is taken: a second client is refused with an error line.
        {
            let second = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(second);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("capacity"), "expected capacity error: {line}");
            let mut rest = String::new();
            reader.read_line(&mut rest).unwrap();
            assert!(rest.is_empty(), "rejected client must be disconnected");
        }

        first.write_all(b"{\"shutdown\": true}\n").unwrap();
        let stats = server.join().unwrap();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.rejected_connections, 1);
    }

    #[test]
    fn reload_swaps_between_batches_and_batches_stay_on_one_model() {
        let ds = tiny_dataset();
        let snap = Snapshot::train(&ds, &TrainOptions::default());
        let service = PredictionService::new(snap, 2);
        let line = routed_request_line(&ds, 0, 0);
        let mut stats = ServiceStats::default();

        // Batch 1 drains on the starting model.
        service.submit_line(&line);
        let replies = service.drain(&mut stats);
        assert_eq!(replies[0].snapshot_version, 1);

        // A reload between drains is visible to the next batch — even for
        // requests submitted *before* the reload (version capture is per
        // batch drain, as SERVING.md specifies).
        service.submit_line(&line);
        let retrained = Snapshot::train(&tiny_dataset(), &TrainOptions::default());
        assert_eq!(service.reload_handle().reload(retrained), 2);
        service.submit_line(&line);
        let replies = service.drain(&mut stats);
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| r.snapshot_version == 2));

        // A reload racing a drain never splits the batch across models:
        // the snapshot is captured once at drain start.
        for _ in 0..16 {
            service.submit_line(&line);
        }
        let barrier = std::sync::Barrier::new(2);
        let versions: Vec<u64> = std::thread::scope(|s| {
            let drainer = s.spawn(|| {
                barrier.wait();
                let mut stats = ServiceStats::default();
                service
                    .drain(&mut stats)
                    .into_iter()
                    .map(|r| r.snapshot_version)
                    .collect()
            });
            barrier.wait();
            let retrained = Snapshot::train(&tiny_dataset(), &TrainOptions::default());
            service.reload_handle().reload(retrained);
            drainer.join().unwrap()
        });
        assert_eq!(versions.len(), 16);
        let first = versions[0];
        assert!(first == 2 || first == 3, "unexpected version {first}");
        assert!(
            versions.iter().all(|&v| v == first),
            "one batch answered by two models: {versions:?}"
        );
        // Whatever the race did, the *next* batch sees the new model.
        service.submit_line(&line);
        let mut stats = ServiceStats::default();
        assert_eq!(service.drain(&mut stats)[0].snapshot_version, 3);
    }

    #[test]
    fn tcp_reload_cmd_swaps_mid_session_without_dropping_requests() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::{TcpListener, TcpStream};

        let dir = std::env::temp_dir().join("portopt-serve-test-tcp-reload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        let snap = tiny_snapshot();
        snap.save(&path).unwrap();
        let n = snap.meta.feature_dim;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let path_for_server = path.clone();
        let server = std::thread::spawn(move || {
            let service = PredictionService::new(Snapshot::load(&path_for_server).unwrap(), 1)
                .with_reload_path(&path_for_server);
            service.run_tcp(listener, 8).unwrap()
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let req = ServeRequest {
            id: Some(1),
            input: RequestInput::Features(vec![0.25; n]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        let req_line = serde_json::to_string(&req).unwrap();

        // Request 1 is answered by the starting model...
        stream
            .write_all(format!("{req_line}\n").as_bytes())
            .unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let r: ServeResponse = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(r.snapshot_version, 1);

        // ...the admin reload is acknowledged out-of-band with the new
        // version...
        stream.write_all(b"{\"cmd\": \"reload\"}\n").unwrap();
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert!(ack.contains("\"ok\":true"), "{ack}");
        assert!(ack.contains("\"snapshot_version\":2"), "{ack}");

        // ...and request 2 is answered by the reloaded model.
        stream
            .write_all(format!("{req_line}\n").as_bytes())
            .unwrap();
        let mut reply2 = String::new();
        reader.read_line(&mut reply2).unwrap();
        let r2: ServeResponse = serde_json::from_str(reply2.trim()).unwrap();
        assert_eq!(r2.snapshot_version, 2);
        assert_eq!(r2.id, 1);

        stream.write_all(b"{\"shutdown\": true}\n").unwrap();
        let stats = server.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn stdio_reload_cmd_is_acknowledged_inline() {
        let dir = std::env::temp_dir().join("portopt-serve-test-stdio-reload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        let snap = tiny_snapshot();
        snap.save(&path).unwrap();
        let n = snap.meta.feature_dim;
        let service =
            PredictionService::new(Snapshot::load(&path).unwrap(), 1).with_reload_path(&path);
        let req = ServeRequest {
            id: Some(5),
            input: RequestInput::Features(vec![0.5; n]),
            uarch: MicroArch::xscale(),
            apply: false,
        };
        let req_line = serde_json::to_string(&req).unwrap();
        let input = format!("{req_line}\n{{\"cmd\": \"reload\"}}\n{req_line}\n");
        let mut out = Vec::new();
        let mut stats = ServiceStats::default();
        // batch=1 drains each request before the next line is read, so the
        // version sequence is deterministic: v1 reply, ack v2, v2 reply.
        service
            .run_lines(Cursor::new(input), &mut out, 1, &mut stats)
            .unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        let r1: ServeResponse = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(r1.snapshot_version, 1);
        assert!(lines[1].contains("\"cmd\":\"reload\"") && lines[1].contains("\"ok\":true"));
        let r2: ServeResponse = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(r2.snapshot_version, 2);

        // Without a configured path, reload is refused and the model keeps
        // serving.
        let service = PredictionService::new(tiny_snapshot(), 1);
        let mut out = Vec::new();
        service
            .run_lines(
                Cursor::new("{\"cmd\": \"reload\"}\n"),
                &mut out,
                1,
                &mut ServiceStats::default(),
            )
            .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("\"ok\":false"), "{out}");
        assert_eq!(service.current_snapshot().version, 1);
    }

    #[test]
    fn unknown_admin_command_gets_error_reply() {
        let service = PredictionService::new(tiny_snapshot(), 1);
        assert!(!service.submit_line("{\"cmd\": \"explode\"}"));
        let mut stats = ServiceStats::default();
        let replies = service.drain(&mut stats);
        assert_eq!(replies.len(), 1);
        assert!(replies[0]
            .error
            .as_deref()
            .unwrap()
            .contains("unknown admin command"));
    }

    #[test]
    fn watcher_reloads_when_the_snapshot_file_changes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Duration;

        let dir = std::env::temp_dir().join("portopt-serve-test-watch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        let snap = tiny_snapshot();
        snap.save(&path).unwrap();
        let service = PredictionService::new(Snapshot::load(&path).unwrap(), 1);
        let handle = service.reload_handle();

        // A bad artifact is refused and the served model is unchanged.
        let garbage = dir.join("garbage.snap");
        std::fs::write(&garbage, b"{\"hello\": 1}").unwrap();
        assert!(handle.reload_from(&garbage).is_err());
        assert_eq!(handle.version(), 1);

        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let watcher_handle = handle.clone();
            let (path, stop) = (&path, &stop);
            let watcher = s
                .spawn(move || watcher_handle.watch(path, Duration::from_millis(10), stop, |_| {}));
            // Republish until the watcher (whose initial stamp may race the
            // first save) observes a change. A retrained snapshot with a
            // different k changes both length and mtime.
            let changed = Snapshot::train(
                &tiny_dataset(),
                &TrainOptions {
                    k: 3,
                    ..TrainOptions::default()
                },
            );
            let mut reloaded = false;
            for _ in 0..100 {
                changed.save(&path).unwrap();
                std::thread::sleep(Duration::from_millis(30));
                if handle.version() >= 2 {
                    reloaded = true;
                    break;
                }
            }
            stop.store(true, Ordering::Release);
            let reload_count = watcher.join().unwrap();
            assert!(reloaded, "watcher never picked up the new snapshot");
            assert!(reload_count >= 1);
        });
        assert_eq!(
            service.current_snapshot().snapshot.meta.k,
            3,
            "service must now serve the republished model"
        );
    }

    #[test]
    fn registry_retires_connections_whose_writes_fail() {
        use std::io::Write;

        /// A writer that always fails — a client whose socket went away.
        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client gone",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let registry: ConnectionRegistry<BrokenPipe> = ConnectionRegistry::new(4);
        let conn = registry.register(BrokenPipe).unwrap();
        registry.note_submitted(conn);
        assert!(!registry.deliver(conn, "{}\n", 1), "write must fail");
        assert!(!registry.live(conn), "failed write retires the connection");
        // Delivery to a retired (or never-registered) connection reports
        // failure instead of panicking.
        assert!(!registry.deliver(conn, "{}\n", 1));
        assert!(!registry.deliver(999, "{}\n", 1));
    }

    /// Satellite check for stats-accounting drift: the registry's
    /// outstanding counts and the metrics in-flight gauge are maintained
    /// by different code paths (reader threads vs. the batcher); a client
    /// killed mid-batch is exactly where they historically disagree.
    #[test]
    fn stats_ledger_agrees_after_dead_conn_discard() {
        use std::sync::atomic::AtomicBool;

        let ds = tiny_dataset();
        let snap = Snapshot::train(&ds, &TrainOptions::default());
        let service = PredictionService::new(snap, 1);
        let registry: ConnectionRegistry<Vec<u8>> = ConnectionRegistry::new(4);
        let a = registry.register(Vec::new()).unwrap();
        let b = registry.register(Vec::new()).unwrap();
        let stop = AtomicBool::new(false);

        service.handle_line(&registry, a, &routed_request_line(&ds, a, 0), &stop);
        service.handle_line(&registry, b, &routed_request_line(&ds, b, 0), &stop);
        assert_eq!(registry.total_outstanding(), 2);
        assert_eq!(service.metrics().inflight(), 2);

        // Client `b` dies before its batch runs.
        registry.remove(b);
        let mut stats = ServiceStats::default();
        service.drain_and_route(&registry, &mut stats);

        assert_eq!(stats.requests, 1, "only a's request was computed");
        assert_eq!(stats.discarded, 1, "b's request was dropped pre-compute");
        assert_eq!(
            registry.total_outstanding(),
            0,
            "a's reply was delivered; b is gone"
        );
        assert_eq!(
            service.metrics().inflight(),
            0,
            "metrics gauge must agree with the registry ledger"
        );
        let m = service.metrics().snapshot(service.pending());
        assert_eq!(m.requests_total, 1);
        assert_eq!(m.discarded_total, 1);
        assert_eq!(m.queue_depth, 0);
    }

    /// The other half of the drift surface: the connection dies *after*
    /// its reply is computed (delivery fails). The reply already left the
    /// in-flight gauge via `record_request`; the undeliverable path must
    /// count the discard without decrementing in-flight a second time —
    /// which would leave the gauge permanently short for every later
    /// request.
    #[test]
    fn stats_ledger_agrees_when_reply_delivery_fails() {
        use std::io::Write;
        use std::sync::atomic::AtomicBool;

        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client gone",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let ds = tiny_dataset();
        let snap = Snapshot::train(&ds, &TrainOptions::default());
        let service = PredictionService::new(snap, 1);
        let registry: ConnectionRegistry<BrokenPipe> = ConnectionRegistry::new(4);
        let c = registry.register(BrokenPipe).unwrap();
        let stop = AtomicBool::new(false);

        service.handle_line(&registry, c, &routed_request_line(&ds, c, 0), &stop);
        let mut stats = ServiceStats::default();
        service.drain_and_route(&registry, &mut stats);

        assert_eq!(stats.requests, 1, "the request was computed");
        assert_eq!(stats.discarded, 1, "…but its reply could not be written");
        assert!(!registry.live(c), "failed delivery retires the connection");
        assert_eq!(registry.total_outstanding(), 0);
        assert_eq!(service.metrics().inflight(), 0, "no double decrement");
        let m = service.metrics().snapshot(service.pending());
        assert_eq!(m.requests_total, 1);
        assert_eq!(m.discarded_total, 1);

        // The gauge still tracks later traffic exactly (a double decrement
        // above would have wrapped or pinned it at zero forever).
        let d = registry.register(BrokenPipe).unwrap();
        service.handle_line(&registry, d, &routed_request_line(&ds, d, 0), &stop);
        assert_eq!(service.metrics().inflight(), 1);
    }

    /// Refusals must leave every ledger untouched: not queued, not
    /// outstanding, not in-flight — only the refusal counter moves.
    #[test]
    fn refusals_leave_no_residue_in_any_ledger() {
        use std::sync::atomic::AtomicBool;

        let ds = tiny_dataset();
        let snap = Snapshot::train(&ds, &TrainOptions::default());
        let service = PredictionService::new(snap, 1).with_queue_cap(2);
        let registry: ConnectionRegistry<Vec<u8>> = ConnectionRegistry::new(4).with_quota(Some(2));
        let a = registry.register(Vec::new()).unwrap();
        let stop = AtomicBool::new(false);

        for seq in 0..3 {
            service.handle_line(&registry, a, &routed_request_line(&ds, a, seq), &stop);
        }
        assert_eq!(service.pending(), 2, "the cap held");
        assert_eq!(registry.outstanding(a), 2, "the refusal was retracted");
        assert!(registry.over_quota(a), "at quota 2, the reader would pause");
        assert_eq!(service.metrics().inflight(), 2);
        assert_eq!(service.metrics().refused_total(), 1);

        let mut stats = ServiceStats::default();
        service.drain_and_route(&registry, &mut stats);
        assert_eq!(stats.requests, 2);
        assert_eq!(registry.outstanding(a), 0);
        assert!(!registry.over_quota(a));
        assert_eq!(service.metrics().inflight(), 0);
    }

    #[test]
    fn request_json_is_hand_writable() {
        // The lenient parser accepts the minimal hand-written form the
        // README quickstart shows.
        let line = r#"{"features": [0,0,0,0,0,0,0,0,0,0,0, 32768,32,32768,32,512,1,400,1], "uarch": "xscale"}"#;
        let req: ServeRequest = serde_json::from_str(line).unwrap();
        assert_eq!(req.id, None);
        assert!(!req.apply);
        assert_eq!(req.uarch, MicroArch::xscale());
        match &req.input {
            RequestInput::Features(f) => assert_eq!(f.len(), portopt_uarch::N_FEATURES),
            other => panic!("wrong input: {other:?}"),
        }
        // Both features and module present is ambiguous.
        let both = r#"{"features": [1.0], "module": {}, "uarch": "xscale"}"#;
        assert!(serde_json::from_str::<ServeRequest>(both).is_err());
    }
}
