//! Negative-path coverage for the snapshot `model_kind` tag: every
//! wrong-kind shape must fail *typed* (naming both kinds, or the unknown
//! tag) before the payload is touched — never as a generic `Corrupt` —
//! and a pre-PR-10 snapshot with no tag at all must keep loading as kNN.
//! The backward-compat pin is a checked-in golden file under
//! `tests/golden/`; regenerate it with the `#[ignore]`d writer below if
//! the *intended* wire format ever changes.

mod common;

use common::fixture;
use portopt_core::TrainOptions;
use portopt_serve::{ModelKind, Snapshot, SnapshotError};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/pre_pr10_knn.snap"
);

fn linear_snapshot() -> Snapshot {
    let (ds, _) = fixture();
    Snapshot::try_train_kind(&ds, ModelKind::Linear, &TrainOptions::default()).unwrap()
}

#[test]
fn wrong_expected_kind_fails_typed_in_both_directions() {
    let (_, knn_snap) = fixture();
    let knn_bytes = knn_snap.to_bytes().unwrap();
    let linear_bytes = linear_snapshot().to_bytes().unwrap();

    // kNN artifact where linear was pinned.
    match Snapshot::from_bytes_expecting(&knn_bytes, ModelKind::Linear) {
        Err(SnapshotError::ModelKindMismatch { found, expected }) => {
            assert_eq!(found, ModelKind::Knn);
            assert_eq!(expected, ModelKind::Linear);
        }
        other => panic!("expected ModelKindMismatch, got {other:?}"),
    }
    // Linear artifact where kNN was pinned.
    match Snapshot::from_bytes_expecting(&linear_bytes, ModelKind::Knn) {
        Err(SnapshotError::ModelKindMismatch { found, expected }) => {
            assert_eq!(found, ModelKind::Linear);
            assert_eq!(expected, ModelKind::Knn);
        }
        other => panic!("expected ModelKindMismatch, got {other:?}"),
    }
    // The message names both kinds — it is the operator's whole diagnosis.
    let msg = Snapshot::from_bytes_expecting(&linear_bytes, ModelKind::Clustered)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("linear"), "missing found kind: {msg}");
    assert!(msg.contains("clustered"), "missing expected kind: {msg}");

    // Matching pins still load.
    Snapshot::from_bytes_expecting(&knn_bytes, ModelKind::Knn).unwrap();
    Snapshot::from_bytes_expecting(&linear_bytes, ModelKind::Linear).unwrap();
}

#[test]
fn unknown_kind_tag_is_typed_not_corrupt() {
    let json = String::from_utf8(linear_snapshot().to_bytes().unwrap()).unwrap();
    // A tag from a newer binary this one has never heard of.
    let future = json.replace("\"model_kind\":\"linear\"", "\"model_kind\":\"boosted\"");
    match Snapshot::from_bytes(future.as_bytes()) {
        Err(SnapshotError::UnknownModelKind { found }) => assert_eq!(found, "boosted"),
        other => panic!("expected UnknownModelKind, got {other:?}"),
    }
    let msg = Snapshot::from_bytes(future.as_bytes())
        .unwrap_err()
        .to_string();
    assert!(msg.contains("boosted"), "missing tag: {msg}");
    assert!(
        msg.contains("knn/linear/clustered"),
        "missing known kinds: {msg}"
    );
}

#[test]
fn header_payload_disagreement_is_a_mismatch() {
    let json = String::from_utf8(linear_snapshot().to_bytes().unwrap()).unwrap();
    // `meta` serialises before `compiler`, so replacing the first tag
    // occurrence forges a header that claims kNN over a linear payload.
    let forged = json.replacen("\"model_kind\":\"linear\"", "\"model_kind\":\"knn\"", 1);
    assert!(
        forged.contains("\"model_kind\":\"linear\""),
        "payload tag must survive"
    );
    match Snapshot::from_bytes(forged.as_bytes()) {
        Err(SnapshotError::ModelKindMismatch { found, expected }) => {
            assert_eq!(found, ModelKind::Linear);
            assert_eq!(expected, ModelKind::Knn);
        }
        other => panic!("expected ModelKindMismatch, got {other:?}"),
    }
}

#[test]
fn golden_pre_pr10_snapshot_loads_as_knn() {
    let bytes = std::fs::read(GOLDEN)
        .expect("golden missing: run `cargo test -p portopt-serve regenerate_golden -- --ignored`");
    // No kind tag anywhere in the legacy artifact.
    let text = String::from_utf8(bytes.clone()).unwrap();
    assert!(
        !text.contains("model_kind"),
        "golden is not a pre-PR-10 artifact"
    );
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.meta.model_kind, ModelKind::Knn);
    assert!(
        snap.compiler.knn().is_some(),
        "legacy payload must decode as kNN"
    );
    // The absent tag also satisfies an explicit kNN pin, and re-saving the
    // legacy artifact is byte-identical — the wire format did not move.
    Snapshot::from_bytes_expecting(&bytes, ModelKind::Knn).unwrap();
    assert_eq!(snap.to_bytes().unwrap(), bytes, "kNN wire format changed");
    match Snapshot::from_bytes_expecting(&bytes, ModelKind::Linear) {
        Err(SnapshotError::ModelKindMismatch { found, expected }) => {
            assert_eq!(found, ModelKind::Knn);
            assert_eq!(expected, ModelKind::Linear);
        }
        other => panic!("expected ModelKindMismatch, got {other:?}"),
    }
}

/// Writes the golden file from the shared fixture. The artifact is only
/// *valid* as a golden because kNN snapshots carry no kind tag — the
/// check above asserts that, so regenerating after a deliberate format
/// bump keeps the suite honest.
#[test]
#[ignore = "writes tests/golden/pre_pr10_knn.snap; run once after an intended format change"]
fn regenerate_golden() {
    let (_, snap) = fixture();
    std::fs::create_dir_all(std::path::Path::new(GOLDEN).parent().unwrap()).unwrap();
    snap.save(GOLDEN).unwrap();
}
