//! The soak test: sustained concurrent TCP traffic, checked for reply
//! stability and ledger leaks. Ignored by default (it pushes 40k
//! requests); the nightly CI job runs it with `-- --ignored`.

mod common;

use common::{fixture, request_line, shutdown};
use portopt_serve::{PredictionService, ServeOptions, ServeResponse};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// 4 clients × 10_000 requests over one server: every reply routed to its
/// sender in order, identical inputs get identical answers (stable
/// `choices`/`config`/`snapshot_version` — latency is the only field
/// allowed to vary), and at shutdown nothing is leaked: no discarded or
/// refused requests, zero in-flight, queue depth zero.
#[test]
#[ignore = "soak: ~40k requests; run explicitly or in nightly CI"]
fn soak_four_clients_ten_thousand_requests_each() {
    const CLIENTS: u64 = 4;
    const PER_CLIENT: u64 = 10_000;

    let (ds, snap) = fixture();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let service = PredictionService::new(snap, 0);
        let opts = ServeOptions {
            batch: 64,
            window: Duration::from_millis(2),
            ..Default::default()
        };
        let stats = service.run_concurrent(listener, &opts).unwrap();
        // The post-shutdown ledger, read while the service still exists.
        (stats, service.pending(), service.metrics().inflight())
    });

    let ds_ref = &ds;
    std::thread::scope(|s| {
        for client in 1..=CLIENTS {
            s.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let reader_half = stream.try_clone().unwrap();
                let writer = s.spawn(move || {
                    let mut w = std::io::BufWriter::new(stream);
                    for seq in 0..PER_CLIENT {
                        writeln!(w, "{}", request_line(ds_ref, client, seq)).unwrap();
                    }
                    w.flush().unwrap();
                });
                // Replies for one input must be identical across the whole
                // run; key on the (program, uarch) pair the request cycles
                // through.
                let mut canonical: HashMap<(usize, usize), (Vec<u8>, u64)> = HashMap::new();
                let mut reader = BufReader::new(reader_half);
                for seq in 0..PER_CLIENT {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let r: ServeResponse = serde_json::from_str(line.trim())
                        .unwrap_or_else(|e| panic!("client {client} seq {seq}: {e}: {line}"));
                    assert_eq!(r.id, client * 100_000 + seq, "lost/duplicated/misrouted");
                    assert!(r.error.is_none(), "{:?}", r.error);
                    let key = (
                        (client as usize + seq as usize) % ds_ref.n_programs(),
                        seq as usize % ds_ref.n_uarchs(),
                    );
                    let entry = (r.choices.clone(), r.snapshot_version);
                    match canonical.get(&key) {
                        None => {
                            canonical.insert(key, entry);
                        }
                        Some(first) => assert_eq!(
                            first, &entry,
                            "client {client} seq {seq}: same input, different answer"
                        ),
                    }
                }
                writer.join().unwrap();
            });
        }
    });

    shutdown(addr);
    let (stats, queue_depth, inflight) = server.join().unwrap();
    assert_eq!(stats.requests, CLIENTS * PER_CLIENT);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.discarded, 0, "no ticket leaked");
    assert_eq!(stats.refused, 0, "unbounded queue: nothing refused");
    assert_eq!(queue_depth, 0, "final queue depth must be zero");
    assert_eq!(inflight, 0, "in-flight gauge must drain to zero");
    assert_eq!(stats.connections, CLIENTS + 1, "clients + the shutdown");
}
