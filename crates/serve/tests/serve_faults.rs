//! Fault-injection tests for the concurrent serving layer, driven by the
//! deterministic chaos adapters in `portopt_serve::testkit`.
//!
//! Each test pins one wire-protocol guarantee from `docs/SERVING.md`
//! under one fault class — short writes, stalls past the server's read
//! timeout, mid-frame disconnects, garbage bytes — plus the admission
//! bounds this PR adds: the queue cap is a hard ceiling, overload
//! refusals carry `retry_after_ms`, and a closed (shutting-down) queue
//! refuses with a typed error. Fault schedules are seeded: a failure
//! reproduces exactly by rerunning the same test.

mod common;

use common::{fixture, request_line, shutdown, spawn_server};
use portopt_core::TrainOptions;
use portopt_serve::testkit::{garbage_line, ChaosConfig, ChaosRng, ChaosWriter};
use portopt_serve::{
    LineAction, ModelKind, PredictionService, ServeOptions, ServeResponse, Snapshot, LOCAL_CONN,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn fast_opts() -> ServeOptions {
    ServeOptions {
        batch: 4,
        window: Duration::from_millis(2),
        ..Default::default()
    }
}

/// Reads `n` replies and asserts they are exactly client `client`'s
/// requests `0..n`, in order, answered without error.
fn assert_replies_in_order(reader: &mut impl BufRead, client: u64, n: u64) {
    for seq in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r: ServeResponse = serde_json::from_str(line.trim())
            .unwrap_or_else(|e| panic!("client {client} reply {seq} unparseable ({e}): {line}"));
        assert!(
            r.error.is_none(),
            "client {client} seq {seq}: {:?}",
            r.error
        );
        assert_eq!(
            r.id,
            client * 100_000 + seq,
            "client {client} got a lost, duplicated or misrouted reply"
        );
    }
}

/// Fault class 1 — short writes: requests leave the client in 1–3-byte
/// dribbles, so the server's reader sees every frame fragmentation. No
/// reply may be lost, duplicated, misrouted or reordered.
#[test]
fn short_writes_never_split_frames() {
    let (ds, _) = fixture();
    let (addr, server) = spawn_server(|s| PredictionService::new(s, 2), fast_opts());
    const N: u64 = 12;
    for seed in 1..=3u64 {
        let stream = TcpStream::connect(addr).unwrap();
        let reader_half = stream.try_clone().unwrap();
        let mut w = ChaosWriter::new(stream, ChaosConfig::fragmenting(seed, 3));
        for seq in 0..N {
            w.write_all(format!("{}\n", request_line(&ds, seed, seq)).as_bytes())
                .unwrap();
        }
        assert_replies_in_order(&mut BufReader::new(reader_half), seed, N);
    }
    shutdown(addr);
    let stats = server.join().unwrap();
    assert_eq!(stats.requests, 3 * N);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.discarded, 0);
}

/// Fault class 2 — stalls: the client pauses mid-frame for longer than
/// the server's 50 ms socket read timeout. The reader's timeout pass must
/// preserve the partial line and keep appending to it.
#[test]
fn stalls_past_the_read_timeout_preserve_partial_frames() {
    let (ds, _) = fixture();
    let (addr, server) = spawn_server(|s| PredictionService::new(s, 2), fast_opts());
    const N: u64 = 6;
    let stream = TcpStream::connect(addr).unwrap();
    let reader_half = stream.try_clone().unwrap();
    // ~1 in 4 fragments stalls 120 ms — several read-timeout passes land
    // mid-frame over 6 requests.
    let mut w = ChaosWriter::new(
        stream,
        ChaosConfig::stalling(11, 64, Duration::from_millis(120), 8),
    );
    for seq in 0..N {
        w.write_all(format!("{}\n", request_line(&ds, 1, seq)).as_bytes())
            .unwrap();
    }
    assert_replies_in_order(&mut BufReader::new(reader_half), 1, N);
    shutdown(addr);
    let stats = server.join().unwrap();
    assert_eq!(stats.requests, N);
    assert_eq!(stats.errors, 0);
}

/// Fault class 3 — mid-frame disconnect: one client is cut after a byte
/// budget that lands inside a frame and drops its socket. Its complete
/// requests must not poison anyone else: a concurrent well-behaved
/// client gets every reply, correctly routed, and the server keeps
/// accepting afterwards.
#[test]
fn mid_frame_disconnect_discards_without_poisoning_others() {
    let (ds, _) = fixture();
    let (addr, server) = spawn_server(|s| PredictionService::new(s, 2), fast_opts());

    // The victim: two complete requests, then a cut mid-way through the
    // third frame. Dropping the adapter drops its socket clone; dropping
    // `reader_half` below closes the connection entirely.
    {
        let stream = TcpStream::connect(addr).unwrap();
        let _reader_half = stream.try_clone().unwrap();
        let l0 = format!("{}\n", request_line(&ds, 9, 0));
        let l1 = format!("{}\n", request_line(&ds, 9, 1));
        let l2 = format!("{}\n", request_line(&ds, 9, 2));
        let cut_after = (l0.len() + l1.len() + l2.len() / 2) as u64;
        let mut w = ChaosWriter::new(stream, ChaosConfig::cutting(5, 7, cut_after));
        let mut sent = Vec::new();
        sent.extend_from_slice(l0.as_bytes());
        sent.extend_from_slice(l1.as_bytes());
        sent.extend_from_slice(l2.as_bytes());
        let err = w.write_all(&sent).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert!(w.cut(), "the schedule must have cut mid-frame");
        // Socket drops here with a half-written frame on the wire.
    }

    // The survivor: full conversation, every reply intact and its own.
    const N: u64 = 10;
    let stream = TcpStream::connect(addr).unwrap();
    let reader_half = stream.try_clone().unwrap();
    let mut w = stream;
    for seq in 0..N {
        w.write_all(format!("{}\n", request_line(&ds, 2, seq)).as_bytes())
            .unwrap();
    }
    assert_replies_in_order(&mut BufReader::new(reader_half), 2, N);

    shutdown(addr);
    let stats = server.join().unwrap();
    // The survivor's requests all got through; the victim's truncated
    // frame either became an unanswerable error reply (discarded with the
    // dead connection) or was computed and undeliverable — it must never
    // surface in the survivor's stream (checked above by id).
    assert!(stats.requests >= N, "stats: {stats:?}");
    assert_eq!(stats.connections, 3, "victim + survivor + shutdown");
}

/// Fault class 4 — garbage bytes: seeded junk lines interleaved with real
/// requests on one connection. Each garbage line earns an in-order error
/// reply; framing never desyncs, and the real requests around it answer
/// normally.
#[test]
fn garbage_lines_get_in_order_error_replies() {
    let (ds, _) = fixture();
    let (addr, server) = spawn_server(|s| PredictionService::new(s, 2), fast_opts());
    let stream = TcpStream::connect(addr).unwrap();
    let reader_half = stream.try_clone().unwrap();
    let mut w = stream;
    let mut rng = ChaosRng::new(23);

    // real(0), junk, real(1), junk, real(2)
    const REAL: u64 = 3;
    for seq in 0..REAL {
        w.write_all(format!("{}\n", request_line(&ds, 4, seq)).as_bytes())
            .unwrap();
        if seq + 1 < REAL {
            w.write_all(&garbage_line(&mut rng, 48)).unwrap();
        }
    }

    let mut reader = BufReader::new(reader_half);
    let mut real_seen = 0u64;
    for slot in 0..(2 * REAL - 1) {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let r: ServeResponse = serde_json::from_str(line.trim()).unwrap();
        if slot % 2 == 0 {
            assert!(
                r.error.is_none(),
                "slot {slot} should be real: {:?}",
                r.error
            );
            assert_eq!(r.id, 4 * 100_000 + real_seen, "real replies out of order");
            real_seen += 1;
        } else {
            assert!(
                r.error.is_some(),
                "slot {slot} should be the junk line's error reply"
            );
        }
    }

    shutdown(addr);
    let stats = server.join().unwrap();
    assert_eq!(stats.requests, 2 * REAL - 1);
    assert_eq!(stats.errors, REAL - 1, "one error reply per junk line");
}

/// Fault class 5 — non-finite features: JSON `null` decodes to NaN and
/// `1e999` overflows to +Infinity. Both used to reach the distance kernel
/// and panic the whole batch (`partial_cmp(..).expect("finite distances")`);
/// now they are rejected at admission with a typed per-request error reply
/// that echoes the client's id, and every surrounding request still
/// answers normally.
#[test]
fn non_finite_features_are_rejected_per_request_not_per_batch() {
    let (ds, _) = fixture();
    let (addr, server) = spawn_server(|s| PredictionService::new(s, 2), fast_opts());
    let stream = TcpStream::connect(addr).unwrap();
    let reader_half = stream.try_clone().unwrap();
    let mut w = stream;

    // good(0), NaN, +Inf, good(1) — all on one connection, so the NaN and
    // Inf requests share a batch with at least one healthy neighbour.
    let nan_line = r#"{"id":777001,"features":[0.5,null,0.25],"uarch":"xscale"}"#;
    let inf_line = r#"{"id":777002,"features":[1e999,0.5],"uarch":"xscale"}"#;
    w.write_all(format!("{}\n", request_line(&ds, 7, 0)).as_bytes())
        .unwrap();
    w.write_all(format!("{nan_line}\n").as_bytes()).unwrap();
    w.write_all(format!("{inf_line}\n").as_bytes()).unwrap();
    w.write_all(format!("{}\n", request_line(&ds, 7, 1)).as_bytes())
        .unwrap();

    let mut reader = BufReader::new(reader_half);
    let mut read_reply = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str::<ServeResponse>(line.trim())
            .unwrap_or_else(|e| panic!("unparseable reply ({e}): {line}"))
    };

    let ok0 = read_reply();
    assert!(ok0.error.is_none(), "healthy request poisoned: {ok0:?}");
    assert_eq!(ok0.id, 7 * 100_000);

    let nan = read_reply();
    assert_eq!(nan.id, 777_001, "error reply must echo the client's id");
    let msg = nan
        .error
        .as_deref()
        .unwrap_or_else(|| panic!("NaN accepted: {nan:?}"));
    assert!(msg.contains("features[1]"), "{msg}");
    assert!(msg.contains("not a finite number"), "{msg}");

    let inf = read_reply();
    assert_eq!(inf.id, 777_002);
    let msg = inf
        .error
        .as_deref()
        .unwrap_or_else(|| panic!("Inf accepted: {inf:?}"));
    assert!(msg.contains("features[0]"), "{msg}");

    // The batch — and the server — survived: the trailing request answers.
    let ok1 = read_reply();
    assert!(
        ok1.error.is_none(),
        "request after the bad ones lost: {ok1:?}"
    );
    assert_eq!(ok1.id, 7 * 100_000 + 1);

    shutdown(addr);
    let stats = server.join().unwrap();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.errors, 2, "one error reply per non-finite request");
    assert_eq!(stats.discarded, 0);
}

/// The queue cap is a hard ceiling: with `--queue-cap N`, the pending
/// count never exceeds N, every refusal carries the `overloaded` error
/// with a `retry_after_ms` hint, and draining reopens admission.
#[test]
fn queue_cap_is_a_hard_ceiling_and_refusals_carry_retry_hint() {
    let (ds, snap) = fixture();
    const CAP: usize = 4;
    let service = PredictionService::new(snap, 1).with_queue_cap(CAP);
    let mut refusals = Vec::new();
    for seq in 0..10u64 {
        match service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, seq)) {
            LineAction::Queued => {}
            LineAction::Refused { reply } => refusals.push(reply),
            other => panic!("unexpected action {other:?}"),
        }
        assert!(
            service.pending() <= CAP,
            "queue length {} exceeded the cap {CAP}",
            service.pending()
        );
    }
    assert_eq!(service.pending(), CAP);
    assert_eq!(refusals.len(), 10 - CAP);
    for reply in &refusals {
        assert!(reply.contains(r#""error":"overloaded""#), "{reply}");
        assert!(reply.contains(r#""retry_after_ms":"#), "{reply}");
        // The refusal echoes the client's id so it can be correlated.
        assert!(reply.contains(r#""id":1"#), "{reply}");
        // And it is machine-readable.
        assert!(
            serde_json::from_str::<serde::Value>(reply).is_ok(),
            "refusal must parse as JSON: {reply}"
        );
    }
    assert_eq!(service.metrics().refused_total(), (10 - CAP) as u64);

    // Draining reopens admission; nothing was permanently wedged.
    let mut stats = portopt_serve::ServiceStats::default();
    let replies = service.drain(&mut stats);
    assert_eq!(replies.len(), CAP);
    assert!(matches!(
        service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, 99)),
        LineAction::Queued
    ));
}

/// Satellite: submitting into a queue whose batcher is gone (the service
/// closed it for shutdown) yields the typed "shutting down" refusal, not
/// a hang and not a silent enqueue.
#[test]
fn closed_queue_refuses_with_shutting_down_error() {
    let (ds, snap) = fixture();
    let service = PredictionService::new(snap, 1);
    assert!(matches!(
        service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, 0)),
        LineAction::Queued
    ));
    service.close_queue();
    match service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, 1)) {
        LineAction::Refused { reply } => {
            assert!(reply.contains("shutting down"), "{reply}");
            assert!(
                !reply.contains("retry_after_ms"),
                "no point retrying: {reply}"
            );
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    // What was pending before the close still drains.
    let mut stats = portopt_serve::ServiceStats::default();
    assert_eq!(service.drain(&mut stats).len(), 1);
}

/// Model-zoo fault: a hot reload that swaps the model *kind* mid-flight.
/// Requests queued under the old (kNN) snapshot are answered by whichever
/// snapshot the drain captures — but a single batch must never split
/// across snapshots, `snapshot_version` must be uniform within it, and
/// the per-kind prediction counters must attribute every answer to the
/// kind that actually computed it.
#[test]
fn reload_across_model_kinds_never_splits_a_batch() {
    let (ds, knn_snap) = fixture();
    let linear_snap =
        Snapshot::try_train_kind(&ds, ModelKind::Linear, &TrainOptions::default()).unwrap();
    let service = PredictionService::new(knn_snap, 1);
    let v1 = service.current_snapshot().version;

    // Batch 1: fully answered under kNN.
    const FIRST: u64 = 5;
    for seq in 0..FIRST {
        assert!(matches!(
            service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, seq)),
            LineAction::Queued
        ));
    }
    let mut stats = portopt_serve::ServiceStats::default();
    let replies = service.drain(&mut stats);
    assert_eq!(replies.len(), FIRST as usize);
    for r in &replies {
        assert!(r.error.is_none(), "{r:?}");
        assert_eq!(r.snapshot_version, v1);
    }
    let m = service.metrics().snapshot(service.pending());
    assert_eq!(m.predictions_by_kind, [FIRST, 0, 0]);

    // Batch 2: queued under kNN, the linear snapshot lands *before* the
    // drain. The drain captures one snapshot for the whole batch, so
    // every reply carries the new version and every prediction counts
    // against `linear` — no split attribution.
    const SECOND: u64 = 4;
    for seq in FIRST..FIRST + SECOND {
        assert!(matches!(
            service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, seq)),
            LineAction::Queued
        ));
    }
    let v2 = service.reload_handle().reload(linear_snap);
    assert!(v2 > v1);
    let replies = service.drain(&mut stats);
    assert_eq!(replies.len(), SECOND as usize);
    for r in &replies {
        assert!(r.error.is_none(), "{r:?}");
        assert_eq!(
            r.snapshot_version, v2,
            "a reload split a batch across snapshots"
        );
    }
    let m = service.metrics().snapshot(service.pending());
    assert_eq!(
        m.predictions_by_kind,
        [FIRST, SECOND, 0],
        "per-kind counters must follow the serving model across a reload"
    );
    assert_eq!(
        m.predictions_by_version,
        vec![(v1, FIRST), (v2, SECOND)],
        "per-version and per-kind accounting must agree"
    );
}

/// The `{"cmd":"stats"}` line keeps the model-zoo counter identity: the
/// per-kind prediction counts sum to `requests_total - errors_total`
/// (refusals never enter `requests_total`, so they do not appear on
/// either side) — pinned with all three counter classes non-zero.
#[test]
fn stats_line_per_kind_counters_sum_to_successes() {
    let (ds, snap) = fixture();
    const CAP: usize = 4;
    let service = PredictionService::new(snap, 1).with_queue_cap(CAP);

    // One garbage line (answered with an error reply), three healthy
    // requests, then two more against the full queue (refused).
    assert!(matches!(
        service.classify_and_submit(LOCAL_CONN, "{\"nonsense\":1}"),
        LineAction::Queued
    ));
    for seq in 0..(CAP as u64 - 1) {
        assert!(matches!(
            service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, seq)),
            LineAction::Queued
        ));
    }
    for seq in 10..12u64 {
        assert!(matches!(
            service.classify_and_submit(LOCAL_CONN, &request_line(&ds, 1, seq)),
            LineAction::Refused { .. }
        ));
    }
    let mut stats = portopt_serve::ServiceStats::default();
    assert_eq!(service.drain(&mut stats).len(), CAP);

    let line = match service.classify_and_submit(LOCAL_CONN, "{\"cmd\": \"stats\"}") {
        LineAction::Stats(line) => line,
        other => panic!("expected a stats line, got {other:?}"),
    };
    let v = serde_json::parse(&line).expect("stats line must be valid JSON");
    let count = |name: &str| match v.field(name) {
        Ok(serde::Value::U64(n)) => *n,
        Ok(serde::Value::I64(n)) => *n as u64,
        other => panic!("{name} missing or not a count: {other:?}"),
    };
    assert_eq!(count("requests_total"), CAP as u64);
    assert_eq!(count("errors_total"), 1, "the garbage line");
    assert_eq!(count("refused_total"), 2, "the over-cap submissions");
    let kinds = v
        .field("predictions_by_kind")
        .expect("stats line must render the kind table")
        .as_object()
        .expect("kind table is an object");
    // Every registered kind renders, even at zero.
    assert_eq!(kinds.len(), ModelKind::ALL.len());
    let kind_sum: u64 = kinds
        .iter()
        .map(|(_, n)| match n {
            serde::Value::U64(n) => *n,
            serde::Value::I64(n) => *n as u64,
            other => panic!("kind count not a number: {other:?}"),
        })
        .sum();
    assert_eq!(
        kind_sum,
        count("requests_total") - count("errors_total"),
        "per-kind counters must sum to successful answers: {line}"
    );
}

/// End-to-end backpressure over TCP: a server with a tiny queue cap and
/// per-connection quota, firehosed by more concurrent admission attempts
/// than the cap admits while the batcher is held back by a long window,
/// must (a) refuse some requests with `overloaded`, (b) answer every
/// accepted request exactly once, and (c) report the refusals in its
/// stats and metrics.
#[test]
fn firehose_against_tiny_cap_yields_refusals_not_losses() {
    let (ds, _) = fixture();
    let opts = ServeOptions {
        batch: 1000,
        // Long window: requests pool in the queue, so the cap actually
        // binds while the clients are flooding.
        window: Duration::from_millis(150),
        queue_cap: Some(4),
        per_conn_quota: Some(2),
        ..Default::default()
    };
    let (addr, server) = spawn_server(|s| PredictionService::new(s, 2), opts);

    const CLIENTS: u64 = 6;
    const PER_CLIENT: u64 = 8;
    let ds_ref = &ds;
    std::thread::scope(|s| {
        for client in 1..=CLIENTS {
            s.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let reader_half = stream.try_clone().unwrap();
                let mut w = stream;
                for seq in 0..PER_CLIENT {
                    w.write_all(format!("{}\n", request_line(ds_ref, client, seq)).as_bytes())
                        .unwrap();
                }
                // Half-close: the server still owes one reply line per
                // request — answered or refused — then retires us.
                let _ = w.shutdown(std::net::Shutdown::Write);
                drop(w);
                let mut answered = 0u64;
                let mut refused = 0u64;
                let mut reader = BufReader::new(reader_half);
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    if line.contains(r#""error":"overloaded""#) {
                        assert!(line.contains(r#""retry_after_ms":"#), "{line}");
                        refused += 1;
                    } else {
                        let r: ServeResponse = serde_json::from_str(line.trim()).unwrap();
                        assert_eq!(r.id / 100_000, client, "misrouted reply");
                        assert!(r.error.is_none());
                        answered += 1;
                    }
                }
                assert_eq!(
                    answered + refused,
                    PER_CLIENT,
                    "client {client}: every request gets exactly one reply line"
                );
                (answered, refused)
            });
        }
    });

    shutdown(addr);
    let stats = server.join().unwrap();
    assert!(
        stats.refused > 0,
        "6 clients × quota 2 = 12 concurrent admission attempts against cap 4 \
         must refuse something: {stats:?}"
    );
    assert_eq!(
        stats.requests + stats.refused,
        CLIENTS * PER_CLIENT,
        "answered + refused must cover the firehose exactly: {stats:?}"
    );
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.discarded, 0, "refusal is not loss");
}
