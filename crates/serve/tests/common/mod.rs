//! Shared fixtures for the serving integration tests: one trained
//! snapshot per test binary (training is the expensive part), request
//! builders with self-identifying ids, and a TCP server harness.

// Each integration-test binary uses a different subset of these helpers.
#![allow(dead_code)]

use portopt_core::{generate, Dataset, GenOptions, SweepScale, TrainOptions};
use portopt_ir::{FuncBuilder, Module, ModuleBuilder};
use portopt_serve::{PredictionService, ServeRequest, ServiceStats, Snapshot};
use std::net::TcpListener;
use std::sync::OnceLock;

fn program(name: &str, mem_heavy: bool) -> (String, Module) {
    let mut mb = ModuleBuilder::new(name);
    let (_, base) = mb.global("buf", 1024);
    let mut b = FuncBuilder::new("main", 0);
    let p = b.iconst(base as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, 300, 1, |b, i| {
        if mem_heavy {
            let off0 = b.mul(i, 13);
            let off = b.and(off0, 1023);
            let sh = b.shl(off, 2);
            let a = b.add(p, sh);
            let v = b.load(a, 0);
            let w = b.add(v, i);
            b.store(w, a, 0);
            let t = b.add(acc, w);
            b.assign(acc, t);
        } else {
            let sq = b.mul(i, i);
            let x = b.xor(acc, sq);
            b.assign(acc, x);
        }
    });
    b.ret(acc);
    let id = mb.add(b.finish());
    mb.entry(id);
    (name.to_string(), mb.finish())
}

/// The per-binary fixture: a small sweep dataset and a snapshot trained
/// on it, built once and cloned out.
pub fn fixture() -> (Dataset, Snapshot) {
    static FIXTURE: OnceLock<(Dataset, Snapshot)> = OnceLock::new();
    FIXTURE
        .get_or_init(|| {
            let ds = generate(
                &[program("mem1", true), program("alu1", false)],
                &GenOptions {
                    scale: SweepScale {
                        n_uarch: 2,
                        n_opts: 8,
                    },
                    seed: 7,
                    extended_space: false,
                    threads: 2,
                },
            );
            let snap = Snapshot::train(&ds, &TrainOptions::default());
            (ds, snap)
        })
        .clone()
}

/// A feature request whose id encodes (client, sequence) so a reply
/// delivered to the wrong client — or out of order — is immediately
/// identifiable: `id = client * 100_000 + seq`.
pub fn request_line(ds: &Dataset, client: u64, seq: u64) -> String {
    let req = ServeRequest {
        id: Some(client * 100_000 + seq),
        input: portopt_serve::RequestInput::Features(
            ds.features[(client as usize + seq as usize) % ds.n_programs()]
                [seq as usize % ds.n_uarchs()]
            .values
            .clone(),
        ),
        uarch: ds.uarchs[seq as usize % ds.n_uarchs()],
        apply: false,
    };
    serde_json::to_string(&req).unwrap()
}

/// Binds a listener, spawns `run_concurrent` on a fresh service built by
/// `build`, and returns the address plus the join handle yielding the
/// shutdown stats (send `{"shutdown": true}` to stop it).
pub fn spawn_server(
    build: impl FnOnce(Snapshot) -> PredictionService + Send + 'static,
    opts: portopt_serve::ServeOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<ServiceStats>) {
    let (_, snap) = fixture();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let service = build(snap);
        service.run_concurrent(listener, &opts).unwrap()
    });
    (addr, handle)
}

/// Sends the shutdown sentinel on a fresh connection.
pub fn shutdown(addr: std::net::SocketAddr) {
    use std::io::Write;
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"{\"shutdown\": true}\n").unwrap();
}
