//! Property test: hot reloads interleaved with in-flight batches never
//! split a batch across snapshot versions, and versions only move
//! forward. The schedule (how many requests, where the reloads land,
//! when drains happen) is generated per case; a failure reports the
//! generating seed.

mod common;

use common::{fixture, request_line};
use portopt_serve::{LineAction, PredictionService, ServiceStats, Snapshot, LOCAL_CONN};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The snapshot artifact on disk, saved once per test binary — reloads
/// re-read this file, bumping the served version each time.
fn snapshot_path() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let (_, snap) = fixture();
        let dir =
            std::env::temp_dir().join(format!("portopt-serve-reload-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        snap.save(&path).unwrap();
        path
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of requests, `{"cmd":"reload"}` and batch
    /// drains: every drained batch is answered by exactly one snapshot
    /// version, versions are monotone non-decreasing across batches, and
    /// the final version equals 1 + the number of acknowledged reloads.
    #[test]
    fn reloads_never_split_a_batch_and_versions_only_advance(
        n_requests in 1usize..32,
        reload_one_in in 2u64..6,
        drain_one_in in 3u64..8,
        seed in 0u64..10_000,
    ) {
        let (ds, _) = fixture();
        let path = snapshot_path();
        let snap = Snapshot::load(path).unwrap();
        let service = PredictionService::new(snap, 2).with_reload_path(path);

        let mut schedule = portopt_serve::testkit::ChaosRng::new(seed.max(1));
        let mut stats = ServiceStats::default();
        let mut reloads_acked = 0u64;
        let mut last_batch_version = 1u64;

        for seq in 0..n_requests {
            match service.classify_and_submit(
                LOCAL_CONN,
                &request_line(&ds, 1, seq as u64),
            ) {
                LineAction::Queued => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "request {seq} not queued: {other:?}"
                    )))
                }
            }
            if schedule.one_in(reload_one_in) {
                match service.classify_and_submit(LOCAL_CONN, r#"{"cmd":"reload"}"#) {
                    LineAction::Reload(Ok(v)) => {
                        reloads_acked += 1;
                        prop_assert_eq!(v, 1 + reloads_acked, "versions must step by one");
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "reload not acknowledged: {other:?}"
                        )))
                    }
                }
            }
            if schedule.one_in(drain_one_in) && service.pending() > 0 {
                let replies = service.drain(&mut stats);
                let versions: Vec<u64> =
                    replies.iter().map(|r| r.snapshot_version).collect();
                prop_assert!(
                    versions.windows(2).all(|w| w[0] == w[1]),
                    "a batch split across versions: {:?}", versions
                );
                let batch_version = versions[0];
                prop_assert!(
                    batch_version >= last_batch_version,
                    "version went backwards: {} -> {}",
                    last_batch_version, batch_version
                );
                prop_assert!(
                    batch_version <= 1 + reloads_acked,
                    "batch served by a version that does not exist yet"
                );
                last_batch_version = batch_version;
            }
        }

        // Final drain answers everything left, on the newest version.
        let replies = service.drain(&mut stats);
        if let Some(first) = replies.first() {
            prop_assert!(
                replies.iter().all(|r| r.snapshot_version == first.snapshot_version),
                "final batch split across versions"
            );
            prop_assert_eq!(first.snapshot_version, 1 + reloads_acked);
        }
        prop_assert_eq!(stats.requests, n_requests as u64, "every request answered once");
        prop_assert_eq!(stats.errors, 0u64);
        prop_assert_eq!(service.pending(), 0usize);
        prop_assert_eq!(service.metrics().inflight(), 0u64);
        prop_assert_eq!(
            service.current_snapshot().version,
            1 + reloads_acked,
            "one version bump per acknowledged reload"
        );
    }

    /// The concurrent variant: a reloader thread hammers `reload` while
    /// the main thread submits and drains. Same invariants, now with real
    /// in-flight interleaving instead of a scripted one.
    #[test]
    fn concurrent_reloads_leave_batches_whole(
        n_batches in 1usize..6,
        per_batch in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let (ds, _) = fixture();
        let path = snapshot_path();
        let snap = Snapshot::load(path).unwrap();
        let service = PredictionService::new(snap, 2).with_reload_path(path);
        let _ = seed; // reserved: the schedule below is time-driven

        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut violations: Vec<String> = Vec::new();
        std::thread::scope(|s| {
            let service_ref = &service;
            let stop_ref = &stop;
            let reloader = s.spawn(move || {
                let mut acked = 0u64;
                while !stop_ref.load(std::sync::atomic::Ordering::Acquire) {
                    if let LineAction::Reload(Ok(_)) =
                        service_ref.classify_and_submit(LOCAL_CONN, r#"{"cmd":"reload"}"#)
                    {
                        acked += 1;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                acked
            });

            let mut stats = ServiceStats::default();
            let mut last_version = 1u64;
            for b in 0..n_batches {
                for i in 0..per_batch {
                    service.submit_line(&request_line(&ds, 1, (b * per_batch + i) as u64));
                }
                let replies = service.drain(&mut stats);
                let versions: Vec<u64> = replies.iter().map(|r| r.snapshot_version).collect();
                if !versions.windows(2).all(|w| w[0] == w[1]) {
                    violations.push(format!("batch {b} split: {versions:?}"));
                }
                if versions[0] < last_version {
                    violations.push(format!(
                        "batch {b} went backwards: {} -> {}",
                        last_version, versions[0]
                    ));
                }
                last_version = versions[0];
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
            let acked = reloader.join().unwrap();
            if service.current_snapshot().version != 1 + acked {
                violations.push(format!(
                    "version {} != 1 + {acked} acked reloads",
                    service.current_snapshot().version
                ));
            }
        });
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }
}
