//! Snapshot round-trip pins for the blocked SoA feature matrix.
//!
//! The matrix is a *derived* index over the model's training points: it
//! must never appear in the snapshot wire format (old format-v1 artifacts
//! have no such field and must keep loading), and a loader must rebuild
//! it bit-identically so a reloaded snapshot predicts exactly what the
//! freshly trained one did.

mod common;

use common::fixture;
use portopt_serve::Snapshot;

#[test]
fn snapshot_round_trip_rebuilds_the_soa_matrix() {
    let (ds, snap) = fixture();
    let bytes = snap.to_bytes().unwrap();

    // Wire-format stability: the derived matrix is rebuilt at load time,
    // not serialized — a `matrix` key here would bump the format and
    // orphan every existing snapshot.
    let text = std::str::from_utf8(&bytes).unwrap();
    assert!(
        !text.contains("\"matrix\""),
        "derived SoA matrix leaked into the snapshot wire format"
    );

    let back = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(back.meta, snap.meta);
    // `KnnModel`'s PartialEq covers the derived matrix too, so equality
    // proves the loader rebuilt it identically from the decoded points —
    // including the block padding lanes.
    assert_eq!(back.compiler.knn().unwrap(), snap.compiler.knn().unwrap());
    let matrix = back.compiler.knn().unwrap().matrix();
    assert_eq!(matrix.n_points(), back.compiler.model().len());

    // And the reloaded model predicts byte-for-byte what the original
    // does, over every feature vector in the training sweep.
    for p in 0..ds.n_programs() {
        for u in 0..ds.n_uarchs() {
            let x = &ds.features[p][u];
            assert_eq!(back.compiler.predict(x), snap.compiler.predict(x));
            assert_eq!(
                back.compiler.model().predict(&x.values),
                snap.compiler.model().predict(&x.values)
            );
        }
    }
}

/// A hand-built "old" snapshot — same JSON but with the model object
/// containing only the source fields in a different key order — still
/// loads: the decoder reads fields by name and derives the rest.
#[test]
fn snapshot_loader_tolerates_reordered_model_fields() {
    let (ds, snap) = fixture();
    let bytes = snap.to_bytes().unwrap();
    let doc: serde::Value = serde_json::from_slice(&bytes).unwrap();
    let reordered = reorder_objects(&doc);
    let rebuilt = serde_json::to_vec(&reordered).unwrap();
    assert_ne!(bytes, rebuilt, "reordering should have changed the bytes");
    let back = Snapshot::from_bytes(&rebuilt).unwrap();
    let x = &ds.features[0][0];
    assert_eq!(back.compiler.predict(x), snap.compiler.predict(x));
}

/// Recursively reverses the field order of every JSON object.
fn reorder_objects(v: &serde::Value) -> serde::Value {
    match v {
        serde::Value::Object(fields) => serde::Value::Object(
            fields
                .iter()
                .rev()
                .map(|(k, val)| (k.clone(), reorder_objects(val)))
                .collect(),
        ),
        serde::Value::Array(items) => {
            serde::Value::Array(items.iter().map(reorder_objects).collect())
        }
        other => other.clone(),
    }
}
