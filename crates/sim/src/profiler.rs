//! The profiling functional simulator.
//!
//! Executes a compiled [`CodeImage`] once, collecting the
//! microarchitecture-independent [`ExecProfile`]: block execution counts,
//! branch statistics, and exact LRU reuse-distance histograms for the
//! instruction stream, the data stream (at every candidate block size) and
//! the branch-PC stream. This is the `portopt` equivalent of running the
//! program once on real hardware and reading the counters afterwards.

use crate::flatsd::FlatStackDistance;
use crate::profile::{ExecProfile, BLOCK_SIZES};
use portopt_ir::interp::{ExecError, ExecLimits};
use portopt_ir::{FuncId, Inst, Module, Operand};
use portopt_passes::{CodeImage, TermKind};
use portopt_uarch::{BranchStats, ReuseHistogram};

/// Runs `img` (produced from `module`) and collects its profile.
///
/// `module` supplies global initialisers; `args` are passed to the entry
/// function.
///
/// # Errors
/// Returns the interpreter's [`ExecError`] on runaway execution, stack
/// overflow or wild addresses.
pub fn profile(
    img: &CodeImage,
    module: &Module,
    args: &[i64],
    limits: ExecLimits,
) -> Result<ExecProfile, ExecError> {
    let mut st = ProfState::new(img, module, limits);
    let ret = st.call(img.entry, args, Module::STACK_BASE as i64, 0)?;

    let mut prof = st.prof;
    prof.ret = ret.unwrap_or(0);
    prof.mem_hash = hash_globals(&st.mem, module);
    for (h, sd) in prof.icache_reuse.iter_mut().zip(&mut st.isd) {
        let _ = (h, sd); // histograms already filled incrementally
    }
    Ok(prof)
}

fn hash_globals(mem: &[i64], m: &Module) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for a in m.global_addrs() {
        let base = (a.base / 4) as usize;
        for w in &mem[base..base + (a.bytes / 4) as usize] {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
    }
    h
}

struct ProfState<'a> {
    img: &'a CodeImage,
    mem: Vec<i64>,
    fuel: u64,
    max_depth: usize,
    prof: ExecProfile,
    /// Stack-distance trackers for the data stream, per block size.
    dsd: Vec<FlatStackDistance>,
    /// Stack-distance trackers for the instruction stream, per block size.
    isd: Vec<FlatStackDistance>,
    /// Branch-PC stream tracker.
    bsd: FlatStackDistance,
    /// Previous direction per branch site (for transition counts).
    prev_dir: Vec<Option<bool>>,
    /// Global block-index offset per function.
    block_offset: Vec<usize>,
}

impl<'a> ProfState<'a> {
    fn new(img: &'a CodeImage, module: &Module, limits: ExecLimits) -> Self {
        let mut mem = vec![0i64; (Module::STACK_BASE / 4) as usize];
        for (g, a) in module.globals.iter().zip(module.global_addrs()) {
            let base = (a.base / 4) as usize;
            mem[base..base + g.init.len()].copy_from_slice(&g.init);
        }
        let code_end = (portopt_passes::CODE_BASE + img.code_bytes) as usize;
        let mut block_offset = Vec::with_capacity(img.funcs.len());
        let mut total_blocks = 0usize;
        for f in &img.funcs {
            block_offset.push(total_blocks);
            total_blocks += f.func.blocks.len();
        }
        let mut prof = ExecProfile {
            block_counts: img
                .funcs
                .iter()
                .map(|f| vec![0u64; f.func.blocks.len()])
                .collect(),
            branch_stats: vec![BranchStats::default(); total_blocks],
            icache_reuse: BLOCK_SIZES.iter().map(|_| ReuseHistogram::new()).collect(),
            dcache_reuse: BLOCK_SIZES.iter().map(|_| ReuseHistogram::new()).collect(),
            ..ExecProfile::default()
        };
        prof.branch_pc_reuse = ReuseHistogram::new();
        ProfState {
            img,
            mem,
            fuel: limits.fuel,
            max_depth: limits.max_depth,
            prof,
            dsd: BLOCK_SIZES
                .iter()
                .map(|&bs| FlatStackDistance::new((Module::STACK_BASE / bs) as usize + 1))
                .collect(),
            isd: BLOCK_SIZES
                .iter()
                .map(|&bs| FlatStackDistance::new(code_end / bs as usize + 2))
                .collect(),
            bsd: FlatStackDistance::new(code_end / 4 + 2),
            prev_dir: vec![None; total_blocks],
            block_offset,
        }
    }

    #[inline]
    fn data_access(&mut self, addr: i64) {
        self.prof.dcache_word_accesses += 1;
        for (k, &bs) in BLOCK_SIZES.iter().enumerate() {
            let d = self.dsd[k].access((addr as u64 / bs as u64) as usize);
            self.prof.dcache_reuse[k].record(d);
        }
    }

    #[inline]
    fn fetch_range(&mut self, start: u32, end: u32) {
        for (k, &bs) in BLOCK_SIZES.iter().enumerate() {
            let first = start / bs;
            let last = (end - 1) / bs;
            for line in first..=last {
                let d = self.isd[k].access(line as usize);
                self.prof.icache_reuse[k].record(d);
            }
        }
    }

    #[inline]
    fn branch_pc(&mut self, pc: u32) {
        let d = self.bsd.access((pc / 4) as usize);
        self.prof.branch_pc_reuse.record(d);
    }

    #[inline]
    fn load(&mut self, addr: i64) -> Result<i64, ExecError> {
        let idx = addr >> 2;
        if addr < 0 || idx as usize >= self.mem.len() {
            // Non-trapping wild load (speculative path): reads 0. The
            // access still occupies the memory pipe but touches no
            // modelled line.
            self.prof.dcache_word_accesses += 1;
            return Ok(0);
        }
        self.data_access(addr);
        Ok(self.mem[idx as usize])
    }

    #[inline]
    fn store(&mut self, addr: i64, val: i64) -> Result<(), ExecError> {
        let idx = addr >> 2;
        if addr < 0 || idx as usize >= self.mem.len() {
            return Err(ExecError::BadAddress { addr });
        }
        self.data_access(addr);
        self.mem[idx as usize] = val;
        Ok(())
    }

    fn call(
        &mut self,
        fid: FuncId,
        args: &[i64],
        sp: i64,
        depth: usize,
    ) -> Result<Option<i64>, ExecError> {
        if depth >= self.max_depth {
            return Err(ExecError::StackOverflow);
        }
        let mf = &self.img.funcs[fid.index()];
        let f = &mf.func;
        let frame_bytes = (f.frame_slots as i64) * 4;
        let fp = sp - frame_bytes;
        if fp < Module::DATA_BASE as i64 {
            return Err(ExecError::StackOverflow);
        }
        let mut regs = vec![0i64; f.vreg_count as usize];
        for (p, v) in f.params.iter().zip(args) {
            regs[p.index()] = *v;
        }

        let mut bi = f.entry();
        let mut by_fallthrough = false;
        loop {
            let gbi = self.block_offset[fid.index()] + bi.index();
            self.prof.block_counts[fid.index()][bi.index()] += 1;
            let lay = mf.layout[bi.index()];
            // Instruction fetch: the block's bytes, plus its alignment pad
            // when entered by fall-through (sequential fetch rolls through
            // the padding nops).
            if lay.bytes > 0 || (by_fallthrough && lay.pad > 0) {
                let start = if by_fallthrough {
                    lay.addr - lay.pad
                } else {
                    lay.addr
                };
                let end = (lay.addr + lay.bytes).max(start + 1);
                self.fetch_range(start, end);
            }
            if by_fallthrough {
                self.prof.pad_fetches += (lay.pad / 4) as u64;
            }

            let block = &f.blocks[bi.index()];
            let body_len = block.body().len();
            if self.fuel < (body_len as u64 + 2) {
                return Err(ExecError::FuelExhausted);
            }
            self.fuel -= body_len as u64 + 1;
            self.prof.dyn_insts += body_len as u64;

            let val = |o: &Operand, regs: &[i64]| -> i64 {
                match o {
                    Operand::Reg(r) => regs[r.index()],
                    Operand::Imm(v) => *v,
                }
            };

            // Execute the body.
            for inst in block.body() {
                let mut reads = 0u64;
                inst.for_each_use(|_| reads += 1);
                self.prof.ops.reg_reads += reads;
                if inst.def().is_some() {
                    self.prof.ops.reg_writes += 1;
                }
                match inst {
                    Inst::Bin { op, dst, a, b } => {
                        if op.is_long_latency() {
                            self.prof.ops.div += 1;
                        } else if op.uses_mac() {
                            self.prof.ops.mac += 1;
                        } else if op.uses_shifter() {
                            self.prof.ops.shift += 1;
                        } else {
                            self.prof.ops.alu += 1;
                        }
                        regs[dst.index()] = op.eval(val(a, &regs), val(b, &regs));
                    }
                    Inst::Cmp { pred, dst, a, b } => {
                        self.prof.ops.alu += 1;
                        regs[dst.index()] = pred.eval(val(a, &regs), val(b, &regs));
                    }
                    Inst::Copy { dst, src } => {
                        self.prof.ops.alu += 1;
                        regs[dst.index()] = val(src, &regs);
                    }
                    Inst::Load { dst, addr, offset } => {
                        self.prof.ops.loads += 1;
                        regs[dst.index()] = self.load(regs[addr.index()].wrapping_add(*offset))?;
                    }
                    Inst::Store { src, addr, offset } => {
                        self.prof.ops.stores += 1;
                        let v = val(src, &regs);
                        self.store(regs[addr.index()].wrapping_add(*offset), v)?;
                    }
                    Inst::FrameLoad { dst, slot } => {
                        self.prof.ops.loads += 1;
                        regs[dst.index()] = self.load(fp + (*slot as i64) * 4)?;
                    }
                    Inst::FrameStore { src, slot } => {
                        self.prof.ops.stores += 1;
                        let v = val(src, &regs);
                        self.store(fp + (*slot as i64) * 4, v)?;
                    }
                    Inst::Call {
                        func,
                        args: cargs,
                        dst,
                    } => {
                        self.prof.ops.calls += 1;
                        self.prof.taken_transfers += 1;
                        // The call instruction's PC: position within the
                        // block is approximated by the block start (calls
                        // occupy BTB entries; set conflicts are what matter).
                        self.branch_pc(lay.addr);
                        let argv: Vec<i64> = cargs.iter().map(|a| val(a, &regs)).collect();
                        let r = self.call(*func, &argv, fp, depth + 1)?;
                        if let Some(d) = dst {
                            regs[d.index()] = r.unwrap_or(0);
                        }
                    }
                    Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. } => {
                        unreachable!("terminator in body")
                    }
                }
            }

            // Terminator.
            let term_pc = lay.addr + lay.bytes.saturating_sub(4);
            match block.insts.last() {
                Some(Inst::Ret { val: v }) => {
                    self.prof.dyn_insts += 1;
                    self.prof.ops.rets += 1;
                    self.prof.taken_transfers += 1;
                    self.branch_pc(term_pc);
                    let out = v.as_ref().map(|o| val(o, &regs));
                    // Return-value register reads count too.
                    if v.as_ref().and_then(|o| o.as_reg()).is_some() {
                        self.prof.ops.reg_reads += 1;
                    }
                    return Ok(out);
                }
                Some(Inst::Br { target }) => {
                    match lay.term {
                        TermKind::Fall => {
                            by_fallthrough = true;
                        }
                        _ => {
                            self.prof.dyn_insts += 1;
                            self.prof.ops.jumps += 1;
                            self.prof.taken_transfers += 1;
                            self.branch_pc(term_pc);
                            by_fallthrough = false;
                        }
                    }
                    bi = *target;
                }
                Some(Inst::CondBr { cond, then_, else_ }) => {
                    self.prof.ops.reg_reads += 1;
                    let c = regs[cond.index()] != 0;
                    let target = if c { *then_ } else { *else_ };
                    // The conditional branch instruction itself.
                    let cond_pc = if lay.term == TermKind::CondTwoJumps {
                        lay.addr + lay.bytes - 8
                    } else {
                        term_pc
                    };
                    let taken = match lay.term {
                        TermKind::CondFall => target == *then_,
                        TermKind::CondFlip => target == *else_,
                        TermKind::CondTwoJumps => target == *then_,
                        _ => unreachable!("condbr lowered to non-cond term"),
                    };
                    self.prof.dyn_insts += 1;
                    self.prof.ops.cond_branches += 1;
                    self.branch_pc(cond_pc);
                    let prev = self.prev_dir[gbi];
                    self.prof.branch_stats[gbi].record(taken, prev);
                    self.prev_dir[gbi] = Some(taken);
                    if taken {
                        self.prof.taken_transfers += 1;
                        by_fallthrough = false;
                    } else if lay.term == TermKind::CondTwoJumps {
                        // Fell past the conditional into the unconditional
                        // jump to `else_`.
                        self.prof.dyn_insts += 1;
                        self.prof.ops.jumps += 1;
                        self.prof.taken_transfers += 1;
                        self.branch_pc(term_pc);
                        by_fallthrough = false;
                    } else {
                        by_fallthrough = true;
                    }
                    bi = target;
                }
                _ => return Err(ExecError::FellThrough),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;
    use portopt_ir::{FuncBuilder, ModuleBuilder};
    use portopt_passes::{compile, OptConfig};

    fn walker(n_words: u32, reps: i64) -> Module {
        let mut mb = ModuleBuilder::new("walker");
        let (_, base) = mb.global("buf", n_words);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, reps, 1, |b, _r| {
            b.counted_loop(0, n_words as i64, 1, |b, i| {
                let off = b.shl(i, 2);
                let a = b.add(p, off);
                let v = b.load(a, 0);
                let w = b.add(v, 1);
                b.store(w, a, 0);
                let t = b.add(acc, w);
                b.assign(acc, t);
            });
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn profile_matches_reference_semantics() {
        let m = walker(64, 3);
        let reference = run_module(&m, &[]).unwrap();
        let img = compile(&m, &OptConfig::o0());
        let p = profile(&img, &m, &[], ExecLimits::default()).unwrap();
        assert_eq!(p.ret, reference.ret);
        assert_eq!(p.mem_hash, reference.mem_hash);
    }

    #[test]
    fn counts_are_consistent() {
        let m = walker(64, 3);
        let img = compile(&m, &OptConfig::o0());
        let p = profile(&img, &m, &[], ExecLimits::default()).unwrap();
        // 64 words touched 3 times: 2*64*3 word accesses (load+store).
        assert_eq!(p.dcache_word_accesses, 2 * 64 * 3);
        assert_eq!(p.ops.loads, 64 * 3);
        assert_eq!(p.ops.stores, 64 * 3);
        // Branch sites: inner and outer loop headers execute.
        let hot: Vec<&BranchStats> = p.branch_stats.iter().filter(|s| s.execs > 0).collect();
        assert!(hot.len() >= 2);
        // The inner loop header runs (64+1)*3 times. Its machine branch is
        // lowered as CondFlip (body is the fall-through), so it is *taken*
        // only on the 3 loop exits — layout determines taken-ness.
        let inner = hot.iter().max_by_key(|s| s.execs).unwrap();
        assert_eq!(inner.execs, 65 * 3);
        assert_eq!(inner.taken, 3);
        assert!(inner.transitions <= 2 * 3 + 1);
        // Block counts sum: entry executed once.
        assert_eq!(p.block_counts[0][0], 1);
    }

    #[test]
    fn dcache_reuse_sees_working_set() {
        // 4KB working set = 1024 words; with 8-byte blocks = 512 blocks.
        let m = walker(1024, 4);
        let img = compile(&m, &OptConfig::o0());
        let p = profile(&img, &m, &[], ExecLimits::default()).unwrap();
        // A cache with plenty of space (4096 sets x 4 ways x 8B) holds it.
        let big = p.dcache_misses(4096, 4, 8);
        // Cold misses only: 512 blocks.
        assert!(big < 600.0, "big: {big}");
        // A 32-set x 4-way x 8B cache (1KB) thrashes on a 8KB working set.
        let small = p.dcache_misses(32, 4, 8);
        assert!(small > 2000.0, "small: {small}");
        // Bigger blocks mean fewer accesses.
        assert!(p.icache_accesses(64) < p.icache_accesses(8));
    }

    #[test]
    fn fuel_limit_enforced() {
        let m = walker(64, 1_000_000);
        let img = compile(&m, &OptConfig::o0());
        let e = profile(
            &img,
            &m,
            &[],
            ExecLimits {
                fuel: 10_000,
                max_depth: 16,
            },
        )
        .unwrap_err();
        assert_eq!(e, ExecError::FuelExhausted);
    }

    #[test]
    fn unrolling_cuts_dynamic_branches() {
        let m = walker(256, 4);
        let img0 = compile(&m, &OptConfig::o0());
        let unrolled = OptConfig {
            unroll_loops: true,
            ..OptConfig::o1()
        };
        let img_u = compile(&m, &unrolled);
        let p0 = profile(&img0, &m, &[], ExecLimits::default()).unwrap();
        let pu = profile(&img_u, &m, &[], ExecLimits::default()).unwrap();
        assert_eq!(p0.ret, pu.ret);
        assert!(pu.dyn_insts < p0.dyn_insts);
        assert!(pu.ops.cond_branches < p0.ops.cond_branches);
    }

    #[test]
    fn o3_preserves_semantics_with_different_cost() {
        // O3 is NOT uniformly better (the paper's premise): it must agree
        // semantically; its instruction count may go either way.
        let m = walker(256, 4);
        let img0 = compile(&m, &OptConfig::o0());
        let img3 = compile(&m, &OptConfig::o3());
        let p0 = profile(&img0, &m, &[], ExecLimits::default()).unwrap();
        let p3 = profile(&img3, &m, &[], ExecLimits::default()).unwrap();
        assert_eq!(p0.ret, p3.ret);
        assert_eq!(p0.mem_hash, p3.mem_hash);
        assert!(p3.dyn_insts > 0);
    }
}
