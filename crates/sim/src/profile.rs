//! Execution profiles: everything the fast timing model needs, collected in
//! a single functional run of a compiled binary.
//!
//! A profile is microarchitecture-independent — it depends only on the
//! program and the optimisation setting that produced the binary — so one
//! profiling run is reused across all 200 microarchitecture configurations,
//! exactly the property that makes the paper's 7-million-point design-space
//! sweep tractable.

use portopt_uarch::{BranchStats, ReuseHistogram};
use serde::{Deserialize, Serialize};

/// Cache block sizes for which reuse histograms are collected (Table 2's
/// block-size menu).
pub const BLOCK_SIZES: [u32; 4] = [8, 16, 32, 64];

/// Index of `bs` in [`BLOCK_SIZES`].
///
/// # Panics
/// Panics if `bs` is not in the menu.
pub fn block_size_index(bs: u32) -> usize {
    BLOCK_SIZES
        .iter()
        .position(|&b| b == bs)
        .expect("block size outside Table 2 menu")
}

/// Dynamic operation counts (for the Table 1 usage counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Plain ALU operations (arithmetic, compares, copies).
    pub alu: u64,
    /// Multiply (MAC-unit) operations.
    pub mac: u64,
    /// Shifter operations.
    pub shift: u64,
    /// Long-latency div/rem operations.
    pub div: u64,
    /// Loads (global + frame).
    pub loads: u64,
    /// Stores (global + frame).
    pub stores: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Unconditional jumps executed (emitted ones only).
    pub jumps: u64,
    /// Calls executed.
    pub calls: u64,
    /// Returns executed.
    pub rets: u64,
    /// Register-file reads.
    pub reg_reads: u64,
    /// Register-file writes.
    pub reg_writes: u64,
}

/// The profile of one program run.
///
/// `PartialEq` is part of the profile-cache contract: a warm sweep must
/// price from a profile *equal* to the one a cold run would collect, and
/// the cache tests assert exactly that.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecProfile {
    /// Executed (emitted) machine instructions.
    pub dyn_insts: u64,
    /// Alignment-padding words fetched on fall-through into padded blocks.
    pub pad_fetches: u64,
    /// `block_counts[func][block]` execution counts.
    pub block_counts: Vec<Vec<u64>>,
    /// Per-branch-site statistics, indexed by global block index (the site
    /// is the conditional branch ending that block).
    pub branch_stats: Vec<BranchStats>,
    /// Reuse distances over branch PCs (BTB residency model).
    pub branch_pc_reuse: ReuseHistogram,
    /// Dynamic taken control transfers (cond-taken + jumps + calls + rets).
    pub taken_transfers: u64,
    /// Instruction-stream reuse histograms, one per [`BLOCK_SIZES`] entry.
    pub icache_reuse: Vec<ReuseHistogram>,
    /// Data-stream reuse histograms, one per [`BLOCK_SIZES`] entry.
    pub dcache_reuse: Vec<ReuseHistogram>,
    /// Data accesses (word granularity: loads + stores).
    pub dcache_word_accesses: u64,
    /// Dynamic operation mix.
    pub ops: OpCounts,
    /// Program result (checksum) — for differential testing.
    pub ret: i64,
    /// Hash of final global memory — for differential testing.
    pub mem_hash: u64,
}

impl ExecProfile {
    /// Instruction-cache line accesses at block size `bs`.
    pub fn icache_accesses(&self, bs: u32) -> u64 {
        self.icache_reuse[block_size_index(bs)].accesses()
    }

    /// Expected icache misses for a geometry.
    pub fn icache_misses(&self, sets: u32, assoc: u32, bs: u32) -> f64 {
        self.icache_reuse[block_size_index(bs)].expected_misses(sets, assoc)
    }

    /// Expected dcache misses for a geometry.
    pub fn dcache_misses(&self, sets: u32, assoc: u32, bs: u32) -> f64 {
        self.dcache_reuse[block_size_index(bs)].expected_misses(sets, assoc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_indexing() {
        assert_eq!(block_size_index(8), 0);
        assert_eq!(block_size_index(64), 3);
    }

    #[test]
    #[should_panic(expected = "outside Table 2")]
    fn bad_block_size_panics() {
        block_size_index(128);
    }
}
