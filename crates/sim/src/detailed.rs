//! The detailed cycle-level simulator — the `Xtrem` stand-in.
//!
//! Executes a [`CodeImage`] instruction by instruction against *stateful*
//! cache arrays (true LRU, set-associative), a BTB with 2-bit counters and
//! an in-order scoreboarded pipeline. It is orders of magnitude slower than
//! the first-order model in [`crate::timing`] and exists to validate it:
//! tests assert that the fast model tracks this reference on miss rates
//! and on relative cycle counts across configurations.

use portopt_ir::interp::{ExecError, ExecLimits};
use portopt_ir::{FuncId, Inst, Module, Operand};
use portopt_passes::{CodeImage, TermKind};
use portopt_uarch::{latencies, Latencies, MicroArch, PerfCounters};

/// A true-LRU set-associative cache model.
#[derive(Debug, Clone)]
struct Cache {
    sets: u32,
    assoc: u32,
    block: u32,
    /// tags[set] = (tag, last-used stamp)
    tags: Vec<Vec<(u64, u64)>>,
    stamp: u64,
    /// Statistics.
    accesses: u64,
    misses: u64,
}

impl Cache {
    fn new(size: u32, assoc: u32, block: u32) -> Self {
        let sets = (size / (block * assoc)).max(1);
        Cache {
            sets,
            assoc,
            block,
            tags: vec![Vec::new(); sets as usize],
            stamp: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns `true` on hit.
    fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.stamp += 1;
        let blk = addr / self.block as u64;
        let set = (blk % self.sets as u64) as usize;
        let tag = blk / self.sets as u64;
        let ways = &mut self.tags[set];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.stamp;
            return true;
        }
        self.misses += 1;
        if ways.len() as u32 >= self.assoc {
            // Evict LRU.
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty ways");
            ways.remove(lru);
        }
        ways.push((tag, self.stamp));
        false
    }
}

/// BTB with per-entry 2-bit saturating direction counters.
#[derive(Debug, Clone)]
struct Btb {
    sets: u32,
    assoc: u32,
    /// entries[set] = (tag, counter, stamp)
    entries: Vec<Vec<(u64, u8, u64)>>,
    stamp: u64,
}

impl Btb {
    fn new(n_entries: u32, assoc: u32) -> Self {
        let sets = (n_entries / assoc).max(1);
        Btb {
            sets,
            assoc,
            entries: vec![Vec::new(); sets as usize],
            stamp: 0,
        }
    }

    /// Looks up the branch at `pc`, predicts, then updates with the actual
    /// direction. Returns `true` when the prediction was correct.
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.stamp += 1;
        let idx = pc / 4;
        let set = (idx % self.sets as u64) as usize;
        let tag = idx / self.sets as u64;
        let ways = &mut self.entries[set];
        if let Some(e) = ways.iter_mut().find(|(t, _, _)| *t == tag) {
            e.2 = self.stamp;
            let predicted = e.1 >= 2;
            e.1 = match (e.1, taken) {
                (c, true) => (c + 1).min(3),
                (0, false) => 0,
                (c, false) => c - 1,
            };
            predicted == taken
        } else {
            // BTB miss: static not-taken. Allocate on taken branches.
            if taken {
                if ways.len() as u32 >= self.assoc {
                    let lru = ways
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, _, s))| *s)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    ways.remove(lru);
                }
                ways.push((tag, 2, self.stamp));
            }
            !taken
        }
    }
}

/// Outcome of a detailed simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedResult {
    /// Simulated execution cycles.
    pub cycles: u64,
    /// Executed machine instructions.
    pub dyn_insts: u64,
    /// Program return value.
    pub ret: i64,
    /// Measured counters.
    pub counters: PerfCounters,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
}

struct Machine<'a> {
    img: &'a CodeImage,
    cfg: &'a MicroArch,
    lat: Latencies,
    mem: Vec<i64>,
    icache: Cache,
    dcache: Cache,
    btb: Btb,
    cycles: u64,
    dyn_insts: u64,
    pad_fetches: u64,
    mispredicts: u64,
    taken: u64,
    bpred_accesses: u64,
    alu: u64,
    mac: u64,
    shift: u64,
    reg_reads: u64,
    reg_writes: u64,
    fuel: u64,
    max_depth: usize,
}

impl<'a> Machine<'a> {
    /// Fetches the instruction at `addr`, charging icache behaviour.
    fn fetch(&mut self, addr: u32) {
        if !self.icache.access(addr as u64) {
            self.cycles += self.lat.mem_penalty as u64;
        }
    }

    /// Returns `Ok(None)` for an out-of-range *load* address (non-trapping,
    /// reads 0); `Err` for out-of-range stores.
    fn mem_access(&mut self, addr: i64, is_store: bool) -> Result<Option<usize>, ExecError> {
        let idx = addr >> 2;
        if addr < 0 || idx as usize >= self.mem.len() {
            if is_store {
                return Err(ExecError::BadAddress { addr });
            }
            return Ok(None);
        }
        if !self.dcache.access(addr as u64) {
            self.cycles += self.lat.mem_penalty as u64;
        }
        Ok(Some(idx as usize))
    }

    #[allow(clippy::too_many_lines)]
    fn call(
        &mut self,
        fid: FuncId,
        args: &[i64],
        sp: i64,
        depth: usize,
    ) -> Result<Option<i64>, ExecError> {
        if depth >= self.max_depth {
            return Err(ExecError::StackOverflow);
        }
        let mf = &self.img.funcs[fid.index()];
        let f = &mf.func;
        let fp = sp - (f.frame_slots as i64) * 4;
        if fp < Module::DATA_BASE as i64 {
            return Err(ExecError::StackOverflow);
        }
        let mut regs = vec![0i64; f.vreg_count as usize];
        let mut ready = vec![0u64; f.vreg_count as usize];
        for (p, v) in f.params.iter().zip(args) {
            regs[p.index()] = *v;
        }

        let mut bi = f.entry();
        let mut by_fall = false;
        let width = self.cfg.width.max(1) as u64;
        let mut slot = 0u64;
        loop {
            let lay = mf.layout[bi.index()];
            if by_fall && lay.pad > 0 {
                // Padding nops consume fetch slots.
                self.pad_fetches += (lay.pad / 4) as u64;
                self.cycles += (lay.pad as u64 / 4).div_ceil(width);
                for a in (lay.addr - lay.pad..lay.addr).step_by(4) {
                    self.fetch(a);
                }
            }
            let block = &f.blocks[bi.index()];
            if self.fuel < block.insts.len() as u64 + 2 {
                return Err(ExecError::FuelExhausted);
            }
            self.fuel -= block.insts.len() as u64 + 1;

            let val = |o: &Operand, regs: &[i64]| -> i64 {
                match o {
                    Operand::Reg(r) => regs[r.index()],
                    Operand::Imm(v) => *v,
                }
            };

            let mut pc = lay.addr;
            let mut mem_this_cycle = false;
            let mut mac_this_cycle = false;
            for inst in block.body() {
                self.fetch(pc);
                pc += 4;
                self.dyn_insts += 1;
                // Issue: wait for operands, one slot, structural limits.
                let mut start = self.cycles;
                inst.for_each_use(|r| start = start.max(ready[r.index()]));
                let needs_mem = inst.is_memory();
                let needs_mac = matches!(inst, Inst::Bin { op, .. } if op.uses_mac());
                if start > self.cycles {
                    self.cycles = start;
                    slot = 0;
                    mem_this_cycle = false;
                    mac_this_cycle = false;
                }
                while slot >= width
                    || (needs_mem && mem_this_cycle)
                    || (needs_mac && mac_this_cycle)
                {
                    self.cycles += 1;
                    slot = 0;
                    mem_this_cycle = false;
                    mac_this_cycle = false;
                }
                slot += 1;
                mem_this_cycle |= needs_mem;
                mac_this_cycle |= needs_mac;

                let mut reads = 0;
                inst.for_each_use(|_| reads += 1);
                self.reg_reads += reads;
                if inst.def().is_some() {
                    self.reg_writes += 1;
                }

                let issue = self.cycles;
                match inst {
                    Inst::Bin { op, dst, a, b } => {
                        let latency = if op.is_long_latency() {
                            16
                        } else if op.uses_mac() {
                            self.mac += 1;
                            2
                        } else if op.uses_shifter() {
                            self.shift += 1;
                            1
                        } else {
                            self.alu += 1;
                            1
                        };
                        if op.is_long_latency() {
                            self.alu += 1;
                        }
                        regs[dst.index()] = op.eval(val(a, &regs), val(b, &regs));
                        ready[dst.index()] = issue + latency;
                    }
                    Inst::Cmp { pred, dst, a, b } => {
                        self.alu += 1;
                        regs[dst.index()] = pred.eval(val(a, &regs), val(b, &regs));
                        ready[dst.index()] = issue + 1;
                    }
                    Inst::Copy { dst, src } => {
                        self.alu += 1;
                        regs[dst.index()] = val(src, &regs);
                        ready[dst.index()] = issue + 1;
                    }
                    Inst::Load { dst, addr, offset } => {
                        let a = regs[addr.index()].wrapping_add(*offset);
                        let idx = self.mem_access(a, false)?;
                        regs[dst.index()] = idx.map_or(0, |i| self.mem[i]);
                        ready[dst.index()] = self.cycles + self.lat.dl1_load_use as u64;
                    }
                    Inst::Store { src, addr, offset } => {
                        let a = regs[addr.index()].wrapping_add(*offset);
                        let v = val(src, &regs);
                        let idx = self.mem_access(a, true)?.expect("store checked");
                        self.mem[idx] = v;
                    }
                    Inst::FrameLoad { dst, slot: s } => {
                        let a = fp + (*s as i64) * 4;
                        let idx = self.mem_access(a, false)?;
                        regs[dst.index()] = idx.map_or(0, |i| self.mem[i]);
                        ready[dst.index()] = self.cycles + self.lat.dl1_load_use as u64;
                    }
                    Inst::FrameStore { src, slot: s } => {
                        let a = fp + (*s as i64) * 4;
                        let v = val(src, &regs);
                        let idx = self.mem_access(a, true)?.expect("store checked");
                        self.mem[idx] = v;
                    }
                    Inst::Call {
                        func,
                        args: cargs,
                        dst,
                    } => {
                        self.taken += 1;
                        self.bpred_accesses += 1;
                        self.cycles += self.lat.il1_access as u64; // redirect
                        let argv: Vec<i64> = cargs.iter().map(|a| val(a, &regs)).collect();
                        let r = self.call(*func, &argv, fp, depth + 1)?;
                        if let Some(d) = dst {
                            regs[d.index()] = r.unwrap_or(0);
                            ready[d.index()] = self.cycles + 1;
                        }
                        slot = 0;
                    }
                    _ => unreachable!("terminator in body"),
                }
            }

            // Terminator.
            match block.insts.last() {
                Some(Inst::Ret { val: v }) => {
                    self.fetch(pc);
                    self.dyn_insts += 1;
                    self.taken += 1;
                    self.bpred_accesses += 1;
                    self.cycles += self.lat.il1_access as u64;
                    return Ok(v.as_ref().map(|o| val(o, &regs)));
                }
                Some(Inst::Br { target }) => {
                    match lay.term {
                        TermKind::Fall => by_fall = true,
                        _ => {
                            self.fetch(pc);
                            self.dyn_insts += 1;
                            self.taken += 1;
                            self.bpred_accesses += 1;
                            self.cycles += self.lat.il1_access as u64;
                            by_fall = false;
                        }
                    }
                    bi = *target;
                    slot = 0;
                }
                Some(Inst::CondBr { cond, then_, else_ }) => {
                    self.fetch(pc);
                    self.dyn_insts += 1;
                    self.reg_reads += 1;
                    self.bpred_accesses += 1;
                    // Wait on the condition register.
                    self.cycles = self.cycles.max(ready[cond.index()]);
                    let c = regs[cond.index()] != 0;
                    let target = if c { *then_ } else { *else_ };
                    let taken = match lay.term {
                        TermKind::CondFall => target == *then_,
                        TermKind::CondFlip => target == *else_,
                        TermKind::CondTwoJumps => target == *then_,
                        _ => unreachable!(),
                    };
                    let correct = self.btb.predict_and_update(pc as u64, taken);
                    if !correct {
                        self.mispredicts += 1;
                        self.cycles += self.lat.mispredict as u64;
                    } else if taken {
                        self.cycles += self.lat.il1_access as u64;
                    }
                    if taken {
                        self.taken += 1;
                        by_fall = false;
                    } else if lay.term == TermKind::CondTwoJumps {
                        self.fetch(pc + 4);
                        self.dyn_insts += 1;
                        self.taken += 1;
                        self.bpred_accesses += 1;
                        self.cycles += self.lat.il1_access as u64;
                        by_fall = false;
                    } else {
                        by_fall = true;
                    }
                    bi = target;
                    slot = 0;
                }
                _ => return Err(ExecError::FellThrough),
            }
        }
    }
}

/// Runs the detailed simulation of `img` on `cfg`.
///
/// # Errors
/// Returns the interpreter's [`ExecError`] on runaway execution, stack
/// overflow or wild addresses.
pub fn simulate(
    img: &CodeImage,
    module: &Module,
    cfg: &MicroArch,
    args: &[i64],
    limits: ExecLimits,
) -> Result<DetailedResult, ExecError> {
    let mut mem = vec![0i64; (Module::STACK_BASE / 4) as usize];
    for (g, a) in module.globals.iter().zip(module.global_addrs()) {
        let base = (a.base / 4) as usize;
        mem[base..base + g.init.len()].copy_from_slice(&g.init);
    }
    let mut m = Machine {
        img,
        cfg,
        lat: latencies(cfg),
        mem,
        icache: Cache::new(cfg.il1_size, cfg.il1_assoc, cfg.il1_block),
        dcache: Cache::new(cfg.dl1_size, cfg.dl1_assoc, cfg.dl1_block),
        btb: Btb::new(cfg.btb_entries, cfg.btb_assoc),
        cycles: 0,
        dyn_insts: 0,
        pad_fetches: 0,
        mispredicts: 0,
        taken: 0,
        bpred_accesses: 0,
        alu: 0,
        mac: 0,
        shift: 0,
        reg_reads: 0,
        reg_writes: 0,
        fuel: limits.fuel,
        max_depth: limits.max_depth,
    };
    let ret = m.call(img.entry, args, Module::STACK_BASE as i64, 0)?;
    let cycles = m.cycles.max(1);
    let counters = PerfCounters {
        ipc: m.dyn_insts as f64 / cycles as f64,
        decoder_access_rate: (m.dyn_insts + m.pad_fetches) as f64 / cycles as f64,
        regfile_access_rate: (m.reg_reads + m.reg_writes) as f64 / cycles as f64,
        bpred_access_rate: m.bpred_accesses as f64 / cycles as f64,
        icache_access_rate: m.icache.accesses as f64 / cycles as f64,
        icache_miss_rate: if m.icache.accesses > 0 {
            m.icache.misses as f64 / m.icache.accesses as f64
        } else {
            0.0
        },
        dcache_access_rate: m.dcache.accesses as f64 / cycles as f64,
        dcache_miss_rate: if m.dcache.accesses > 0 {
            m.dcache.misses as f64 / m.dcache.accesses as f64
        } else {
            0.0
        },
        alu_usage: m.alu as f64 / cycles as f64,
        mac_usage: m.mac as f64 / cycles as f64,
        shifter_usage: m.shift as f64 / cycles as f64,
    };
    Ok(DetailedResult {
        cycles,
        dyn_insts: m.dyn_insts,
        ret: ret.unwrap_or(0),
        counters,
        icache_misses: m.icache.misses,
        dcache_misses: m.dcache.misses,
        mispredicts: m.mispredicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile;
    use crate::timing::evaluate;
    use portopt_ir::{FuncBuilder, ModuleBuilder};
    use portopt_passes::{compile, OptConfig};
    use rand::SeedableRng;

    fn workload() -> Module {
        let mut mb = ModuleBuilder::new("wl");
        let (_, base) = mb.global("buf", 4096);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 3, 1, |b, _| {
            b.counted_loop(0, 4096, 1, |b, i| {
                let off = b.shl(i, 2);
                let a = b.add(p, off);
                let v = b.load(a, 0);
                let x = b.mul(v, 3);
                let y = b.add(x, i);
                b.store(y, a, 0);
                let t = b.add(acc, y);
                b.assign(acc, t);
            });
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn detailed_matches_functional_semantics() {
        let m = workload();
        let img = compile(&m, &OptConfig::o2());
        let reference = profile(&img, &m, &[], Default::default()).unwrap();
        let d = simulate(&img, &m, &MicroArch::xscale(), &[], Default::default()).unwrap();
        assert_eq!(d.ret, reference.ret);
        assert_eq!(d.dyn_insts, reference.dyn_insts);
    }

    #[test]
    fn fast_model_tracks_detailed_sim() {
        let m = workload();
        let img = compile(&m, &OptConfig::o2());
        let prof = profile(&img, &m, &[], Default::default()).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let cfgs: Vec<MicroArch> = (0..8)
            .map(|_| portopt_uarch::MicroArchSpace::base().sample(&mut rng))
            .collect();
        let mut fast: Vec<f64> = Vec::new();
        let mut slow: Vec<f64> = Vec::new();
        for c in &cfgs {
            fast.push(evaluate(&img, &prof, c).cycles);
            slow.push(
                simulate(&img, &m, c, &[], Default::default())
                    .unwrap()
                    .cycles as f64,
            );
        }
        // Within a factor of 2 pointwise…
        for (f, s) in fast.iter().zip(&slow) {
            let ratio = f / s;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "fast {f} vs detailed {s} (ratio {ratio})"
            );
        }
        // …and strongly rank-correlated (Spearman via Pearson on ranks).
        let rank = |v: &[f64]| -> Vec<f64> {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap());
            let mut r = vec![0.0; v.len()];
            for (k, &i) in idx.iter().enumerate() {
                r[i] = k as f64;
            }
            r
        };
        let (ra, rb) = (rank(&fast), rank(&slow));
        let n = ra.len() as f64;
        let mean = (n - 1.0) / 2.0;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (a, b) in ra.iter().zip(&rb) {
            num += (a - mean) * (b - mean);
            da += (a - mean) * (a - mean);
            db += (b - mean) * (b - mean);
        }
        let rho = num / (da * db).sqrt();
        assert!(rho > 0.7, "rank correlation {rho}");
    }

    #[test]
    fn cache_lru_behaviour() {
        let mut c = Cache::new(64, 2, 8); // 4 sets x 2 ways
                                          // Fill one set with 2 blocks, then a third evicts the LRU.
        assert!(!c.access(0)); // set 0
        assert!(!c.access(32)); // set 0 (4 sets * 8B = 32 stride)
        assert!(c.access(0)); // hit, refreshes 0
        assert!(!c.access(64)); // evicts 32
        assert!(c.access(0));
        assert!(!c.access(32)); // was evicted
    }

    #[test]
    fn btb_learns_biased_branch() {
        let mut b = Btb::new(16, 1);
        let mut wrong = 0;
        for i in 0..100 {
            let taken = i % 10 != 9;
            if !b.predict_and_update(0x1000, taken) {
                wrong += 1;
            }
        }
        // Biased 90/10: 2-bit counter mispredicts around transitions only.
        assert!(wrong <= 25, "wrong = {wrong}");
    }

    #[test]
    fn mispredicts_hurt() {
        let m = workload();
        let img = compile(&m, &OptConfig::o2());
        let mut tiny_btb = MicroArch::xscale();
        tiny_btb.btb_entries = 128;
        let d1 = simulate(&img, &m, &MicroArch::xscale(), &[], Default::default()).unwrap();
        let d2 = simulate(&img, &m, &tiny_btb, &[], Default::default()).unwrap();
        // Same program: smaller BTB cannot mispredict less.
        assert!(d2.mispredicts >= d1.mispredicts);
    }
}
