//! A fast exact LRU stack-distance tracker over a dense block index space.
//!
//! Same algorithm as `portopt_uarch::StackDistance` (Bennett–Kruskal with a
//! Fenwick tree) but with a flat `last-access` array instead of a hash map,
//! sized once for the address space. The profiler runs four of these per
//! stream (one per candidate block size), so constant factors matter.

/// Flat-array stack-distance tracker.
#[derive(Debug, Clone)]
pub struct FlatStackDistance {
    /// last[block] = time of previous access (0 = never).
    last: Vec<u32>,
    /// Fenwick tree: 1 at slots that are some block's latest access.
    tree: Vec<u32>,
    time: u32,
}

impl FlatStackDistance {
    /// Creates a tracker for block indices `< capacity`.
    pub fn new(capacity: usize) -> Self {
        FlatStackDistance {
            last: vec![0; capacity],
            tree: vec![0; 4096],
            time: 0,
        }
    }

    #[inline]
    fn add(&mut self, mut i: u32, v: i32) {
        let n = self.tree.len() as u32;
        while i < n {
            self.tree[i as usize] = (self.tree[i as usize] as i32 + v) as u32;
            i += i & i.wrapping_neg();
        }
    }

    #[inline]
    fn sum(&self, mut i: u32) -> u32 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i as usize];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Records an access to `block`; returns the stack distance, `None` on
    /// first touch.
    ///
    /// # Panics
    /// Panics if `block` is outside the capacity given at construction.
    #[inline]
    pub fn access(&mut self, block: usize) -> Option<u64> {
        self.time += 1;
        if self.time as usize + 1 >= self.tree.len() {
            self.grow();
        }
        let prev = self.last[block];
        self.last[block] = self.time;
        let dist = if prev == 0 {
            None
        } else {
            let d = self.sum(self.time - 1) - self.sum(prev);
            self.add(prev, -1);
            Some(d as u64)
        };
        self.add(self.time, 1);
        dist
    }

    fn grow(&mut self) {
        let new_len = self.tree.len() * 2;
        self.tree = vec![0; new_len];
        // Rebuild from the last-access array.
        let times: Vec<u32> = self.last.iter().copied().filter(|&t| t != 0).collect();
        for t in times {
            self.add(t, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_uarch::StackDistance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_reference_implementation() {
        let mut flat = FlatStackDistance::new(256);
        let mut reference = StackDistance::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20_000 {
            let b = rng.gen_range(0usize..256);
            assert_eq!(flat.access(b), reference.access(b as u64));
        }
    }

    #[test]
    fn sequential_then_repeat() {
        let mut sd = FlatStackDistance::new(1024);
        for i in 0..1024 {
            assert_eq!(sd.access(i), None);
        }
        assert_eq!(sd.access(0), Some(1023));
        assert_eq!(sd.access(0), Some(0));
    }

    #[test]
    fn growth_preserves_distances() {
        let mut sd = FlatStackDistance::new(8);
        // Far more accesses than the initial tree capacity.
        for round in 0..10_000u64 {
            for b in 0..8usize {
                let d = sd.access(b);
                if round > 0 {
                    assert_eq!(d, Some(7), "round {round} block {b}");
                }
            }
        }
    }
}
