//! The fast first-order timing model (Karkhanis–Smith lineage, which the
//! paper itself cites as the basis for its counter set).
//!
//! `cycles = base issue cycles (from the per-block static schedules)
//!         + cache miss stalls + branch penalties + padding fetch slots`.
//!
//! The model consumes one microarchitecture-independent [`ExecProfile`] and
//! evaluates any [`MicroArch`] in microseconds, which is what makes the
//! paper's 7-million-simulation training sweep feasible on a laptop. Its
//! fidelity against the cycle-level reference is asserted in the
//! `detailed` module's tests.

use crate::profile::ExecProfile;
use portopt_passes::{CodeImage, MAX_LAT};
use portopt_uarch::{
    estimate_branches_from_totals, latencies, BranchTotals, MicroArch, PerfCounters,
};

/// Cycle breakdown of one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingBreakdown {
    /// In-order issue cycles from the block schedules (all-hit assumption).
    pub base: f64,
    /// Instruction-cache miss stalls.
    pub icache: f64,
    /// Data-cache miss stalls.
    pub dcache: f64,
    /// Branch misprediction flushes.
    pub mispredict: f64,
    /// Fetch-redirect bubbles on correctly-predicted taken transfers.
    pub taken_bubbles: f64,
    /// Decode slots burned on alignment padding.
    pub padding: f64,
}

/// Result of evaluating one (binary, profile) pair on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingResult {
    /// Estimated execution time in cycles.
    pub cycles: f64,
    /// Estimated execution time in nanoseconds (cycles × clock period).
    pub nanos: f64,
    /// The Table 1 performance counters for this run.
    pub counters: PerfCounters,
    /// Where the cycles went.
    pub breakdown: TimingBreakdown,
}

/// A `(binary, profile)` pair prepared for repeated evaluation across the
/// microarchitecture dimension of a sweep.
///
/// Construction hoists everything that does not depend on the
/// configuration — the per-(width, load-use-latency) base-cycle table
/// (`O(blocks)` per entry) and the branch mispredict totals (`O(sites)`) —
/// so each [`evaluate`](PreparedEval::evaluate) call touches only the
/// reuse histograms: `O(histogram buckets)` instead of
/// `O(blocks + sites)`. Sweeps price one profile on hundreds of
/// configurations, which makes this the innermost loop of dataset
/// generation.
#[derive(Debug, Clone)]
pub struct PreparedEval<'a> {
    prof: &'a ExecProfile,
    /// `base[w][li]`: schedule cycles × execution counts, pre-summed.
    base: [[f64; MAX_LAT]; 2],
    branch_totals: BranchTotals,
}

impl<'a> PreparedEval<'a> {
    /// Prepares `(img, prof)` for repeated evaluation.
    pub fn new(img: &CodeImage, prof: &'a ExecProfile) -> Self {
        let mut base = [[0.0f64; MAX_LAT]; 2];
        for (mf, counts) in img.funcs.iter().zip(&prof.block_counts) {
            for (b, &n) in counts.iter().enumerate() {
                if n > 0 {
                    let sched = &mf.sched[b].cycles;
                    for (w, row) in base.iter_mut().enumerate() {
                        for (li, slot) in row.iter_mut().enumerate() {
                            *slot += n as f64 * sched[w][li] as f64;
                        }
                    }
                }
            }
        }
        PreparedEval {
            prof,
            base,
            branch_totals: BranchTotals::over(&prof.branch_stats),
        }
    }

    /// Evaluates the prepared profile on one microarchitecture.
    pub fn evaluate(&self, cfg: &MicroArch) -> TimingResult {
        eval_with(self.prof, &self.branch_totals, cfg, |w, li| {
            self.base[w][li]
        })
    }
}

/// The configuration-dependent tail of an evaluation. `base_of(w, li)`
/// supplies the schedule-cycles × execution-counts sum for the selected
/// (width, load-use latency) point — pre-summed by [`PreparedEval`], or
/// computed on the spot by the one-shot [`evaluate`].
fn eval_with(
    prof: &ExecProfile,
    branch_totals: &BranchTotals,
    cfg: &MicroArch,
    base_of: impl FnOnce(usize, usize) -> f64,
) -> TimingResult {
    let lat = latencies(cfg);
    let w = (cfg.width.clamp(1, 2) - 1) as usize;
    let li = (lat.dl1_load_use.clamp(1, MAX_LAT as u32) - 1) as usize;

    // Base: per-block static schedule cycles × execution counts.
    let base = base_of(w, li);

    // Cache stalls.
    let ic_misses = prof.icache_misses(cfg.il1_sets(), cfg.il1_assoc, cfg.il1_block);
    let dc_misses = prof.dcache_misses(cfg.dl1_sets(), cfg.dl1_assoc, cfg.dl1_block);
    let icache = ic_misses * lat.mem_penalty as f64;
    let dcache = dc_misses * lat.mem_penalty as f64;

    // Branches.
    let bm = estimate_branches_from_totals(
        &prof.branch_pc_reuse,
        branch_totals,
        cfg.btb_sets(),
        cfg.btb_assoc,
    );
    let mispredict = bm.mispredicts * lat.mispredict as f64;
    let predicted_taken = (prof.taken_transfers as f64 - bm.mispredicts).max(0.0);
    let taken_bubbles = predicted_taken * lat.il1_access as f64;

    // Alignment padding consumes fetch/decode slots.
    let padding = prof.pad_fetches as f64 / cfg.width as f64;

    let cycles = (base + icache + dcache + mispredict + taken_bubbles + padding).max(1.0);

    let ic_accesses = prof.icache_accesses(cfg.il1_block) as f64;
    let dc_accesses = prof.dcache_word_accesses as f64;
    let counters = PerfCounters {
        ipc: prof.dyn_insts as f64 / cycles,
        decoder_access_rate: (prof.dyn_insts + prof.pad_fetches) as f64 / cycles,
        regfile_access_rate: (prof.ops.reg_reads + prof.ops.reg_writes) as f64 / cycles,
        bpred_access_rate: bm.accesses / cycles,
        icache_access_rate: ic_accesses / cycles,
        icache_miss_rate: if ic_accesses > 0.0 {
            ic_misses / ic_accesses
        } else {
            0.0
        },
        dcache_access_rate: dc_accesses / cycles,
        dcache_miss_rate: if dc_accesses > 0.0 {
            dc_misses / dc_accesses
        } else {
            0.0
        },
        alu_usage: (prof.ops.alu + prof.ops.div) as f64 / cycles,
        mac_usage: prof.ops.mac as f64 / cycles,
        shifter_usage: prof.ops.shift as f64 / cycles,
    };

    TimingResult {
        cycles,
        nanos: cycles * cfg.cycle_ns(),
        counters,
        breakdown: TimingBreakdown {
            base,
            icache,
            dcache,
            mispredict,
            taken_bubbles,
            padding,
        },
    }
}

/// Evaluates the profile on a microarchitecture.
///
/// One-shot: sums only the selected (width, latency) base entry, so a
/// single call costs what it did before [`PreparedEval`] existed. When
/// pricing the same profile on many configurations, build the
/// `PreparedEval` once and reuse it across the μarch dimension instead.
pub fn evaluate(img: &CodeImage, prof: &ExecProfile, cfg: &MicroArch) -> TimingResult {
    let totals = BranchTotals::over(&prof.branch_stats);
    eval_with(prof, &totals, cfg, |w, li| {
        let mut base = 0.0f64;
        for (mf, counts) in img.funcs.iter().zip(&prof.block_counts) {
            for (b, &n) in counts.iter().enumerate() {
                if n > 0 {
                    base += n as f64 * mf.sched[b].cycles[w][li] as f64;
                }
            }
        }
        base
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::ExecLimits;
    use portopt_ir::{FuncBuilder, Module, ModuleBuilder};
    use portopt_passes::{compile, OptConfig};

    fn streamer(words: u32, reps: i64) -> (Module, CodeImage, ExecProfile) {
        let mut mb = ModuleBuilder::new("streamer");
        let (_, base) = mb.global("buf", words);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, reps, 1, |b, _| {
            b.counted_loop(0, words as i64, 1, |b, i| {
                let off = b.shl(i, 2);
                let a = b.add(p, off);
                let v = b.load(a, 0);
                let t = b.add(acc, v);
                b.assign(acc, t);
            });
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        let m = mb.finish();
        let img = compile(&m, &OptConfig::o3());
        let prof = crate::profiler::profile(&img, &m, &[], ExecLimits::default()).unwrap();
        (m, img, prof)
    }

    #[test]
    fn bigger_dcache_is_faster_for_big_working_set() {
        // 64KB working set.
        let (_, img, prof) = streamer(16384, 3);
        let mut small = MicroArch::xscale();
        small.dl1_size = 4096;
        let mut big = MicroArch::xscale();
        big.dl1_size = 131072;
        let ts = evaluate(&img, &prof, &small);
        let tb = evaluate(&img, &prof, &big);
        assert!(
            tb.cycles < ts.cycles,
            "big {} vs small {}",
            tb.cycles,
            ts.cycles
        );
        assert!(ts.counters.dcache_miss_rate > tb.counters.dcache_miss_rate);
    }

    #[test]
    fn frequency_trades_cycles_for_nanos() {
        let (_, img, prof) = streamer(4096, 3);
        let mut slow = MicroArch::xscale();
        slow.freq_mhz = 200;
        let mut fast = MicroArch::xscale();
        fast.freq_mhz = 600;
        let ts = evaluate(&img, &prof, &slow);
        let tf = evaluate(&img, &prof, &fast);
        // Higher clock: more cycles lost to memory, but less wall time.
        assert!(tf.cycles > ts.cycles);
        assert!(tf.nanos < ts.nanos);
    }

    #[test]
    fn dual_issue_helps() {
        let (_, img, prof) = streamer(256, 10);
        let mut wide = MicroArch::xscale();
        wide.width = 2;
        let t1 = evaluate(&img, &prof, &MicroArch::xscale());
        let t2 = evaluate(&img, &prof, &wide);
        assert!(t2.cycles < t1.cycles);
        assert!(t2.counters.ipc > t1.counters.ipc);
    }

    #[test]
    fn counters_are_sane() {
        let (_, img, prof) = streamer(512, 5);
        let t = evaluate(&img, &prof, &MicroArch::xscale());
        let c = t.counters;
        assert!(c.ipc > 0.05 && c.ipc <= 2.0, "ipc {}", c.ipc);
        assert!(c.icache_miss_rate >= 0.0 && c.icache_miss_rate <= 1.0);
        assert!(c.dcache_miss_rate >= 0.0 && c.dcache_miss_rate <= 1.0);
        assert!(c.alu_usage > 0.0);
        assert!(c.shifter_usage >= 0.0);
        assert!(c.bpred_access_rate > 0.0);
        // Breakdown adds up.
        let b = t.breakdown;
        let sum = b.base + b.icache + b.dcache + b.mispredict + b.taken_bubbles + b.padding;
        assert!((sum - t.cycles).abs() < 1.0);
    }

    #[test]
    fn evaluation_is_fast() {
        // The whole point: a μarch evaluation must be microseconds.
        let (_, img, prof) = streamer(1024, 3);
        let cfgs: Vec<MicroArch> = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            (0..200)
                .map(|_| portopt_uarch::MicroArchSpace::base().sample(&mut rng))
                .collect()
        };
        let t0 = std::time::Instant::now();
        let mut acc = 0.0;
        for c in &cfgs {
            acc += evaluate(&img, &prof, c).cycles;
        }
        let dt = t0.elapsed();
        assert!(acc > 0.0);
        assert!(
            dt.as_millis() < 2_000,
            "200 evaluations took {dt:?} — model too slow"
        );
    }
}
