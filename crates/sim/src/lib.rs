//! # portopt-sim
//!
//! The simulation substrate of `portopt` (Dubach et al., MICRO 2009): a
//! profiling functional simulator, a fast first-order timing model, and a
//! detailed cycle-level reference simulator (the stand-in for the paper's
//! Xtrem XScale simulator).
//!
//! The intended flow is two-phase, mirroring how the paper amortises its
//! 7-million-simulation sweep:
//!
//! 1. [`profile()`] runs a compiled binary **once**, producing a
//!    microarchitecture-independent [`ExecProfile`];
//! 2. [`evaluate`] prices that profile on any [`MicroArch`](portopt_uarch::MicroArch) in microseconds.
//!
//! ```
//! use portopt_ir::{FuncBuilder, ModuleBuilder};
//! use portopt_passes::{compile, OptConfig};
//! use portopt_sim::{evaluate, profile};
//! use portopt_uarch::MicroArch;
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut b = FuncBuilder::new("main", 0);
//! let acc = b.iconst(0);
//! b.counted_loop(0, 1000, 1, |b, i| {
//!     let t = b.add(acc, i);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let module = mb.finish();
//!
//! let image = compile(&module, &OptConfig::o3());
//! let prof = profile(&image, &module, &[], Default::default()).unwrap();
//! let t = evaluate(&image, &prof, &MicroArch::xscale());
//! assert!(t.cycles > 0.0);
//! assert!(t.counters.ipc > 0.0);
//! ```

#![warn(missing_docs)]

pub mod detailed;
pub mod flatsd;
pub mod profile;
pub mod profiler;
pub mod timing;

pub use detailed::{simulate, DetailedResult};
pub use flatsd::FlatStackDistance;
pub use profile::{block_size_index, ExecProfile, OpCounts, BLOCK_SIZES};
pub use profiler::profile;
pub use timing::{evaluate, PreparedEval, TimingBreakdown, TimingResult};
